"""Plain-text rendering of experiment results (CDFs, box stats, tables).

The paper presents CDFs of time ratios and box plots of the
experimental aggregation benefit; these helpers print the same series
as ASCII so the benchmark harness output is self-contained.
"""

from __future__ import annotations

import csv
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.experiments.metrics import cdf_points, quartiles


def ascii_cdf(
    values: Iterable[float],
    label: str,
    width: int = 50,
    points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
) -> str:
    """Render an empirical CDF: selected percentiles plus a bar chart."""
    data = sorted(values)
    if not data:
        return f"{label}: (no data)"
    lines = [f"CDF of {label} ({len(data)} samples)"]
    for p in points:
        idx = min(len(data) - 1, max(0, int(p * len(data)) - 1))
        lines.append(f"  p{int(p * 100):3d} = {data[idx]:8.3f}")
    for value, prob in cdf_points(data)[:: max(1, len(data) // 10)]:
        bar = "#" * int(prob * width)
        lines.append(f"  {value:8.3f} |{bar:<{width}}| {prob:4.2f}")
    return "\n".join(lines)


def box_stats(values: Iterable[float]) -> Dict[str, float]:
    """Five-number summary used for the aggregation-benefit 'box plots'."""
    data = sorted(values)
    if not data:
        raise ValueError("no data")
    q1, med, q3 = quartiles(data)
    return {
        "min": data[0],
        "q1": q1,
        "median": med,
        "q3": q3,
        "max": data[-1],
    }


def ascii_box(values: Iterable[float], label: str) -> str:
    """One-line box-plot summary."""
    s = box_stats(values)
    return (
        f"{label:<40s} min={s['min']:7.3f} q1={s['q1']:7.3f} "
        f"med={s['median']:7.3f} q3={s['q3']:7.3f} max={s['max']:7.3f}"
    )


def table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Write results to CSV for external plotting (matplotlib, R, ...)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def sweep_to_rows(sweep: Sequence[Tuple[Any, Dict[Tuple[str, int], Any]]]) -> List[List[object]]:
    """Flatten a class sweep into CSV rows.

    One row per (scenario, protocol, initial interface) run, carrying
    the scenario's path parameters and the measured transfer time.
    """
    rows: List[List[object]] = []
    for scenario, matrix in sweep:
        for (protocol, initial), result in matrix.items():
            p0, p1 = scenario.paths
            rows.append([
                scenario.env_class, scenario.index, protocol, initial,
                p0.capacity_mbps, p0.rtt_ms, p0.queuing_delay_ms, p0.loss_percent,
                p1.capacity_mbps, p1.rtt_ms, p1.queuing_delay_ms, p1.loss_percent,
                result.transfer_time, result.goodput_bps, result.completed,
            ])
    return rows


SWEEP_CSV_HEADERS = [
    "env_class", "scenario", "protocol", "initial_interface",
    "cap0_mbps", "rtt0_ms", "queue0_ms", "loss0_pct",
    "cap1_mbps", "rtt1_ms", "queue1_ms", "loss1_pct",
    "transfer_time_s", "goodput_bps", "completed",
]


def timeline(samples: Iterable[Tuple[float, float]], label: str, width: int = 60) -> str:
    """Render (time, delay) pairs as a text scatter (Fig. 11 style)."""
    data = list(samples)
    if not data:
        return f"{label}: (no data)"
    max_delay = max(d for _, d in data) or 1.0
    lines = [f"{label} (delay axis 0..{max_delay * 1e3:.0f} ms)"]
    for t, d in data:
        bar = int(d / max_delay * width)
        lines.append(f"  t={t:6.2f}s {'.' * bar}* {d * 1e3:7.1f} ms")
    return "\n".join(lines)
