"""A uniform transport facade over TCP, MPTCP, QUIC and MPQUIC.

Applications see a byte-stream interface:

* ``send(data, fin)`` — write application data;
* ``on_data(data, fin)`` — receive callback;
* ``on_established`` — the (secure) handshake completed.

QUIC-family endpoints map this onto a single data stream; stream
multiplexing remains available on the native objects for tests that
need it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Tuple

from repro.core.connection import MultipathQuicConnection
from repro.mptcp.connection import MptcpConnection
from repro.netsim.engine import Simulator
from repro.netsim.topology import TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection

#: Protocols the experiment harness understands.
PROTOCOLS = ("tcp", "mptcp", "quic", "mpquic")


def _fresh_quic_config(template: Optional[QuicConfig]) -> QuicConfig:
    """A private config instance for one endpoint.

    Endpoints mutate their config (window autotuning), so client and
    server must not share one object.  ``QuicConfig`` holds only scalar
    fields, so a flat dataclass copy suffices — ``copy.deepcopy`` here
    was one of the hottest per-connection allocations in sweep profiles.
    """
    return replace(template) if template is not None else QuicConfig()


class TransportEndpoint:
    """Protocol-agnostic endpoint wrapper."""

    def __init__(self, protocol: str, connection) -> None:
        self.protocol = protocol
        self.connection = connection
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes, bool], None]] = None
        self._stream_id: Optional[int] = None
        if protocol in ("quic", "mpquic"):
            connection.on_established = self._established
            connection.on_stream_data = self._quic_data
        else:
            connection.on_established = self._established
            connection.on_app_data = self._tcp_data

    # -- callbacks -----------------------------------------------------

    def _established(self) -> None:
        if self.on_established:
            self.on_established()

    def _quic_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if self._stream_id is None:
            self._stream_id = stream_id
        if self.on_data:
            self.on_data(data, fin)

    def _tcp_data(self, data: bytes, fin: bool) -> None:
        if self.on_data:
            self.on_data(data, fin)

    # -- actions ---------------------------------------------------------

    def connect(self, initial_interface: int = 0) -> None:
        """Client: start the handshake."""
        if self.protocol in ("quic", "mpquic"):
            self.connection.connect(initial_interface=initial_interface)
        else:
            self.connection.connect()

    def send(self, data: bytes, fin: bool = False) -> None:
        """Write application data on the (single) app stream."""
        if self.protocol in ("quic", "mpquic"):
            if self._stream_id is None:
                self._stream_id = self.connection.open_stream()
            self.connection.send_stream_data(self._stream_id, data, fin)
        else:
            self.connection.send_app_data(data, fin)

    @property
    def established(self) -> bool:
        if self.protocol in ("quic", "mpquic"):
            return self.connection.established
        return self.connection.secure_established

    @property
    def smoothed_rtt(self) -> float:
        return self.connection.smoothed_rtt


def make_client_server(
    protocol: str,
    sim: Simulator,
    topology: TwoPathTopology,
    initial_interface: int = 0,
    trace: Optional[PacketTrace] = None,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> Tuple[TransportEndpoint, TransportEndpoint]:
    """Instantiate a client/server endpoint pair for ``protocol``.

    Single-path protocols are pinned to ``initial_interface``; the
    multipath ones start there and then open every other path.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; pick from {PROTOCOLS}")
    if protocol == "quic":
        client = QuicConnection(
            sim, topology.client, "client", _fresh_quic_config(quic_config), trace
        )
        server = QuicConnection(
            sim, topology.server, "server", _fresh_quic_config(quic_config), trace
        )
    elif protocol == "mpquic":
        client = MultipathQuicConnection(
            sim, topology.client, "client", _fresh_quic_config(quic_config), trace,
        )
        server = MultipathQuicConnection(
            sim, topology.server, "server", _fresh_quic_config(quic_config), trace,
        )
    elif protocol == "tcp":
        client = TcpConnection(
            sim, topology.client, "client", tcp_config or TcpConfig(), trace,
            interface_index=initial_interface,
        )
        server = TcpConnection(
            sim, topology.server, "server", tcp_config or TcpConfig(), trace,
            interface_index=initial_interface,
        )
    else:  # mptcp
        client = MptcpConnection(
            sim, topology.client, "client", tcp_config or TcpConfig(), trace,
            initial_interface=initial_interface,
        )
        server = MptcpConnection(
            sim, topology.server, "server", tcp_config or TcpConfig(), trace,
            initial_interface=initial_interface,
        )
    return (
        TransportEndpoint(protocol, client),
        TransportEndpoint(protocol, server),
    )
