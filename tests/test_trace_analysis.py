"""Trace-driven behavioural tests: assert on *how* protocols behaved,
not just the outcome, using the packet trace."""


from repro.core.connection import MultipathQuicConnection
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import PathLiveness


def traced_transfer(paths, size=500_000, config=None, seed=1, until=30.0):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths, seed=seed)
    trace = PacketTrace()
    client = MultipathQuicConnection(
        sim, topo.client, "client", config or QuicConfig(), trace
    )
    server = MultipathQuicConnection(
        sim, topo.server, "server", config or QuicConfig(), trace
    )
    state, done = {}, {}

    def osd(sid, data, fin):
        if sid not in state:
            state[sid] = True
            server.send_stream_data(sid, b"t" * size, fin=True)

    server.on_stream_data = osd
    client.on_stream_data = (
        lambda sid, d, fin: done.update(t=sim.now) if fin else None
    )
    client.on_established = lambda: client.send_stream_data(
        client.open_stream(), b"GET", fin=True
    )
    client.connect()
    sim.run_until(lambda: "t" in done, timeout=until)
    return trace, client, server, done


class TestTraceAnalysis:
    def test_packet_numbers_monotonic_per_path(self):
        trace, client, server, done = traced_transfer(
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)]
        )
        for host in ("client", "server"):
            for path_id in (0, 1):
                pns = [
                    r.packet_number
                    for r in trace.filter(event="send", host=host, path_id=path_id)
                ]
                assert pns == sorted(pns)
                assert len(pns) == len(set(pns))  # never reused (nonce rule)

    def test_both_paths_carry_traffic(self):
        trace, *_ = traced_transfer(
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)]
        )
        sends_p0 = trace.filter(event="send", host="server", path_id=0)
        sends_p1 = trace.filter(event="send", host="server", path_id=1)
        assert len(sends_p0) > 50 and len(sends_p1) > 50

    def test_no_sends_after_completion_settles(self):
        trace, client, server, done = traced_transfer(
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)]
        )
        finish = done["t"]
        # After the final ACKs drain (a couple of RTTs), silence.
        late = [r for r in trace if r.event == "send" and r.time > finish + 0.5]
        assert late == []

    def test_tlp_events_appear_on_dead_path(self):
        sim = Simulator()
        topo = TwoPathTopology(
            sim, [PathConfig(10, 30, 60), PathConfig(10, 30, 60)], seed=1
        )
        trace = PacketTrace()
        client = MultipathQuicConnection(sim, topo.client, "client", QuicConfig(), trace)
        server = MultipathQuicConnection(sim, topo.server, "server", QuicConfig(), trace)
        state = {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"t" * 2_000_000, fin=True)

        server.on_stream_data = osd
        client.on_stream_data = lambda sid, d, fin: None
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=0.4)
        topo.set_path_loss(0, 100.0)
        sim.run(until=3.0)
        # The sender probed the dead path before giving up on it (TLP);
        # then either its own RTO or the peer's PATHS warning marked the
        # path potentially failed and reinjected the in-flight window
        # onto the surviving path — no per-packet RTO wait.
        assert trace.filter(event="tlp", host="server", path_id=0)
        assert server.paths[0].liveness is not PathLiveness.ACTIVE
        assert server.stats.reinjected_bytes > 0
