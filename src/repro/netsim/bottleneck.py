"""Shared-bottleneck topology for congestion-fairness experiments.

The paper adopts OLIA because "using CUBIC in a multipath protocol
would cause unfairness" (§3, citing Wischik et al.).  That unfairness
only materialises when a multipath connection's subflows share a
bottleneck with other traffic — a situation the disjoint-path topology
of Fig. 2 cannot express.  This module provides:

* a :class:`Router` that forwards datagrams between links based on the
  destination address;
* :class:`SharedBottleneckTopology`: a multihomed client whose two
  paths both traverse ONE bottleneck link, plus an optional competing
  single-homed host pair crossing the same bottleneck;
* :class:`ManyFlowTopology`: N independent client/server pairs (single-
  or multihomed) whose traffic all funnels through one bottleneck —
  the substrate of the open-loop workload harness
  (:mod:`repro.experiments.workload`), where measured packet-level
  flows run over these pairs while fluid background flows reserve the
  same bottleneck analytically.

Layout (downstream direction mirrored)::

    mp-client if0 ──access──┐                       ┌── if0 mp-server
    mp-client if1 ──access──┤                       ├── if1 mp-server
                            ├─router═bottleneck═router┤
    competitor    ──access──┘                       └──  competitor-server
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Datagram, Host
from repro.netsim.topology import MIN_QUEUE_PACKETS, MTU, PathConfig


class Router:
    """Forwards datagrams to the output link registered for their
    destination address."""

    def __init__(self, name: str = "router") -> None:
        self.name = name
        self._routes: Dict[str, Link] = {}
        self.forwarded = 0
        self.dropped_no_route = 0

    def add_route(self, dst_addr: str, link: Link) -> None:
        self._routes[dst_addr] = link

    def receive(self, datagram: Datagram) -> None:
        link = self._routes.get(datagram.dst_addr)
        if link is None:
            self.dropped_no_route += 1
            return
        self.forwarded += 1
        link.send(datagram)


class SharedBottleneckTopology:
    """A multihomed pair plus a single-homed competitor over one
    bottleneck.

    Both of the multipath client's interfaces reach the server through
    the same bottleneck link, so a coupled controller (OLIA) should
    take roughly ONE fair share of it while uncoupled per-path CUBIC
    takes closer to two — the fairness property OLIA was designed for.

    Access links are fast (10x the bottleneck) so queueing happens at
    the bottleneck only.
    """

    ACCESS_FACTOR = 10.0

    def __init__(
        self,
        sim: Simulator,
        bottleneck: PathConfig,
        with_competitor: bool = True,
        seed: int = 0,
        access_rtt_ms: float = 2.0,
        n_competitors: int = 0,
    ) -> None:
        self.sim = sim
        self.bottleneck_config = bottleneck
        self.client = Host("mp-client")
        self.server = Host("mp-server")
        # ``n_competitors`` generalizes the original boolean: when given
        # it wins, otherwise ``with_competitor`` maps to 0/1 pairs.
        if n_competitors == 0 and with_competitor:
            n_competitors = 1
        self.n_competitors = n_competitors
        self.with_competitor = n_competitors > 0
        #: Single-homed competitor pairs crossing the same bottleneck;
        #: pair ``i`` is addressed ``10.{9+i}.0.1 <-> 10.{9+i}.0.2``.
        self.competitor_clients = [
            Host(f"sp-client-{i}") for i in range(max(n_competitors, 1))
        ]
        self.competitor_servers = [
            Host(f"sp-server-{i}") for i in range(max(n_competitors, 1))
        ]
        # Back-compat aliases for the original single competitor pair.
        self.competitor_client = self.competitor_clients[0]
        self.competitor_server = self.competitor_servers[0]
        rng = random.Random(seed)

        up_router = Router("router-up")
        down_router = Router("router-down")
        queue = max(
            int(bottleneck.rate_bps / 8.0 * bottleneck.queuing_delay_ms / 1e3),
            MIN_QUEUE_PACKETS * MTU,
        )
        self.bottleneck_up = Link(
            sim, bottleneck.rate_bps, bottleneck.one_way_delay, queue,
            loss_rate=bottleneck.loss_rate,
            rng=random.Random(rng.getrandbits(32)),
            sink=down_router.receive, name="bottleneck-up",
        )
        self.bottleneck_down = Link(
            sim, bottleneck.rate_bps, bottleneck.one_way_delay, queue,
            loss_rate=bottleneck.loss_rate,
            rng=random.Random(rng.getrandbits(32)),
            sink=up_router.receive, name="bottleneck-down",
        )
        self.up_router = up_router
        self.down_router = down_router

        access_rate = bottleneck.rate_bps * self.ACCESS_FACTOR
        access_delay = access_rtt_ms / 2.0 / 1e3
        access_queue = MIN_QUEUE_PACKETS * MTU * 4

        def access_link(sink: Callable[[Datagram], None], name: str) -> Link:
            return Link(
                sim, access_rate, access_delay, access_queue,
                rng=random.Random(rng.getrandbits(32)), sink=sink, name=name,
            )

        # Multipath client interfaces: both feed the shared bottleneck.
        for i in range(2):
            c_iface = self.client.add_interface(f"10.{i}.0.1")
            s_iface = self.server.add_interface(f"10.{i}.0.2")
            up = access_link(
                _stamp_and_forward(self.bottleneck_up), f"access-up-{i}"
            )
            c_iface.attach(up)
            down = access_link(
                _deliver_to(self.server, i), f"access-srv-{i}"
            )
            # Downstream router routes the server address to this link.
            down_router.add_route(f"10.{i}.0.2", down)
            # Server replies go up through its own access link.
            srv_up = access_link(
                _stamp_and_forward(self.bottleneck_down), f"access-srv-up-{i}"
            )
            s_iface.attach(srv_up)
            cli_down = access_link(
                _deliver_to(self.client, i), f"access-cli-{i}"
            )
            up_router.add_route(f"10.{i}.0.1", cli_down)

        for i in range(n_competitors):
            comp_client = self.competitor_clients[i]
            comp_server = self.competitor_servers[i]
            net = 9 + i
            cc_iface = comp_client.add_interface(f"10.{net}.0.1")
            cs_iface = comp_server.add_interface(f"10.{net}.0.2")
            up = access_link(
                _stamp_and_forward(self.bottleneck_up), f"access-comp-up-{i}"
            )
            cc_iface.attach(up)
            comp_srv_down = access_link(
                _deliver_to(comp_server, 0), f"access-comp-srv-{i}"
            )
            down_router.add_route(f"10.{net}.0.2", comp_srv_down)
            srv_up = access_link(
                _stamp_and_forward(self.bottleneck_down),
                f"access-comp-srv-up-{i}",
            )
            cs_iface.attach(srv_up)
            comp_cli_down = access_link(
                _deliver_to(comp_client, 0), f"access-comp-cli-{i}"
            )
            up_router.add_route(f"10.{net}.0.1", comp_cli_down)


class ManyFlowTopology:
    """N client/server pairs sharing ONE bottleneck link.

    Pair ``i`` is addressed ``10.{i}.{j}.1 <-> 10.{i}.{j}.2`` on
    interface ``j``; with ``interfaces_per_pair=2`` every pair is
    multihomed (both interfaces crossing the same bottleneck, as the
    multipath pair of :class:`SharedBottleneckTopology` does), which is
    what MPQUIC/MPTCP measured flows need.  Access links are
    ``ACCESS_FACTOR`` times faster than the bottleneck so queueing
    happens at the bottleneck only.

    The pair count bounds *packet-level* concurrency; open-loop
    workloads keep it modest (a pool that short flows recycle through)
    and model the rest of the offered load as fluid flows over
    :attr:`bottleneck_down`.
    """

    ACCESS_FACTOR = 10.0

    def __init__(
        self,
        sim: Simulator,
        bottleneck: PathConfig,
        n_pairs: int,
        interfaces_per_pair: int = 1,
        seed: int = 0,
        access_rtt_ms: float = 2.0,
    ) -> None:
        if n_pairs <= 0:
            raise ValueError("n_pairs must be positive")
        if interfaces_per_pair not in (1, 2):
            raise ValueError("interfaces_per_pair must be 1 or 2")
        self.sim = sim
        self.bottleneck_config = bottleneck
        self.n_pairs = n_pairs
        self.interfaces_per_pair = interfaces_per_pair
        rng = random.Random(seed)

        up_router = Router("router-up")
        down_router = Router("router-down")
        queue = max(
            int(bottleneck.rate_bps / 8.0 * bottleneck.queuing_delay_ms / 1e3),
            MIN_QUEUE_PACKETS * MTU,
        )
        self.bottleneck_up = Link(
            sim, bottleneck.rate_bps, bottleneck.one_way_delay, queue,
            loss_rate=bottleneck.loss_rate,
            rng=random.Random(rng.getrandbits(32)),
            sink=down_router.receive, name="bottleneck-up",
        )
        self.bottleneck_down = Link(
            sim, bottleneck.rate_bps, bottleneck.one_way_delay, queue,
            loss_rate=bottleneck.loss_rate,
            rng=random.Random(rng.getrandbits(32)),
            sink=up_router.receive, name="bottleneck-down",
        )
        self.up_router = up_router
        self.down_router = down_router

        access_rate = bottleneck.rate_bps * self.ACCESS_FACTOR
        access_delay = access_rtt_ms / 2.0 / 1e3
        access_queue = MIN_QUEUE_PACKETS * MTU * 4

        def access_link(sink: Callable[[Datagram], None], name: str) -> Link:
            return Link(
                sim, access_rate, access_delay, access_queue,
                rng=random.Random(rng.getrandbits(32)), sink=sink, name=name,
            )

        self.clients = [Host(f"wl-client-{i}") for i in range(n_pairs)]
        self.servers = [Host(f"wl-server-{i}") for i in range(n_pairs)]
        for i in range(n_pairs):
            client = self.clients[i]
            server = self.servers[i]
            for j in range(interfaces_per_pair):
                c_iface = client.add_interface(f"10.{i}.{j}.1")
                s_iface = server.add_interface(f"10.{i}.{j}.2")
                c_iface.attach(access_link(
                    _stamp_and_forward(self.bottleneck_up),
                    f"access-up-{i}.{j}",
                ))
                down_router.add_route(
                    f"10.{i}.{j}.2",
                    access_link(_deliver_to(server, j), f"access-srv-{i}.{j}"),
                )
                s_iface.attach(access_link(
                    _stamp_and_forward(self.bottleneck_down),
                    f"access-srv-up-{i}.{j}",
                ))
                up_router.add_route(
                    f"10.{i}.{j}.1",
                    access_link(_deliver_to(client, j), f"access-cli-{i}.{j}"),
                )

    def pair(self, index: int) -> Tuple[Host, Host]:
        """The (client, server) hosts of pair ``index``."""
        return self.clients[index], self.servers[index]


def _stamp_and_forward(bottleneck: Link) -> Callable[[Datagram], None]:
    """Access-link sink: stamp the destination, enter the bottleneck.

    The destination is the peer address for the source interface, set
    by the sending endpoint via ``Datagram.dst_addr`` (or inferred from
    the source when the endpoint did not bother — our endpoints address
    interface-symmetrically).
    """

    def sink(datagram: Datagram) -> None:
        if not datagram.dst_addr:
            # 10.x.0.1 <-> 10.x.0.2 symmetry.
            src = datagram.src_addr
            if src.endswith(".1"):
                datagram.dst_addr = src[:-2] + ".2"
            else:
                datagram.dst_addr = src[:-2] + ".1"
        bottleneck.send(datagram)

    return sink


def _deliver_to(host: Host, interface_index: int) -> Callable[[Datagram], None]:
    def sink(datagram: Datagram) -> None:
        host.deliver(datagram, interface_index)

    return sink
