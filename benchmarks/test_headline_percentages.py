"""E10 — the paper's §4.1 headline percentages.

Paper values: MPQUIC faster than MPTCP in 89% of low-BDP-no-loss runs;
EBen > 0 in 77% (MPQUIC) vs 45% (MPTCP); high-BDP 58% vs 20%.
"""

from repro.experiments.figures import headline_percentages

from benchmarks.common import BENCH_CONFIG, run_once


def test_headline_percentages(benchmark):
    results = run_once(benchmark, lambda: headline_percentages(BENCH_CONFIG))
    assert results["mpquic_faster_than_mptcp_pct"] >= 50.0
    assert (
        results["low_bdp_eben_positive_mpquic_pct"]
        > results["low_bdp_eben_positive_mptcp_pct"]
    )
    assert (
        results["high_bdp_eben_positive_mpquic_pct"]
        >= results["high_bdp_eben_positive_mptcp_pct"]
    )
