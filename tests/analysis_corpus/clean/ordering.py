"""Correct event ordering: tie-breaks, single-writer siblings, sorting."""

import heapq
import itertools


class Wheel:
    def __init__(self, sim):
        self.sim = sim
        self._heap = []
        self._seq = itertools.count()
        self.ticks = 0

    def push(self, when, payload):
        # The engine's own pattern: (time, seq, payload).
        heapq.heappush(self._heap, (when, next(self._seq), payload))

    def _tick(self):
        self.ticks += 1

    def arm(self, delay):
        # Same callback twice at one timestamp: a fan-out, not a race.
        self.sim.schedule(delay, self._tick)
        self.sim.schedule(delay, self._tick)

    def spread(self, flows):
        for flow in sorted(flows):
            self.sim.schedule(0.0, flow)
