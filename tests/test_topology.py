"""Tests for hosts, interfaces and the two-path topology builder."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.node import Datagram
from repro.netsim.topology import MTU, PathConfig, TwoPathTopology


class TestPathConfig:
    def test_unit_conversions(self):
        cfg = PathConfig(capacity_mbps=10, rtt_ms=40, queuing_delay_ms=100, loss_percent=1.0)
        assert cfg.rate_bps == 10e6
        assert cfg.one_way_delay == pytest.approx(0.020)
        assert cfg.loss_rate == pytest.approx(0.01)
        assert cfg.bdp_bytes == pytest.approx(10e6 / 8 * 0.040)

    def test_queue_sized_by_queuing_delay(self):
        cfg = PathConfig(capacity_mbps=8, rtt_ms=0, queuing_delay_ms=100)
        assert cfg.queue_capacity_bytes == int(8e6 / 8 * 0.1)

    def test_queue_has_floor(self):
        cfg = PathConfig(capacity_mbps=0.1, rtt_ms=0, queuing_delay_ms=0)
        assert cfg.queue_capacity_bytes >= 10 * MTU


class TestTwoPathTopology:
    def make(self):
        sim = Simulator()
        topo = TwoPathTopology(
            sim,
            [
                PathConfig(capacity_mbps=10, rtt_ms=20),
                PathConfig(capacity_mbps=2, rtt_ms=60),
            ],
        )
        return sim, topo

    def test_disjoint_delivery(self):
        sim, topo = self.make()
        got = []
        topo.server.set_datagram_handler(lambda d, i: got.append((d.payload, i)))
        topo.client.send(Datagram(payload="a", size=100), 0)
        topo.client.send(Datagram(payload="b", size=100), 1)
        sim.run()
        assert sorted(got) == [("a", 0), ("b", 1)]

    def test_round_trip_time(self):
        sim, topo = self.make()
        times = {}

        def server_handler(d, i):
            topo.server.send(Datagram(payload="pong", size=100), i)

        def client_handler(d, i):
            times[i] = sim.now

        topo.server.set_datagram_handler(server_handler)
        topo.client.set_datagram_handler(client_handler)
        topo.client.send(Datagram(payload="ping", size=100), 0)
        sim.run()
        # 20ms RTT + 2 serializations of 100B at 10Mbps (0.08ms each)
        assert times[0] == pytest.approx(0.020 + 2 * 100 * 8 / 10e6)

    def test_best_and_worst_path(self):
        _, topo = self.make()
        assert topo.best_path_index() == 0
        assert topo.worst_path_index() == 1

    def test_interface_down_blocks_delivery(self):
        sim, topo = self.make()
        got = []
        topo.server.set_datagram_handler(lambda d, i: got.append(d.payload))
        topo.set_path_up(0, False)
        assert not topo.client.send(Datagram(payload="x", size=100), 0)
        sim.run()
        assert got == []

    def test_set_path_loss(self):
        sim, topo = self.make()
        got = []
        topo.server.set_datagram_handler(lambda d, i: got.append(d.payload))
        topo.set_path_loss(0, 100.0)
        topo.client.send(Datagram(payload="x", size=100), 0)
        topo.client.send(Datagram(payload="y", size=100), 1)
        sim.run()
        assert got == ["y"]

    def test_addresses_are_distinct(self):
        _, topo = self.make()
        addrs = topo.client.addresses + topo.server.addresses
        assert len(set(addrs)) == 4

    def test_src_addr_stamped(self):
        sim, topo = self.make()
        got = []
        topo.server.set_datagram_handler(lambda d, i: got.append(d.src_addr))
        topo.client.send(Datagram(payload="x", size=100), 1)
        sim.run()
        assert got == [topo.client.interfaces[1].address]

    def test_requires_a_path(self):
        with pytest.raises(ValueError):
            TwoPathTopology(Simulator(), [])
