"""Parallel sweep execution engine with a persistent result cache.

The paper's evaluation is embarrassingly parallel: each class sweep is
a grid of independent, deterministic simulations — one cell per
``(scenario, protocol, initial_interface)``, carrying its own seed.
This module decomposes a sweep into :class:`SweepCell` work units, fans
them out over a ``ProcessPoolExecutor`` and memoises finished cells in
a content-addressed on-disk cache, so regenerating figures or
benchmarks at a scale that was already run is a pure cache hit.

Guarantees:

* **Bit-identical results.**  A cell is executed by the very same
  :func:`repro.experiments.runner.run_bulk` call the serial path makes,
  with the same seeds and the same median selection; only the order of
  execution changes, and results are re-assembled in cell order.
* **Content-addressed caching.**  The cache key hashes everything that
  determines a run's outcome: the scenario's path parameters, the file
  size, protocol and initial interface, repetitions and base seed, the
  full QUIC/TCP endpoint configs, and a results-format version bumped
  whenever the stored schema (or simulation semantics) changes.

The engine is crash-isolated and resumable: a worker process dying
(``BrokenProcessPool``) or a cell raising is retried under a fresh pool
with bounded backoff; cells that keep failing are quarantined into a
reported skip-list instead of sinking the sweep; and every finished
cell is persisted to the cache *immediately*, so an interrupted sweep
resumes from disk instead of restarting.

Environment knobs (also surfaced as ``--jobs`` / ``--no-cache`` on the
``repro.experiments.figures`` CLI):

* ``REPRO_JOBS``  — worker processes (default ``os.cpu_count()``;
  ``1`` forces in-process serial execution).
* ``REPRO_CACHE`` — ``off``/``0``/``false`` disables the on-disk cache.
* ``REPRO_CACHE_DIR`` — cache root (default ``results/cache``).
* ``REPRO_RETRIES`` — retry attempts per failing cell (default 2).
* ``REPRO_QUARANTINE_FILE`` — write the quarantine report (JSON) here
  after every :func:`execute_cells` call.
* ``REPRO_CHAOS_CRASH_KEY`` / ``REPRO_CHAOS_MARKER_DIR`` /
  ``REPRO_CHAOS_MODE`` — fault-drill hooks for CI; see
  :func:`_chaos_crash_requested`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from concurrent.futures import as_completed, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.expdesign.parameters import Scenario
from repro.experiments.runner import (
    DEFAULT_SIM_TIMEOUT,
    BulkRunResult,
    run_bulk,
)
from repro.netsim.faults import FaultTimeline
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

#: Bump when the cached result schema or the simulation semantics
#: change, invalidating every previously stored result.
#: v2: fault timelines became part of a cell's identity.
#: v3: path-liveness probing and lifetime limits entered QuicConfig and
#:     the transport's failure reaction (reinjection) changed semantics.
RESULTS_FORMAT_VERSION = 3

#: Default retry attempts for a crashed or raising cell (on top of the
#: first attempt); override per call or via ``REPRO_RETRIES``.
DEFAULT_RETRIES = 2
#: Bounded backoff between retry rounds, seconds (wall clock — this is
#: harness code, not simulation).
RETRY_BACKOFF_BASE = 0.25
RETRY_BACKOFF_MAX = 2.0

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Protocol matrix of the paper's sweep (§4.1).
SWEEP_PROTOCOLS = ("tcp", "quic", "mptcp", "mpquic")


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One independent simulation unit of a class sweep.

    Everything needed to reproduce the run (and to address its cached
    result) lives here; cells are picklable and cheap to ship to worker
    processes.
    """

    paths: Tuple[PathConfig, ...]
    protocol: str
    initial_interface: int
    file_size: int
    repetitions: int
    base_seed: int
    timeout: float = DEFAULT_SIM_TIMEOUT
    quic_config: Optional[QuicConfig] = None
    tcp_config: Optional[TcpConfig] = None
    #: Network dynamics injected into every repetition; part of the
    #: cell's identity, so the same static scenario under different
    #: fault timelines never collides in the cache.
    timeline: Optional[FaultTimeline] = None

    def key_material(self) -> Dict:
        """The canonical dict whose hash addresses this cell's result."""
        return {
            "format": RESULTS_FORMAT_VERSION,
            "paths": [asdict(p) for p in self.paths],
            "protocol": self.protocol,
            "initial_interface": self.initial_interface,
            "file_size": self.file_size,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "timeout": self.timeout,
            "quic_config": asdict(self.quic_config) if self.quic_config else None,
            "tcp_config": asdict(self.tcp_config) if self.tcp_config else None,
            "timeline": (
                self.timeline.key_material() if self.timeline else None
            ),
        }

    def cache_key(self) -> str:
        canonical = json.dumps(self.key_material(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def plan_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> List[SweepCell]:
    """Decompose a class sweep into cells, in deterministic order.

    The order (scenario-major, then protocol, then initial interface)
    matches the serial loop in the figure harness, so zipping the
    results back against this plan reproduces the serial structure.
    """
    reps = 3 if lossy else 1
    cells: List[SweepCell] = []
    for scenario in scenarios:
        for protocol in protocols:
            for initial in (0, 1):
                cells.append(
                    SweepCell(
                        paths=tuple(scenario.paths),
                        protocol=protocol,
                        initial_interface=initial,
                        file_size=file_size,
                        repetitions=reps,
                        base_seed=scenario.index + 1,
                        quic_config=quic_config,
                        tcp_config=tcp_config,
                    )
                )
    return cells


def _chaos_crash_requested(cell: SweepCell) -> bool:
    """CI fault-drill hook: should this cell simulate a worker crash?

    Active when ``REPRO_CHAOS_CRASH_KEY`` is a prefix of the cell's
    cache key.  With ``REPRO_CHAOS_MARKER_DIR`` set, each cell crashes
    at most once (a marker file records the first crash), so the
    retry machinery completes the sweep; without it the cell crashes on
    every attempt and ends up quarantined.  ``REPRO_CHAOS_MODE=raise``
    raises instead of killing the process — the in-process variant used
    by tests running with ``jobs=1``.
    """
    key_prefix = os.environ.get("REPRO_CHAOS_CRASH_KEY")
    if not key_prefix or not cell.cache_key().startswith(key_prefix):
        return False
    marker_dir = os.environ.get("REPRO_CHAOS_MARKER_DIR")
    if marker_dir:
        marker = Path(marker_dir) / cell.cache_key()
        if marker.exists():
            return False
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
    return True


def run_cell(cell: SweepCell) -> BulkRunResult:
    """Execute one cell — the worker entry point (must be picklable)."""
    if _chaos_crash_requested(cell):
        if os.environ.get("REPRO_CHAOS_MODE") == "raise":
            raise RuntimeError("chaos drill: simulated cell failure")
        os._exit(17)  # hard death, as a real worker crash would be
    return run_bulk(
        cell.protocol,
        cell.paths,
        cell.file_size,
        initial_interface=cell.initial_interface,
        repetitions=cell.repetitions,
        base_seed=cell.base_seed,
        quic_config=cell.quic_config,
        tcp_config=cell.tcp_config,
        timeout=cell.timeout,
        timeline=cell.timeline,
    )


# ----------------------------------------------------------------------
# Result (de)serialisation
# ----------------------------------------------------------------------

def result_to_dict(result: BulkRunResult) -> Dict:
    """JSON-serialisable form of a result (traces are not cached)."""
    return {
        "protocol": result.protocol,
        "initial_interface": result.initial_interface,
        "file_size": result.file_size,
        "transfer_time": result.transfer_time,
        "goodput_bps": result.goodput_bps,
        "completed": result.completed,
        "repetitions": result.repetitions,
        "details": dict(result.details),
        "rep_times": list(result.rep_times),
        "rep_completed": list(result.rep_completed),
        "failed_repetitions": result.failed_repetitions,
    }


def result_from_dict(data: Dict) -> BulkRunResult:
    return BulkRunResult(
        protocol=data["protocol"],
        initial_interface=data["initial_interface"],
        file_size=data["file_size"],
        transfer_time=data["transfer_time"],
        goodput_bps=data["goodput_bps"],
        completed=data["completed"],
        repetitions=data["repetitions"],
        details=dict(data.get("details", {})),
        rep_times=list(data.get("rep_times", [])),
        rep_completed=list(data.get("rep_completed", [])),
        failed_repetitions=data.get("failed_repetitions", 0),
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------

class ResultCache:
    """Content-addressed store of finished cells under ``root``.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
    SHA-256 of the cell's canonical key material; each file stores the
    key material alongside the result so entries are self-describing.
    Writes go through a temp file + rename, so concurrent writers (or
    an interrupted run) never leave a truncated entry behind.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> Optional[BulkRunResult]:
        path = self._path(cell.cache_key())
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return result_from_dict(data["result"])

    def put(self, cell: SweepCell, result: BulkRunResult) -> None:
        key = cell.cache_key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key_material": cell.key_material(),
                   "result": result_to_dict(result)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` permits the on-disk cache."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "false", "no"
    )


def default_cache() -> Optional[ResultCache]:
    """The cache configured by the environment, or None if disabled."""
    if not cache_enabled():
        return None
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retries per failing cell: explicit arg > ``REPRO_RETRIES`` > default."""
    if retries is not None:
        return max(0, retries)
    env = os.environ.get("REPRO_RETRIES")
    if env:
        return max(0, int(env))
    return DEFAULT_RETRIES


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class SweepStats:
    """Accounting of one :func:`execute_cells` invocation."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    jobs: int = 1
    #: Sum of simulator events over executed (non-cached) cells.
    events_processed: int = 0
    #: Cell attempts beyond the first (crash/exception recovery).
    retries: int = 0
    #: Cells that exhausted every attempt and were skipped.
    quarantined: int = 0
    #: Worker pools torn down by a crashed worker and rebuilt.
    pool_restarts: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.executed += other.executed
        self.events_processed += other.events_processed
        self.jobs = max(self.jobs, other.jobs)
        self.retries += other.retries
        self.quarantined += other.quarantined
        self.pool_restarts += other.pool_restarts


#: Stats of the most recent :func:`execute_cells` call (observability
#: convenience for benchmarks and the CLI; also available by passing
#: ``stats=`` explicitly).
last_stats = SweepStats()

#: Quarantine entries of the most recent :func:`execute_cells` call.
last_quarantine: List[Dict] = []


def write_quarantine_report(path: os.PathLike, entries: List[Dict]) -> None:
    """Atomically write the quarantine skip-list as JSON.

    Written even when empty so CI can always upload the artifact and a
    clean run is distinguishable from a run that never reported.
    """
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": RESULTS_FORMAT_VERSION,
        "quarantined_cells": len(entries),
        "quarantined": entries,
    }
    fd, tmp = tempfile.mkstemp(dir=target.parent or None, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def execute_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
    retries: Optional[int] = None,
) -> List[Optional[BulkRunResult]]:
    """Run every cell, returning results aligned with ``cells``.

    Cached cells are served from disk; the rest are executed — in a
    worker pool when ``jobs > 1``, in-process otherwise — and stored
    back.  Results are bit-identical to running each cell serially:
    each worker performs the exact same ``run_bulk`` call, and ordering
    is restored from the plan, not from completion order.

    Crash isolation: a worker dying (``BrokenProcessPool``) or a cell
    raising fails only that round's affected cells; they are retried up
    to ``retries`` more times (``REPRO_RETRIES``, default 2) under a
    fresh pool with bounded backoff.  Cells failing every attempt are
    quarantined — their result slot is ``None``, the skip-list lands in
    :data:`last_quarantine` (and ``REPRO_QUARANTINE_FILE`` when set),
    and a ``RuntimeWarning`` reports the count.  Finished cells are
    written to the cache immediately, so an interrupted sweep resumes
    from disk.

    ``cache="auto"`` resolves via :func:`default_cache` (honouring
    ``REPRO_CACHE``); pass ``None`` to bypass caching explicitly.
    """
    global last_stats, last_quarantine
    if cache == "auto":
        cache = default_cache()
    jobs = resolve_jobs(jobs)
    stats = stats if stats is not None else SweepStats()
    stats.cells += len(cells)
    stats.jobs = max(stats.jobs, jobs)
    quarantined: List[Dict] = []

    results: List[Optional[BulkRunResult]] = [None] * len(cells)
    missing: List[int] = []
    for i, cell in enumerate(cells):
        cached = cache.get(cell) if cache is not None else None
        if cached is not None:
            results[i] = cached
        else:
            missing.append(i)
    if cache is not None:
        stats.cache_hits += len(cells) - len(missing)
        stats.cache_misses += len(missing)

    if missing:
        max_attempts = resolve_retries(retries) + 1
        errors: Dict[int, List[str]] = {}

        def on_success(i: int, result: BulkRunResult) -> None:
            results[i] = result
            # Persist immediately: an interrupted sweep resumes from
            # whatever completed, not from scratch.
            if cache is not None:
                cache.put(cells[i], result)
            stats.executed += 1
            stats.events_processed += int(result.details.get("sim_events", 0))

        pending = [(i, cells[i]) for i in missing]
        round_no = 0
        while pending:
            if round_no > 0:
                stats.retries += len(pending)
                time.sleep(
                    min(
                        RETRY_BACKOFF_BASE * 2 ** (round_no - 1),
                        RETRY_BACKOFF_MAX,
                    )
                )
            failures = _run_round(
                pending, jobs, on_success, stats, isolate=round_no > 0
            )
            still: List[Tuple[int, SweepCell]] = []
            for i, cell in pending:
                if i not in failures:
                    continue
                errors.setdefault(i, []).append(failures[i])
                if len(errors[i]) >= max_attempts:
                    quarantined.append(
                        {
                            "index": i,
                            "cache_key": cell.cache_key(),
                            "protocol": cell.protocol,
                            "initial_interface": cell.initial_interface,
                            "base_seed": cell.base_seed,
                            "attempts": len(errors[i]),
                            "errors": errors[i],
                        }
                    )
                else:
                    still.append((i, cell))
            pending = still
            round_no += 1

        stats.quarantined += len(quarantined)
        if quarantined:
            warnings.warn(
                f"{len(quarantined)} sweep cell(s) quarantined after "
                f"{max_attempts} failed attempt(s) each; their result "
                "slots are None (see the quarantine report)",
                RuntimeWarning,
                stacklevel=2,
            )

    last_stats = stats
    last_quarantine = quarantined
    report_path = os.environ.get("REPRO_QUARANTINE_FILE")
    if report_path:
        write_quarantine_report(report_path, quarantined)
    return results


def _run_round(
    pending: List[Tuple[int, SweepCell]],
    jobs: int,
    on_success: Callable[[int, BulkRunResult], None],
    stats: SweepStats,
    isolate: bool = False,
) -> Dict[int, str]:
    """One execution attempt over ``pending``; failures keyed by index.

    ``isolate`` (retry rounds) runs every cell in its own single-worker
    pool: a worker crash poisons a shared pool's *other* futures too,
    so a cell that crashes on every attempt would otherwise drag its
    innocent round-mates into quarantine with it.
    """
    if jobs > 1 and (isolate or len(pending) > 1):
        try:
            if isolate:
                failures: Dict[int, str] = {}
                for item in pending:
                    failures.update(
                        _run_round_pooled([item], 1, on_success, stats)
                    )
                return failures
            return _run_round_pooled(pending, jobs, on_success, stats)
        except (OSError, PermissionError) as exc:
            # Restricted sandboxes may refuse to spawn processes at
            # all; the sweep still completes, just without parallelism.
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to "
                "serial sweep execution",
                RuntimeWarning,
                stacklevel=2,
            )
    return _run_round_serial(pending, on_success)


def _run_round_serial(
    pending: List[Tuple[int, SweepCell]],
    on_success: Callable[[int, BulkRunResult], None],
) -> Dict[int, str]:
    failures: Dict[int, str] = {}
    for i, cell in pending:
        try:
            result = run_cell(cell)
        except Exception as exc:
            # In-process stand-in for a worker crash: record the error
            # for the retry/quarantine machinery and keep going.
            failures[i] = repr(exc)
        else:
            on_success(i, result)
    return failures


def _run_round_pooled(
    pending: List[Tuple[int, SweepCell]],
    jobs: int,
    on_success: Callable[[int, BulkRunResult], None],
    stats: SweepStats,
) -> Dict[int, str]:
    """Fan one round out over a fresh process pool.

    A dead worker poisons the whole pool (every outstanding future gets
    ``BrokenProcessPool``); affected cells are recorded as failures and
    the caller retries them under a new pool next round.
    """
    failures: Dict[int, str] = {}
    broken = False
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures: Dict = {}
        for idx, (i, cell) in enumerate(pending):
            try:
                futures[pool.submit(run_cell, cell)] = i
            except BrokenProcessPool as exc:
                broken = True
                for j, _ in pending[idx:]:
                    failures[j] = repr(exc)
                break
        for future in as_completed(futures):
            i = futures[future]
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                broken = True
                failures[i] = repr(exc)
            except Exception as exc:
                failures[i] = repr(exc)
            else:
                on_success(i, result)
    if broken:
        stats.pool_restarts += 1
    return failures


def execute_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
) -> List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]]:
    """Plan, execute and regroup a class sweep.

    Returns the exact structure of the serial figure harness: one
    ``(scenario, {(protocol, initial): BulkRunResult})`` pair per
    scenario, in scenario order.
    """
    cells = plan_class_sweep(scenarios, file_size, lossy, protocols=protocols)
    results = execute_cells(cells, jobs=jobs, cache=cache, stats=stats)
    per_scenario = 2 * len(protocols)
    out: List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]] = []
    for s_idx, scenario in enumerate(scenarios):
        matrix: Dict[Tuple[str, int], BulkRunResult] = {}
        base = s_idx * per_scenario
        for c_idx in range(per_scenario):
            cell = cells[base + c_idx]
            matrix[(cell.protocol, cell.initial_interface)] = results[base + c_idx]
        out.append((scenario, matrix))
    return out
