"""Multipath TCP baseline (Linux MPTCP v0.91, the paper's comparator).

Implements the MPTCP mechanisms the paper contrasts with MPQUIC:

* one TCP **subflow** per path, each needing its own 3-way handshake
  before carrying data (vs MPQUIC's data-in-first-packet paths);
* a **data sequence space** (DSS mappings) on top of subflow sequence
  numbers, with a connection-level cumulative DATA_ACK and a shared
  receive window;
* the default Linux **lowest-RTT scheduler**, which must bind data to
  a subflow at transmission time — retransmissions then stay on that
  subflow, in sequence, to survive middleboxes;
* **Opportunistic Retransmission and Penalisation** (ORP): when the
  shared receive window blocks sending, data stuck on a slow subflow
  is reinjected on the fast one and the slow subflow's window halved;
* the **potentially-failed** subflow heuristic (an RTO with no network
  activity since the last transmission) used for handover;
* **OLIA** coupled congestion control.
"""

from repro.mptcp.connection import MptcpConnection
from repro.mptcp.scheduler import (
    BackupSubflowScheduler,
    LowestRttSubflowScheduler,
    RoundRobinSubflowScheduler,
)

__all__ = [
    "MptcpConnection",
    "LowestRttSubflowScheduler",
    "RoundRobinSubflowScheduler",
    "BackupSubflowScheduler",
]
