"""Tests for the congestion controllers (NewReno, CUBIC, OLIA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import Cubic, NewReno, OliaCoordinator, make_controller
from repro.cc.base import CcState, INITIAL_WINDOW_SEGMENTS, MIN_WINDOW_SEGMENTS

MSS = 1400


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_controller("cubic"), Cubic)
        assert isinstance(make_controller("NewReno"), NewReno)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_controller("bbr")


class TestNewReno:
    def test_initial_window(self):
        cc = NewReno(mss=MSS)
        assert cc.cwnd_bytes == INITIAL_WINDOW_SEGMENTS * MSS
        assert cc.in_slow_start

    def test_slow_start_doubles_per_rtt(self):
        cc = NewReno(mss=MSS)
        start = cc.cwnd_bytes
        for _ in range(10):
            cc.on_ack(now=1.0, acked_bytes=MSS, rtt=0.05)
        assert cc.cwnd_bytes == start + 10 * MSS

    def test_loss_halves_window(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 50 * MSS
        cc.on_loss_event(now=1.0, sent_time=0.9)
        assert cc.cwnd_bytes == pytest.approx(50 * MSS)
        assert cc.state is CcState.RECOVERY

    def test_loss_events_coalesced_within_recovery(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_loss_event(now=1.0, sent_time=0.9)
        w = cc.cwnd_bytes
        cc.on_loss_event(now=1.01, sent_time=0.95)  # sent before recovery start
        assert cc.cwnd_bytes == w

    def test_new_loss_after_recovery_reduces_again(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_loss_event(now=1.0, sent_time=0.9)
        cc.exit_recovery()
        w = cc.cwnd_bytes
        cc.on_loss_event(now=2.0, sent_time=1.5)
        assert cc.cwnd_bytes < w

    def test_rto_collapses_window(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 80 * MSS
        cc.on_rto(now=2.0)
        assert cc.cwnd_bytes == MIN_WINDOW_SEGMENTS * MSS
        assert cc.ssthresh_bytes == pytest.approx(40 * MSS)
        assert cc.in_slow_start

    def test_congestion_avoidance_linear(self):
        cc = NewReno(mss=MSS)
        cc.ssthresh_bytes = cc.cwnd_bytes  # force CA
        w0 = cc.cwnd_bytes
        # One window's worth of ACKs grows the window by about one MSS.
        acks = int(w0 / MSS)
        for _ in range(acks):
            cc.on_ack(now=1.0, acked_bytes=MSS, rtt=0.05)
        assert cc.cwnd_bytes == pytest.approx(w0 + MSS, rel=0.05)

    def test_can_send_and_available_window(self):
        cc = NewReno(mss=MSS)
        assert cc.can_send(bytes_in_flight=0)
        assert not cc.can_send(bytes_in_flight=int(cc.cwnd_bytes))
        assert cc.available_window(int(cc.cwnd_bytes) - 100) == 100


class TestCubic:
    def test_slow_start_exponential(self):
        cc = Cubic(mss=MSS)
        w0 = cc.cwnd_bytes
        cc.on_ack(1.0, 5 * MSS, rtt=0.05)
        assert cc.cwnd_bytes == w0 + 5 * MSS

    def test_loss_reduces_by_beta(self):
        cc = Cubic(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 100 * MSS
        cc.on_loss_event(now=1.0, sent_time=0.9)
        assert cc.cwnd_bytes == pytest.approx(70 * MSS)

    def test_cubic_growth_accelerates_away_from_wmax(self):
        cc = Cubic(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 50 * MSS  # in CA
        cc.on_loss_event(now=0.0, sent_time=-0.1)
        cc.exit_recovery()
        now = 0.0
        growth = []
        last = cc.cwnd_bytes
        # K = ((100-70)/0.4)^(1/3) ~= 4.2 s; run to 7 s to cross the plateau.
        for step in range(140):
            now += 0.05
            for _ in range(max(1, int(cc.cwnd_bytes / MSS))):
                cc.on_ack(now, MSS, rtt=0.05)
            growth.append(cc.cwnd_bytes - last)
            last = cc.cwnd_bytes
        # Concave then convex: growth near the end exceeds the plateau phase
        # around t = K (steps ~70-95).
        assert growth[-1] > min(growth[70:95])

    def test_window_recovers_to_wmax_region(self):
        cc = Cubic(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 50 * MSS
        cc.on_loss_event(now=0.0, sent_time=-0.1)
        cc.exit_recovery()
        now = 0.0
        for _ in range(200):
            now += 0.05
            for _ in range(max(1, int(cc.cwnd_bytes / MSS))):
                cc.on_ack(now, MSS, rtt=0.05)
        assert cc.cwnd_bytes >= 95 * MSS

    def test_rto_resets_epoch(self):
        cc = Cubic(mss=MSS)
        cc.cwnd_bytes = 50 * MSS
        cc.on_rto(now=1.0)
        assert cc.cwnd_bytes == MIN_WINDOW_SEGMENTS * MSS

    @given(st.floats(min_value=0.001, max_value=1.0), st.integers(1, 100))
    @settings(max_examples=50)
    def test_window_never_below_floor(self, rtt, events):
        cc = Cubic(mss=MSS)
        now = 0.0
        for i in range(events):
            now += rtt
            if i % 3 == 2:
                cc.on_loss_event(now, sent_time=now - rtt / 2)
                cc.exit_recovery()
            else:
                cc.on_ack(now, MSS, rtt)
        assert cc.cwnd_bytes >= MIN_WINDOW_SEGMENTS * MSS - 1e-6


class TestOlia:
    def make_two_paths(self):
        coord = OliaCoordinator(mss=MSS)
        p0 = coord.path_controller(0)
        p1 = coord.path_controller(1)
        return coord, p0, p1

    def drive_to_ca(self, path, rtt=0.05):
        path.ssthresh_bytes = path.cwnd_bytes
        path.on_ack(0.0, MSS, rtt)

    def test_paths_registered_once(self):
        coord, p0, _ = self.make_two_paths()
        assert coord.path_controller(0) is p0
        assert len(coord.paths) == 2

    def test_slow_start_uncoupled(self):
        coord, p0, p1 = self.make_two_paths()
        w = p0.cwnd_bytes
        p0.on_ack(0.0, MSS, 0.05)
        assert p0.cwnd_bytes == w + MSS

    def test_coupled_increase_smaller_than_reno(self):
        coord, p0, p1 = self.make_two_paths()
        for p in (p0, p1):
            p.ssthresh_bytes = p.cwnd_bytes  # force CA
            p.smoothed_rtt = 0.05
        w = p0.cwnd_bytes
        p0.on_ack(1.0, MSS, 0.05)
        coupled_gain = p0.cwnd_bytes - w
        reno_gain = MSS * MSS / w
        assert 0 < coupled_gain <= reno_gain * 1.01

    def test_single_path_behaves_like_reno_increase(self):
        coord = OliaCoordinator(mss=MSS)
        p = coord.path_controller(0)
        p.ssthresh_bytes = p.cwnd_bytes
        p.smoothed_rtt = 0.05
        w = p.cwnd_bytes
        p.on_ack(1.0, MSS, 0.05)
        gain = p.cwnd_bytes - w
        # With one path the coupled term reduces to 1/w (in segments).
        assert gain == pytest.approx(MSS * MSS / w, rel=0.01)

    def test_loss_halves_and_tracks_interloss_bytes(self):
        coord, p0, _ = self.make_two_paths()
        p0.cwnd_bytes = 40 * MSS
        for _ in range(10):
            p0.on_ack(1.0, MSS, 0.05)
        p0.on_loss_event(now=2.0, sent_time=1.5)
        assert p0.cwnd_bytes == pytest.approx(max(20 * MSS, 2 * MSS), rel=0.3)
        assert p0.inter_loss_bytes >= 10 * MSS

    def test_alpha_shifts_towards_best_path(self):
        coord, p0, p1 = self.make_two_paths()
        # p0: big window but lossy (small inter-loss bytes).
        # p1: small window, clean (large inter-loss bytes) -> best path.
        p0.cwnd_bytes = 50 * MSS
        p1.cwnd_bytes = 10 * MSS
        p0.smoothed_rtt = p1.smoothed_rtt = 0.05
        p0._bytes_since_loss = 5 * MSS
        p1._bytes_since_loss = 500 * MSS
        active = coord.paths
        assert coord._alpha(p1, active) > 0  # best, not max-window: boosted
        assert coord._alpha(p0, active) < 0  # max-window: dampened

    def test_alpha_zero_when_best_is_max(self):
        coord, p0, p1 = self.make_two_paths()
        p0.cwnd_bytes = 50 * MSS
        p1.cwnd_bytes = 10 * MSS
        p0.smoothed_rtt = p1.smoothed_rtt = 0.05
        p0._bytes_since_loss = 500 * MSS
        p1._bytes_since_loss = 5 * MSS
        active = coord.paths
        assert coord._alpha(p0, active) == 0.0
        assert coord._alpha(p1, active) == 0.0

    def test_negative_alpha_never_collapses_window(self):
        coord, p0, p1 = self.make_two_paths()
        p0.cwnd_bytes = MIN_WINDOW_SEGMENTS * MSS
        p0.ssthresh_bytes = p0.cwnd_bytes
        p1.cwnd_bytes = MIN_WINDOW_SEGMENTS * MSS
        p0.smoothed_rtt = p1.smoothed_rtt = 0.05
        p1._bytes_since_loss = 100 * MSS
        for _ in range(50):
            p0.on_ack(1.0, MSS, 0.05)
        assert p0.cwnd_bytes >= MIN_WINDOW_SEGMENTS * MSS - 1e-6

    def test_remove_path(self):
        coord, p0, p1 = self.make_two_paths()
        coord.remove_path(1)
        assert len(coord.paths) == 1

    def test_aggregate_growth_bounded_by_single_flow(self):
        # OLIA design goal: total increase across paths stays comparable
        # to a single Reno flow on the best path (fairness at bottleneck).
        coord, p0, p1 = self.make_two_paths()
        for p in (p0, p1):
            p.ssthresh_bytes = p.cwnd_bytes
            p.smoothed_rtt = 0.05
        total_gain = 0.0
        for _ in range(100):
            w0, w1 = p0.cwnd_bytes, p1.cwnd_bytes
            p0.on_ack(1.0, MSS, 0.05)
            p1.on_ack(1.0, MSS, 0.05)
            total_gain += (p0.cwnd_bytes - w0) + (p1.cwnd_bytes - w1)
        reno = NewReno(mss=MSS)
        reno.ssthresh_bytes = reno.cwnd_bytes
        reno_gain = 0.0
        for _ in range(200):
            w = reno.cwnd_bytes
            reno.on_ack(1.0, MSS, 0.05)
            reno_gain += reno.cwnd_bytes - w
        assert total_gain <= reno_gain * 1.1
