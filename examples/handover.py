#!/usr/bin/env python3
"""Network handover with Multipath QUIC (the paper's §4.3 / Fig. 11).

A client exchanges 750-byte request/responses every 400 ms over two
paths (15 ms and 25 ms RTT).  After 3 seconds the initial path becomes
completely lossy — the WiFi-walking-out-of-range situation.  MPQUIC
detects the failure via an RTO, marks the path "potentially failed",
retransmits over the second path and attaches a PATHS frame so the
server answers there directly, avoiding a second timeout.

Run:  python examples/handover.py
"""

from repro.experiments.report import timeline
from repro.experiments.runner import run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO


def main() -> None:
    delays = run_handover(HANDOVER_SCENARIO)
    print(timeline(delays, "MPQUIC request/response delay"))
    before = [d for t, d in delays if t < HANDOVER_SCENARIO.failure_time - 0.5]
    after = [d for t, d in delays if t > HANDOVER_SCENARIO.failure_time + 1.0]
    spike = max(d for t, d in delays)
    print(f"\nBefore failure: {min(before) * 1e3:.1f} ms (15 ms RTT path)")
    print(f"Handover spike: {spike * 1e3:.1f} ms (one RTO + cross-path retransmit)")
    print(f"After failover: {min(after) * 1e3:.1f} ms (25 ms RTT path)")


if __name__ == "__main__":
    main()
