"""Shared helpers for integration tests: one-call transfer runners."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import TransportEndpoint, make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig


class TransferResult:
    """Everything a test may want to inspect after a bulk transfer."""

    def __init__(self, app, client, server, sim, topo, ok):
        self.app = app
        self.client = client
        self.server = server
        self.sim = sim
        self.topology = topo
        self.ok = ok

    @property
    def transfer_time(self):
        return self.app.transfer_time


def run_transfer(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int = 500_000,
    initial_interface: int = 0,
    seed: int = 1,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    timeout: float = 2000.0,
) -> TransferResult:
    """Run a bulk download and return the full context for assertions."""
    sim = Simulator()
    topo = TwoPathTopology(sim, list(paths), seed=seed)
    client, server = make_client_server(
        protocol, sim, topo,
        initial_interface=initial_interface,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = BulkTransferApp(sim, client, server, file_size, initial_interface)
    ok = app.run(timeout=timeout)
    return TransferResult(app, client, server, sim, topo, ok)


#: A clean symmetric two-path network used by many tests.
TWO_CLEAN_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0),
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0),
]

#: Heterogeneous paths (fast/low-delay + slow/high-delay).
HETEROGENEOUS_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=20.0, queuing_delay_ms=50.0),
    PathConfig(capacity_mbps=2.0, rtt_ms=100.0, queuing_delay_ms=100.0),
]

#: Symmetric paths with random loss.
LOSSY_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0,
               loss_percent=1.5),
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0,
               loss_percent=1.5),
]
