"""Run one protocol over one scenario and collect results.

The measurement mirrors the paper's §4.1: the client downloads a file
on a single stream and times the interval between its first connection
packet and the last response byte.  Lossy scenarios are repeated with
different seeds and summarised by the median run (the paper repeats
each simulation three times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkTransferApp
from repro.apps.reqres import RequestResponseApp
from repro.apps.transport import make_client_server
from repro.experiments.metrics import median
from repro.experiments.scenarios import HANDOVER_SCENARIO, HandoverScenario
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

#: Hard ceiling on simulated seconds per run; generous enough for a
#: 0.1 Mbps path (the range minimum) to finish any benchmark transfer.
DEFAULT_SIM_TIMEOUT = 4000.0


@dataclass
class BulkRunResult:
    """Outcome of one bulk-transfer run (median over repetitions)."""

    protocol: str
    initial_interface: int
    file_size: int
    transfer_time: float
    goodput_bps: float
    completed: bool
    repetitions: int = 1
    details: Dict[str, float] = field(default_factory=dict)


def _single_bulk(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int,
    initial_interface: int,
    seed: int,
    quic_config: Optional[QuicConfig],
    tcp_config: Optional[TcpConfig],
    timeout: float,
) -> Tuple[bool, float]:
    sim = Simulator()
    topo = TwoPathTopology(sim, list(paths), seed=seed)
    client, server = make_client_server(
        protocol, sim, topo,
        initial_interface=initial_interface,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = BulkTransferApp(sim, client, server, file_size, initial_interface)
    ok = app.run(timeout=timeout)
    return ok, app.transfer_time if ok else timeout


def run_bulk(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int,
    initial_interface: int = 0,
    repetitions: int = 1,
    base_seed: int = 1,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    timeout: float = DEFAULT_SIM_TIMEOUT,
) -> BulkRunResult:
    """Run a bulk download, reporting the median over ``repetitions``.

    Loss-free scenarios are deterministic, so a single repetition
    suffices; lossy ones should use 3, matching the paper.
    """
    times: List[float] = []
    all_ok = True
    for rep in range(repetitions):
        ok, duration = _single_bulk(
            protocol, paths, file_size, initial_interface,
            seed=base_seed + rep * 1000,
            quic_config=quic_config, tcp_config=tcp_config, timeout=timeout,
        )
        all_ok = all_ok and ok
        times.append(duration)
    t = median(times)
    return BulkRunResult(
        protocol=protocol,
        initial_interface=initial_interface,
        file_size=file_size,
        transfer_time=t,
        goodput_bps=file_size * 8.0 / t if t > 0 else 0.0,
        completed=all_ok,
        repetitions=repetitions,
    )


def run_handover(
    scenario: HandoverScenario = HANDOVER_SCENARIO,
    seed: int = 3,
    quic_config: Optional[QuicConfig] = None,
    protocol: str = "mpquic",
    tcp_config: Optional[TcpConfig] = None,
) -> List[Tuple[float, float]]:
    """Reproduce the §4.3 handover experiment.

    Returns ``(request sent time, response delay)`` pairs — the series
    of the paper's Fig. 11.  At ``scenario.failure_time`` the initial
    path becomes completely lossy in both directions.
    """
    sim = Simulator()
    topo = TwoPathTopology(sim, list(scenario.paths), seed=seed)
    client, server = make_client_server(
        protocol, sim, topo, initial_interface=0,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = RequestResponseApp(
        sim, client, server,
        message_size=scenario.message_size,
        interval=scenario.interval,
        total_requests=scenario.total_requests,
    )
    sim.schedule_at(
        scenario.failure_time,
        topo.set_path_loss, 0, scenario.failure_loss_percent,
    )
    app.run(timeout=scenario.failure_time + scenario.total_requests * scenario.interval + 30.0)
    return app.delays()


def run_scenario_protocol_matrix(
    paths: Sequence[PathConfig],
    file_size: int,
    lossy: bool,
    base_seed: int = 1,
    protocols: Sequence[str] = ("tcp", "quic", "mptcp", "mpquic"),
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> Dict[Tuple[str, int], BulkRunResult]:
    """All (protocol, initial interface) runs for one scenario.

    This is the unit of the paper's sweep: four protocols, each started
    once on each of the two paths.
    """
    reps = 3 if lossy else 1
    out: Dict[Tuple[str, int], BulkRunResult] = {}
    for protocol in protocols:
        for initial in (0, 1):
            out[(protocol, initial)] = run_bulk(
                protocol, paths, file_size,
                initial_interface=initial,
                repetitions=reps, base_seed=base_seed,
                quic_config=quic_config, tcp_config=tcp_config,
            )
    return out
