"""Tests for the time-series connection samplers."""

import pytest

from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import make_client_server
from repro.experiments.sampling import ConnectionSampler, MptcpSampler
from repro.netsim.engine import Simulator
from repro.netsim.topology import TwoPathTopology

from tests.helpers import TWO_CLEAN_PATHS


def run_sampled(protocol="mpquic", file_size=1_000_000, interval=0.05):
    sim = Simulator()
    topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
    client, server = make_client_server(protocol, sim, topo)
    app = BulkTransferApp(sim, client, server, file_size)
    sampler = ConnectionSampler(
        sim, server.connection, interval=interval,
        stop_when=lambda: app.complete,
    )
    sampler.start()
    app.start()
    sim.run_until(lambda: app.complete, timeout=60.0)
    return app, sampler


class TestConnectionSampler:
    def test_samples_taken_at_interval(self):
        app, sampler = run_sampled()
        assert len(sampler.samples) >= 5
        gaps = [
            b.time - a.time
            for a, b in zip(sampler.samples, sampler.samples[1:])
        ]
        assert all(g == pytest.approx(0.05) for g in gaps)

    def test_sent_goodput_sums_to_file_size(self):
        app, sampler = run_sampled()
        series = sampler.goodput_series(direction="sent")
        total_bits = sum(
            bps * dt
            for (t, bps), dt in zip(
                series,
                [series[0][0]] + [b[0] - a[0] for a, b in zip(series, series[1:])],
            )
        )
        # Sampling stops at completion; allow the last interval's slack.
        assert total_bits >= app.file_size * 8 * 0.8

    def test_cwnd_series_positive_and_growing_early(self):
        app, sampler = run_sampled()
        series = sampler.cwnd_series(0)
        assert all(v > 0 for _, v in series)
        assert series[-1][1] >= series[0][1]

    def test_path_split_fractions(self):
        app, sampler = run_sampled()
        split = sampler.path_split()
        assert set(split) == {0, 1}
        assert sum(split.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in split.values())

    def test_stop_when_ends_sampling(self):
        app, sampler = run_sampled()
        final = sampler.samples[-1].time
        assert final <= app.completion_time + 0.05 + 1e-9


class TestMptcpSampler:
    def test_subflow_snapshots(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
        client, server = make_client_server("mptcp", sim, topo)
        app = BulkTransferApp(sim, client, server, 500_000)
        sampler = MptcpSampler(sim, server.connection, interval=0.05)
        sampler.start()
        app.start()
        sim.run_until(lambda: app.complete, timeout=60.0)
        assert sampler.samples
        last = sampler.samples[-1]
        assert set(last["cwnd"]) == {0, 1}
        assert all(v > 0 for v in last["cwnd"].values())
