"""Reproduction of "Multipath QUIC: Design and Evaluation" (CoNEXT 2017).

The package implements, in pure Python, every layer the paper's
evaluation exercises:

* :mod:`repro.netsim` -- a deterministic discrete-event network simulator
  standing in for the paper's Mininet testbed (links with configurable
  rate, propagation delay, drop-tail queues and random loss).
* :mod:`repro.quic` -- a single-path QUIC transport (frames, ACK ranges,
  streams, flow control, loss recovery, 1-RTT handshake).
* :mod:`repro.core` -- Multipath QUIC, the paper's contribution: path
  manager, per-path packet-number spaces, lowest-RTT scheduler with
  duplication on RTT-unknown paths, PATHS/ADD_ADDRESS frames and OLIA
  coupled congestion control.
* :mod:`repro.tcp` / :mod:`repro.mptcp` -- the TCP+TLS and Linux-MPTCP
  baselines (limited SACK, Karn RTT ambiguity, per-subflow handshakes,
  opportunistic retransmission and penalisation).
* :mod:`repro.cc` -- NewReno, CUBIC and OLIA congestion controllers.
* :mod:`repro.expdesign` -- the WSP space-filling experimental design
  over the paper's Table 1 parameter ranges.
* :mod:`repro.experiments` -- scenario runner, metrics (experimental
  aggregation benefit) and per-figure harnesses.
* :mod:`repro.obs` -- qlog-style structured telemetry: typed per-path
  event tracing, time-series sampling (cwnd/srtt/goodput) and
  JSON/JSONL/CSV trace exporters.
"""

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology

__all__ = [
    "Simulator",
    "PathConfig",
    "TwoPathTopology",
    "__version__",
]

__version__ = "1.0.0"
