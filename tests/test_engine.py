"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(1.5, order.append, "mid")
        sim.run()
        assert order == ["early", "mid", "late"]
        assert sim.now == 2.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(0.5, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 1.5]

    def test_run_until_time_limit(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_predicate(self):
        sim = Simulator()
        state = {"done": False}
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: state.update(done=True))
        sim.schedule(3.0, lambda: None)
        assert sim.run_until(lambda: state["done"])
        assert sim.now == 2.0

    def test_run_until_exhaustion_returns_false(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert not sim.run_until(lambda: False)

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_event_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestTimerCompaction:
    def test_live_events_excludes_cancelled(self):
        sim = Simulator()
        timers = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for t in timers[:4]:
            t.cancel()
        assert sim.live_events == 6
        assert sim.pending_events == 6

    def test_cancel_is_idempotent_for_the_count(self):
        sim = Simulator()
        t = sim.schedule(1.0, lambda: None)
        t.cancel()
        t.cancel()
        assert sim.live_events == 0

    def test_cancel_after_fire_does_not_skew_count(self):
        sim = Simulator()
        t = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        t.cancel()  # stale handle: already fired
        assert sim.live_events == 1

    def test_heavy_cancel_reschedule_churn_compacts(self):
        # Loss-recovery style: arm a timer, cancel and rearm on every
        # "ACK".  Without compaction the heap grows with dead entries.
        sim = Simulator()
        churn = 5000
        timer = sim.schedule(1000.0, lambda: None)
        for i in range(churn):
            timer.cancel()
            timer = sim.schedule_at(1000.0 + i, lambda: None)
        assert sim.live_events == 1
        # Lazy compaction must have kept the raw heap near the live size,
        # not at churn size.
        assert sim.queued_entries < churn / 2
        assert sim.queued_entries >= sim.live_events

    def test_churn_preserves_order_and_results(self):
        # Same schedule executed with and without churn noise must fire
        # the surviving callbacks at identical times, in order.
        def run_with_noise(noise):
            sim = Simulator()
            fired = []
            for i in range(50):
                sim.schedule(float(i) + 0.5, fired.append, i)
            if noise:
                for round_ in range(200):
                    doomed = [
                        sim.schedule(2000.0 + round_, fired.append, "never")
                        for _ in range(10)
                    ]
                    for t in doomed:
                        t.cancel()
            sim.run(until=100.0)
            return fired

        assert run_with_noise(False) == run_with_noise(True)

    def test_compaction_does_not_break_pending_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "keep")
        doomed = [sim.schedule(5.0, fired.append, "no") for _ in range(500)]
        for t in doomed:
            t.cancel()
        sim.run()
        assert fired == ["keep"]
        assert sim.now == 10.0
