"""Simulator performance: events/second and transfer cost.

Unlike the figure benchmarks (one deterministic run each), these use
pytest-benchmark's repeated timing: they answer "how expensive is a
simulated megabyte?", which bounds the feasible sweep sizes
(EXPERIMENTS.md's scaling note).
"""

from repro.experiments.runner import run_bulk
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig


def test_event_loop_throughput(benchmark):
    """Raw engine speed: schedule-and-run a batch of trivial events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_quic_transfer_cost(benchmark):
    """Cost of simulating a 1 MB QUIC download on a clean path."""

    def run():
        return run_bulk("quic", [PathConfig(20, 30, 60)], 1_000_000)

    result = benchmark(run)
    assert result.completed


def test_mpquic_transfer_cost(benchmark):
    """Cost of simulating a 1 MB MPQUIC download over two paths."""

    def run():
        return run_bulk(
            "mpquic",
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
            1_000_000,
        )

    result = benchmark(run)
    assert result.completed


def test_mptcp_transfer_cost(benchmark):
    """Cost of simulating a 1 MB MPTCP download over two paths."""

    def run():
        return run_bulk(
            "mptcp",
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
            1_000_000,
        )

    result = benchmark(run)
    assert result.completed
