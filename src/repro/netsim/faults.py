"""Deterministic fault injection: timed mutations of a live network.

The paper's robustness story (§4.3) hinges on *dynamics*: a path that
goes dark mid-transfer, a WiFi link whose rate collapses as the user
walks away, loss that arrives in bursts for a while and then clears.
Static link parameters cannot express any of that, so this module adds
a declarative :class:`FaultTimeline` — an ordered set of
:class:`FaultEvent`\\ s, each applying one :class:`Mutation` to one path
at an absolute simulated time.  ns-3-based multipath reproductions
treat scheduled link up/down and parameter changes as first-class
scenario inputs; this is the simulator-native equivalent.

Design rules:

* **Deterministic.**  A timeline is plain frozen data; replaying the
  same timeline over the same seeded topology yields bit-identical
  simulations.  Burst-loss episodes derive their randomness from the
  mutation's own ``seed`` combined with a CRC of the link name, never
  from global state.
* **Cache-addressable.**  :meth:`FaultTimeline.key_material` renders
  the timeline into canonical JSON-compatible data, so the experiment
  layers can fold it into result-cache keys: same scenario + different
  timeline = different key.
* **Observable.**  When a tracer is attached, every fired event emits a
  typed ``network:*`` event (:data:`repro.obs.events.CAT_NETWORK`), so
  traces show the network timeline next to the transport's reaction.

Mutations are applied through :meth:`repro.netsim.link.Link.apply`,
which re-plans in-flight serialization where needed (rate changes) and
distinguishes *link down* (datagrams dropped at the NIC, queue flushed)
from *blackholing* (datagrams serialized — consuming bandwidth — then
silently discarded, the classic mid-box failure).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.engine import Simulator
    from repro.netsim.link import Link


# ----------------------------------------------------------------------
# Mutations
# ----------------------------------------------------------------------

class Mutation:
    """One atomic change to a link's behaviour.

    Concrete mutations are frozen dataclasses; ``kind`` doubles as the
    obs event name and the cache-key discriminator.
    """

    kind = "abstract"

    def apply_to_link(self, link: "Link") -> None:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-compatible parameters (cache keys and obs payloads)."""
        return asdict(self)  # type: ignore[call-overload]


@dataclass(frozen=True)
class LinkDown(Mutation):
    """Administratively disable the link.

    Queued and in-flight-serializing datagrams are dropped at the NIC;
    datagrams already propagating (on the wire) still arrive.  New
    sends are rejected until a :class:`LinkUp`.
    """

    kind = "link_down"

    def apply_to_link(self, link: "Link") -> None:
        link.set_up(False)


@dataclass(frozen=True)
class LinkUp(Mutation):
    """Re-enable a previously downed link."""

    kind = "link_up"

    def apply_to_link(self, link: "Link") -> None:
        link.set_up(True)


@dataclass(frozen=True)
class RateChange(Mutation):
    """Change the serialization rate mid-simulation.

    A datagram currently being clocked onto the wire is re-planned: the
    bytes not yet serialized finish at the new rate.
    """

    rate_mbps: float

    kind = "rate_change"

    def apply_to_link(self, link: "Link") -> None:
        link.set_rate(self.rate_mbps * 1e6)


@dataclass(frozen=True)
class DelayChange(Mutation):
    """Change the path's two-way propagation delay.

    Mirrors :class:`repro.netsim.topology.PathConfig`: ``rtt_ms`` is
    split evenly per direction.  Datagrams already propagating keep the
    delay they departed with (physics, not configuration).
    """

    rtt_ms: float

    kind = "delay_change"

    def apply_to_link(self, link: "Link") -> None:
        link.set_prop_delay(self.rtt_ms / 2.0 / 1e3)


@dataclass(frozen=True)
class LossChange(Mutation):
    """Step the independent (Bernoulli) random-loss rate.

    Replaces any burst-loss model currently installed on the link —
    same override semantics as ``TwoPathTopology.set_path_loss``.
    """

    loss_percent: float

    kind = "loss_change"

    def apply_to_link(self, link: "Link") -> None:
        link.set_burst_loss(None)
        link.set_loss_rate(self.loss_percent / 100.0)


@dataclass(frozen=True)
class BurstLossStart(Mutation):
    """Begin a Gilbert-Elliott bursty-loss episode (wireless fading).

    ``seed`` keeps the episode deterministic: the per-link RNG derives
    from ``seed`` and a CRC of the link's name, so forward and return
    directions fade independently yet reproducibly.  A later
    :class:`LossChange` (e.g. to 0) ends the episode.
    """

    loss_percent: float
    mean_burst: float = 4.0
    seed: int = 0

    kind = "burst_loss_start"

    def apply_to_link(self, link: "Link") -> None:
        from repro.netsim.link import GilbertElliottLoss

        rng = random.Random(zlib.crc32(link.name.encode()) ^ (self.seed * 0x9E3779B1))
        link.set_burst_loss(
            GilbertElliottLoss(
                avg_loss_rate=self.loss_percent / 100.0,
                mean_burst=self.mean_burst,
                rng=rng,
            )
        )


@dataclass(frozen=True)
class Blackhole(Mutation):
    """Silently discard datagrams after serialization.

    Distinct from :class:`LinkDown`: the sender's NIC still accepts and
    clocks out every datagram (bandwidth and queueing behave normally),
    but nothing ever reaches the far end — the failure mode of a dead
    middlebox or a stale route, and the hardest one for a transport to
    detect (only timers fire, no local error).
    """

    enabled: bool = True

    kind = "blackhole"

    def apply_to_link(self, link: "Link") -> None:
        link.set_blackhole(self.enabled)


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """Apply ``mutation`` to path ``path`` at simulated time ``time``."""

    time: float
    path: int
    mutation: Mutation

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError("fault time must be non-negative")
        if self.path < 0:
            raise ValueError("path index must be non-negative")


@dataclass(frozen=True)
class FaultTimeline:
    """A scenario's network dynamics: fault events in time order.

    Events are normalised to ``(time, path, kind)`` order at
    construction, so two timelines listing the same events in different
    order are equal — and produce identical cache keys.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.path, e.mutation.kind))
        )
        object.__setattr__(self, "events", ordered)

    def __bool__(self) -> bool:
        return bool(self.events)

    def key_material(self) -> List[Dict[str, Any]]:
        """Canonical JSON-compatible form for result-cache keys."""
        return [
            {
                "time": ev.time,
                "path": ev.path,
                "mutation": {"kind": ev.mutation.kind, **ev.mutation.describe()},
            }
            for ev in self.events
        ]

    def install(self, sim: "Simulator", topology: Any, trace: Any = None) -> None:
        """Schedule every event against a running simulation.

        ``topology`` must offer ``apply_fault(path_index, mutation)``
        (see :class:`repro.netsim.topology.TwoPathTopology`).  With a
        :class:`repro.obs.Tracer` attached, each firing emits a typed
        ``network:<kind>`` event carrying the mutation parameters.
        """
        for ev in self.events:
            if ev.path >= len(topology.paths):
                raise ValueError(
                    f"fault references path {ev.path} but the topology "
                    f"has {len(topology.paths)} paths"
                )
            sim.schedule_at(ev.time, self._fire, ev, sim, topology, trace)

    @staticmethod
    def _fire(ev: FaultEvent, sim: "Simulator", topology: Any, trace: Any) -> None:
        topology.apply_fault(ev.path, ev.mutation)
        if trace is not None and hasattr(trace, "emit"):
            # Category mirrors repro.obs.events.CAT_NETWORK (string kept
            # literal so netsim stays import-independent of the obs layer).
            trace.emit(
                sim.now, "network", "network", ev.mutation.kind,  # repro: allow[obs-category] netsim must not import obs
                ev.path, **ev.mutation.describe(),
            )


# ----------------------------------------------------------------------
# Terse constructors (scenario files and tests)
# ----------------------------------------------------------------------

def link_down(time: float, path: int) -> FaultEvent:
    return FaultEvent(time, path, LinkDown())


def link_up(time: float, path: int) -> FaultEvent:
    return FaultEvent(time, path, LinkUp())


def rate_change(time: float, path: int, rate_mbps: float) -> FaultEvent:
    return FaultEvent(time, path, RateChange(rate_mbps))


def delay_change(time: float, path: int, rtt_ms: float) -> FaultEvent:
    return FaultEvent(time, path, DelayChange(rtt_ms))


def loss_change(time: float, path: int, loss_percent: float) -> FaultEvent:
    return FaultEvent(time, path, LossChange(loss_percent))


def burst_loss(
    time: float, path: int, loss_percent: float,
    mean_burst: float = 4.0, seed: int = 0,
) -> FaultEvent:
    return FaultEvent(time, path, BurstLossStart(loss_percent, mean_burst, seed))


def blackhole(time: float, path: int, enabled: bool = True) -> FaultEvent:
    return FaultEvent(time, path, Blackhole(enabled))


def timeline(*events: FaultEvent) -> FaultTimeline:
    """``timeline(link_down(2.0, 0), link_up(4.0, 0))`` and similar."""
    return FaultTimeline(tuple(events))
