"""The opt-in runtime sanitizer (REPRO_SANITIZE=1).

Two properties under test: every instrumented invariant actually trips
on a violation, and the wiring costs nothing when the sanitizer is off
(no `check` call is ever reached from the hot paths).
"""

import heapq

import pytest

from repro.cc.newreno import NewReno
from repro.core.scheduler import Scheduler
from repro.netsim.engine import Simulator, Timer
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.ackmgr import AckManager
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.quic.flowcontrol import ReceiveWindow, SendWindow
from repro.quic.frames import AckFrame
from repro.quic.packet import Packet, UDP_IP_OVERHEAD
from repro.quic.recovery import LossRecovery
from repro.quic.rtt import RttEstimator
from repro.util import sanitize
from repro.util.sanitize import SanitizerError

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


class TestSwitch:
    def test_error_is_assertion_error(self):
        assert issubclass(SanitizerError, AssertionError)

    def test_enabled_context_restores_previous_state(self):
        before = sanitize.SANITIZE
        with sanitize.enabled():
            assert sanitize.SANITIZE is True
            with sanitize.enabled(False):
                assert sanitize.SANITIZE is False
            assert sanitize.SANITIZE is True
        assert sanitize.SANITIZE is before

    def test_check_passes_and_fails(self):
        sanitize.check(True, "never raised")
        with pytest.raises(SanitizerError, match=r"boom \(k=1\)"):
            sanitize.check(False, "boom", k=1)


class TestZeroOverheadWiring:
    """With the sanitizer off, no hot path ever reaches check()."""

    def test_no_check_calls_during_a_full_transfer(self, monkeypatch):
        calls = []

        def recording_check(condition, message, **context):
            calls.append(message)

        monkeypatch.setattr(sanitize, "check", recording_check)
        with sanitize.enabled(False):
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
        assert result.ok
        assert calls == []

    def test_same_transfer_exercises_checks_when_enabled(self, monkeypatch):
        calls = []
        real_check = sanitize.check

        def recording_check(condition, message, **context):
            calls.append(message)
            real_check(condition, message, **context)

        monkeypatch.setattr(sanitize, "check", recording_check)
        with sanitize.enabled():
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
        assert result.ok
        # The transfer sends, acks and schedules: every hook family fires.
        assert len(calls) > 100


class TestRecoveryInvariants:
    def _recovery(self):
        return LossRecovery(RttEstimator())

    def test_packet_numbers_strictly_monotonic(self):
        rec = self._recovery()
        with sanitize.enabled():
            rec.on_packet_sent(3, (), 100, 0.0, ack_eliciting=True)
            with pytest.raises(SanitizerError, match="monotonic"):
                rec.on_packet_sent(3, (), 100, 0.1, ack_eliciting=True)

    def test_malformed_ack_range_rejected(self):
        rec = self._recovery()
        with sanitize.enabled():
            rec.on_packet_sent(0, (), 100, 0.0, ack_eliciting=True)
            bogus = AckFrame(
                path_id=0, largest_acked=0, ack_delay=0.0, ranges=((0, 5),)
            )
            with pytest.raises(SanitizerError, match="malformed ACK range"):
                rec.on_ack_received(bogus, 0.2)

    def test_ack_beyond_allocated_numbers_trips_connection_check(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PathConfig(10, 40, 50)], seed=1)
        client = QuicConnection(sim, topo.client, "client", QuicConfig())
        QuicConnection(sim, topo.server, "server", QuicConfig())
        client.connect()
        sim.run(until=0.5)
        assert client.established
        bogus = AckFrame(
            path_id=0, largest_acked=10**6, ack_delay=0.0,
            ranges=((10**6, 10**6 + 1),),
        )
        packet = Packet(0, 7000, (bogus,), multipath=False)
        from repro.netsim.node import Datagram

        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="never sent"):
                client.datagram_received(
                    Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD),
                    0,
                )


class TestFlowControlInvariants:
    def test_send_window_credit_never_exceeded(self):
        window = SendWindow(initial_limit=1000)
        with sanitize.enabled():
            window.consume(600)
            # Simulate internal corruption: the limit shrinks under us.
            window.limit = 500
            with pytest.raises(SanitizerError, match="credit exceeded"):
                window.consume(0)

    def test_receive_window_consumption_bounded_by_arrivals(self):
        window = ReceiveWindow(initial_window=1000, max_window=4000)
        window.on_data_received(100)
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="beyond received"):
                window.on_data_consumed(200)

    def test_tcp_style_usage_without_receive_tracking_is_exempt(self):
        window = ReceiveWindow(initial_window=1000, max_window=4000)
        with sanitize.enabled():
            window.on_data_consumed(200)  # highest_received stays 0


class TestAckManagerInvariants:
    def test_largest_acked_must_match_ranges(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        mgr.on_packet_received(5, now=0.1, ack_eliciting=True)
        mgr.largest_received = 7  # corruption: beyond anything received
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="largest_acked disagrees"):
                mgr.build_ack(0.2)

    def test_honest_ack_passes(self):
        mgr = AckManager(path_id=0)
        for pn in (0, 1, 4, 5):
            mgr.on_packet_received(pn, now=0.0, ack_eliciting=True)
        with sanitize.enabled():
            ack = mgr.build_ack(0.1)
        assert ack.largest_acked == 5


class TestCongestionInvariants:
    def test_window_floor_violation_detected(self):
        class BrokenCc(NewReno):
            def _reduce_on_loss(self, now):
                self.cwnd_bytes = 0.0  # below the floor, deliberately

        cc = BrokenCc()
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="cwnd below the minimum"):
                cc.on_loss_event(1.0, 0.5)

    def test_compliant_controller_passes(self):
        cc = NewReno()
        with sanitize.enabled():
            cc.on_ack(0.1, 14000, 0.05)
            cc.on_loss_event(1.0, 0.5)
            cc.on_rto(2.0)


class TestSchedulerInvariants:
    class _StubPath:
        def __init__(self, path_id, can_send):
            self.path_id = path_id
            self._can_send = can_send

        def can_send_data(self):
            return self._can_send

    def test_selecting_a_full_path_trips(self):
        class GreedyScheduler(Scheduler):
            name = "greedy"

            def select_path(self, paths):
                return paths[0]  # ignores window room

        full = self._StubPath(0, can_send=False)
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="no congestion window room"):
                GreedyScheduler().choose([full])

    def test_selecting_outside_candidates_trips(self):
        foreign = self._StubPath(9, can_send=True)

        class ForeignScheduler(Scheduler):
            name = "foreign"

            def select_path(self, paths):
                return foreign

        candidate = self._StubPath(0, can_send=True)
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="outside the candidate"):
                ForeignScheduler().choose([candidate])


class TestEngineInvariants:
    def test_nan_deadline_rejected(self):
        sim = Simulator()
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="NaN"):
                sim.schedule_at(float("nan"), lambda: None)

    def test_past_event_in_heap_detected(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run()
        assert sim.now == 5.0
        # Corrupt the heap with an event in the past (bypasses the
        # schedule_at guard, as a buggy refactor might).
        heapq.heappush(sim._heap, (1.0, -1, Timer(1.0, fired.append, ("bad",))))
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="before current simulated time"):
                sim.run()

    def test_scheduling_in_the_past_still_raises_value_error(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
