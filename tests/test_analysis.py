"""The static analyzer itself: rules, suppression, reporters, CLI.

Each rule gets a fixture source that trips it and a near-miss that must
stay clean, so rule regressions show up as precise test failures rather
than as noise (or silence) in the repo-wide gate.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    findings_from_json,
    render_json,
    render_rule_list,
    render_text,
    suppressed_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULES = {
    "wall-clock",
    "unseeded-random",
    "set-iteration",
    "mutable-default",
    "float-equality",
    "silent-except",
    "obs-category",
    "dict-mutation",
    "perf-timing",
    "hot-path",
}


def check(source, rel_path="repro/module.py", select=()):
    return analyze_source(
        textwrap.dedent(source),
        display_path="module.py",
        rel_path=rel_path,
        select=select,
    )


def rule_ids(findings):
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(all_rules()) == EXPECTED_RULES

    def test_every_rule_has_a_rationale(self):
        for rule_cls in all_rules().values():
            assert rule_cls.rationale

    def test_rule_list_covers_all_rules(self):
        listing = render_rule_list()
        for rule_id in EXPECTED_RULES:
            assert rule_id in listing


class TestWallClockRule:
    def test_time_time_flagged(self):
        findings = check("""
            import time
            t = time.time()
        """)
        assert rule_ids(findings) == {"wall-clock"}

    def test_monotonic_and_perf_counter_flagged(self):
        findings = check("""
            import time
            a = time.monotonic()
            b = time.perf_counter()
        """)
        assert len([f for f in findings if f.rule == "wall-clock"]) == 2

    def test_datetime_now_flagged(self):
        findings = check("""
            import datetime
            d = datetime.datetime.now()
        """)
        assert "wall-clock" in rule_ids(findings)

    def test_from_import_flagged(self):
        findings = check("from time import monotonic\n")
        assert "wall-clock" in rule_ids(findings)

    def test_benchmarks_are_exempt(self):
        findings = check(
            """
            import time
            t = time.time()
            """,
            rel_path="benchmarks/runner.py",
        )
        assert findings == []

    def test_simulated_clock_attribute_is_clean(self):
        findings = check("now = sim.now\n")
        assert findings == []


class TestPerfTimingRule:
    def test_perf_counter_call_flagged(self):
        findings = check(
            """
            import time
            t = time.perf_counter()
            """,
            select=("perf-timing",),
        )
        assert rule_ids(findings) == {"perf-timing"}

    def test_bare_attribute_alias_flagged(self):
        # Aliasing the function would evade a call-only check.
        findings = check(
            "import time\nclock = time.perf_counter\n",
            select=("perf-timing",),
        )
        assert rule_ids(findings) == {"perf-timing"}

    def test_from_import_flagged(self):
        findings = check(
            "from time import perf_counter_ns\n",
            select=("perf-timing",),
        )
        assert rule_ids(findings) == {"perf-timing"}

    def test_metrics_module_is_exempt(self):
        findings = check(
            "import time\nclock = time.perf_counter\n",
            rel_path="repro/obs/metrics.py",
            select=("perf-timing",),
        )
        assert findings == []

    def test_benchmarks_are_exempt(self):
        findings = check(
            "import time\nt = time.perf_counter()\n",
            rel_path="benchmarks/bench_engine.py",
            select=("perf-timing",),
        )
        assert findings == []

    def test_other_time_functions_are_not_this_rules_business(self):
        findings = check(
            "import time\nt = time.monotonic()\n",
            select=("perf-timing",),
        )
        assert findings == []


class TestUnseededRandomRule:
    def test_module_level_random_call_flagged(self):
        findings = check("""
            import random
            x = random.random()
        """)
        assert "unseeded-random" in rule_ids(findings)

    def test_unseeded_random_constructor_flagged(self):
        findings = check("""
            import random
            rng = random.Random()
        """)
        assert "unseeded-random" in rule_ids(findings)

    def test_seeded_constructor_is_clean(self):
        findings = check("""
            import random
            rng = random.Random(42)
        """)
        assert findings == []

    def test_injected_rng_method_is_clean(self):
        findings = check("""
            def jitter(rng):
                return rng.random()
        """)
        assert findings == []


class TestSetIterationRule:
    def test_for_over_set_literal_flagged(self):
        findings = check("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert "set-iteration" in rule_ids(findings)

    def test_comprehension_over_set_call_flagged(self):
        findings = check("ys = [y for y in set([1, 2])]\n")
        assert "set-iteration" in rule_ids(findings)

    def test_sorted_set_is_clean(self):
        findings = check("""
            for x in sorted({3, 1, 2}):
                print(x)
        """)
        assert findings == []


class TestMutableDefaultRule:
    def test_list_default_flagged(self):
        findings = check("""
            def f(items=[]):
                return items
        """)
        assert rule_ids(findings) == {"mutable-default"}

    def test_keyword_only_dict_default_flagged(self):
        findings = check("""
            def f(*, table={}):
                return table
        """)
        assert "mutable-default" in rule_ids(findings)

    def test_lambda_default_flagged(self):
        findings = check("g = lambda xs=[]: xs\n")
        assert "mutable-default" in rule_ids(findings)

    def test_none_default_is_clean(self):
        findings = check("""
            def f(items=None):
                return items or []
        """)
        assert findings == []


class TestFloatEqualityRule:
    def test_float_literal_comparison_flagged(self):
        findings = check("ok = x == 0.5\n")
        assert "float-equality" in rule_ids(findings)

    def test_time_rate_names_flagged(self):
        findings = check("stalled = srtt != delay_s\n")
        assert "float-equality" in rule_ids(findings)

    def test_float_inf_sentinel_is_clean(self):
        findings = check('unset = rtt == float("inf")\n')
        assert findings == []

    def test_integer_comparison_is_clean(self):
        findings = check("done = count == 3\n")
        assert findings == []


class TestSilentExceptRule:
    def test_bare_except_flagged(self):
        findings = check("""
            try:
                work()
            except:
                pass
        """)
        assert "silent-except" in rule_ids(findings)

    def test_swallowed_broad_except_flagged(self):
        findings = check("""
            try:
                work()
            except Exception:
                pass
        """)
        assert "silent-except" in rule_ids(findings)

    def test_broad_except_with_handling_is_clean(self):
        findings = check("""
            try:
                work()
            except Exception as exc:
                log(exc)
        """)
        assert findings == []

    def test_narrow_swallow_is_clean(self):
        findings = check("""
            try:
                work()
            except KeyError:
                pass
        """)
        assert findings == []


class TestObsCategoryRule:
    def test_literal_positional_category_flagged(self):
        findings = check('trace.emit(1.0, "conn-1", "made_up", "event")\n')
        assert "obs-category" in rule_ids(findings)

    def test_literal_keyword_category_flagged(self):
        findings = check('trace.emit(1.0, "conn-1", category="made_up")\n')
        assert "obs-category" in rule_ids(findings)

    def test_constant_category_is_clean(self):
        findings = check('trace.emit(1.0, "conn-1", CAT_RECOVERY, "event")\n')
        assert findings == []


class TestDictMutationRule:
    def test_delete_while_iterating_flagged(self):
        findings = check("""
            for key in table:
                del table[key]
        """)
        assert "dict-mutation" in rule_ids(findings)

    def test_pop_while_iterating_keys_flagged(self):
        findings = check("""
            for key in table.keys():
                table.pop(key)
        """)
        assert "dict-mutation" in rule_ids(findings)

    def test_iterating_a_list_copy_is_clean(self):
        findings = check("""
            for key in list(table):
                del table[key]
        """)
        assert findings == []


class TestHotPathRule:
    """Per-packet allocation patterns in the hot-path modules."""

    BYTES_ACCUM = """
        def encode(frames):
            out = b""
            for frame in frames:
                out += frame.encode()
            return out
    """

    def test_bytes_accumulation_flagged_in_hot_module(self):
        findings = check(self.BYTES_ACCUM, rel_path="repro/quic/wire.py")
        assert rule_ids(findings) == {"hot-path"}

    def test_same_code_clean_outside_hot_modules(self):
        findings = check(self.BYTES_ACCUM, rel_path="repro/apps/report.py")
        assert findings == []

    def test_bytearray_accumulation_is_clean(self):
        # `+=` on a bytearray is an in-place extend — the recommended
        # fix, so the rule must not flag it.
        findings = check("""
            def encode(frames):
                out = bytearray()
                for frame in frames:
                    out += frame.encode()
                return bytes(out)
        """, rel_path="repro/quic/wire.py")
        assert findings == []

    def test_frozen_dataclass_flagged_in_hot_module(self):
        findings = check("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PingFrame:
                token: int
        """, rel_path="repro/quic/frames.py")
        assert rule_ids(findings) == {"hot-path"}

    def test_unfrozen_dataclass_is_clean(self):
        findings = check("""
            from dataclasses import dataclass

            @dataclass
            class Tally:
                count: int = 0
        """, rel_path="repro/quic/frames.py")
        assert findings == []

    def test_allow_marker_suppresses(self):
        findings = check("""
            def encode(frames):
                out = b""
                for frame in frames:
                    out += frame.encode()  # repro: allow[hot-path]
                return out
        """, rel_path="repro/quic/packet.py")
        assert findings == []


class TestSuppression:
    SOURCE = "import time\nt = time.time()  # repro: allow[{marker}]\n"

    def test_exact_id_suppresses(self):
        findings = analyze_source(
            self.SOURCE.format(marker="wall-clock"), "m.py", "repro/m.py"
        )
        assert findings == []

    def test_wildcard_suppresses(self):
        findings = analyze_source(
            self.SOURCE.format(marker="*"), "m.py", "repro/m.py"
        )
        assert findings == []

    def test_comma_list_suppresses(self):
        findings = analyze_source(
            self.SOURCE.format(marker="unseeded-random, wall-clock"),
            "m.py",
            "repro/m.py",
        )
        assert findings == []

    def test_unrelated_id_does_not_suppress(self):
        findings = analyze_source(
            self.SOURCE.format(marker="set-iteration"), "m.py", "repro/m.py"
        )
        assert rule_ids(findings) == {"wall-clock"}

    def test_marker_is_line_scoped(self):
        source = (
            "import time  # repro: allow[wall-clock]\n"
            "t = time.time()\n"
        )
        findings = analyze_source(source, "m.py", "repro/m.py")
        assert rule_ids(findings) == {"wall-clock"}

    def test_suppressed_rules_parser(self):
        line = "x = 1  # repro: allow[a, b] and # repro: allow[c]"
        assert suppressed_rules(line) == {"a", "b", "c"}


class TestSelection:
    DIRTY = "import time\nt = time.time()\nrng = __import__\n"

    def test_select_runs_only_named_rules(self):
        findings = check(
            """
            import time
            t = time.time()

            def f(items=[]):
                return items
            """,
            select=("mutable-default",),
        )
        assert rule_ids(findings) == {"mutable-default"}

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            check("x = 1\n", select=("no-such-rule",))


class TestReporters:
    FINDINGS = [
        Finding("a.py", 3, 5, "wall-clock", "time.time() call"),
        Finding("b.py", 1, 1, "mutable-default", "mutable default"),
    ]

    def test_text_format(self):
        text = render_text(self.FINDINGS, files_analyzed=2)
        assert "a.py:3:5: [wall-clock] time.time() call" in text
        assert text.endswith("2 findings in 2 file(s) analyzed")

    def test_text_singular_footer(self):
        text = render_text(self.FINDINGS[:1], files_analyzed=1)
        assert text.endswith("1 finding in 1 file(s) analyzed")

    def test_json_round_trip(self):
        payload = render_json(self.FINDINGS, files_analyzed=2)
        document = json.loads(payload)
        assert document["count"] == 2
        assert document["files_analyzed"] == 2
        assert findings_from_json(payload) == self.FINDINGS

    def test_json_version_checked(self):
        payload = render_json(self.FINDINGS, 2).replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError, match="version"):
            findings_from_json(payload)

    def test_json_count_checked(self):
        payload = render_json(self.FINDINGS, 2).replace('"count": 2', '"count": 5')
        with pytest.raises(ValueError, match="count"):
            findings_from_json(payload)


class TestRepoTree:
    def test_production_tree_is_clean(self):
        findings, files_analyzed = analyze_paths([REPO_ROOT / "src" / "repro"])
        assert findings == []
        assert files_analyzed > 50


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env=env,
    )


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        proc = run_cli(str(clean))
        assert proc.returncode == 0
        assert "0 findings" in proc.stdout

    def test_findings_exit_one(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(dirty))
        assert proc.returncode == 1
        assert "[wall-clock]" in proc.stdout

    def test_json_output_parses(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(dirty), "--format", "json")
        assert proc.returncode == 1
        findings = findings_from_json(proc.stdout)
        assert findings and findings[0].rule == "wall-clock"

    def test_missing_path_exits_two(self):
        proc = run_cli("does/not/exist.py")
        assert proc.returncode == 2
        assert "no such path" in proc.stderr

    def test_unknown_rule_exits_two(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        proc = run_cli(str(clean), "--select", "bogus-rule")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_select_filters_rules(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        proc = run_cli(str(dirty), "--select", "mutable-default")
        assert proc.returncode == 0

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in EXPECTED_RULES:
            assert rule_id in proc.stdout
