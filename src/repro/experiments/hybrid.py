"""Hybrid-fidelity experiment: packet-level foreground, fluid background.

The scaling bottleneck of packet-level simulation is cross-traffic:
every background byte costs the same per-packet event cascade as a
measured byte, even though the experiment only reads the background's
*aggregate* effect on the bottleneck.  This module runs the same
scenario — one measured MPQUIC download sharing a bottleneck with N
background bulk transfers — at two fidelities:

* ``"packet"``: every background transfer is a full single-path QUIC
  connection over its own competitor host pair
  (:class:`repro.netsim.bottleneck.SharedBottleneckTopology`);
* ``"fluid"``: background transfers are
  :class:`repro.netsim.fluid.FluidFlow` objects that reserve their
  max-min share of the bottleneck analytically (a handful of events
  per RTT instead of per packet), while the measured connection keeps
  running the real per-packet protocol machinery against the remaining
  capacity.

``benchmarks/bench_engine.py`` uses the pair to report the
fluid-vs-packet wall-clock speedup, and ``tests/test_fluid.py`` checks
that the measured connection sees an equivalent bottleneck share under
either fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.core.connection import MultipathQuicConnection
from repro.netsim.bottleneck import SharedBottleneckTopology
from repro.netsim.engine import Simulator
from repro.netsim.fluid import FluidNetwork, background_transfer
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection

#: Default bottleneck for the background-traffic scenario: 20 Mbps,
#: 40 ms RTT, 100 ms of buffer (the fairness experiment's setting).
DEFAULT_BOTTLENECK = PathConfig(
    capacity_mbps=20.0, rtt_ms=40.0, queuing_delay_ms=100.0
)


@dataclass
class HybridRunResult:
    """Outcome of one background-traffic run at a given fidelity."""

    fidelity: str
    #: Seconds from the measured client's connect() to its last byte.
    measured_transfer_time: float
    measured_goodput_bps: float
    #: Flow-completion times of background transfers that finished
    #: before the measured transfer did (packet and fluid alike).
    background_fcts: List[float] = field(default_factory=list)
    sim_events: int = 0

    @property
    def completed(self) -> bool:
        return self.measured_transfer_time > 0.0


def run_background_traffic(
    fidelity: str = "packet",
    bottleneck: PathConfig = DEFAULT_BOTTLENECK,
    n_background: int = 4,
    background_bytes: int = 2_000_000,
    measured_bytes: int = 1_000_000,
    seed: int = 1,
    timeout: float = 120.0,
) -> HybridRunResult:
    """One measured MPQUIC download against N background bulk flows.

    The measured connection always runs packet-level.  ``fidelity``
    selects how the background is modelled; the run stops once the
    measured transfer completes (background still in flight is normal —
    it only exists to load the bottleneck).
    """
    if fidelity not in ("packet", "fluid"):
        raise ValueError(f"unknown fidelity: {fidelity!r}")
    sim = Simulator()
    topo = SharedBottleneckTopology(
        sim,
        bottleneck,
        with_competitor=False,
        seed=seed,
        n_competitors=n_background if fidelity == "packet" else 0,
    )

    mp_client = MultipathQuicConnection(sim, topo.client, "client", QuicConfig())
    mp_server = MultipathQuicConnection(sim, topo.server, "server", QuicConfig())

    received = {"measured": 0}
    done = {"time": 0.0}

    served = set()

    def serve_measured(sid: int, data: bytes, fin: bool) -> None:
        if sid not in served:
            served.add(sid)
            mp_server.send_stream_data(sid, b"x" * measured_bytes, fin=True)

    def count_measured(sid: int, data: bytes, fin: bool) -> None:
        received["measured"] += len(data)
        if fin:
            done["time"] = sim.now

    mp_server.on_stream_data = serve_measured
    mp_client.on_stream_data = count_measured
    mp_client.on_established = lambda: mp_client.send_stream_data(
        mp_client.open_stream(), b"GET", fin=True
    )

    background_fcts: List[float] = []

    if fidelity == "packet":
        # Real endpoint pairs: each background transfer pays the full
        # per-packet cost on the shared bottleneck.
        holders = []  # keep connections alive for the whole run
        for i in range(n_background):
            bg_client = QuicConnection(
                sim, topo.competitor_clients[i], "client", QuicConfig()
            )
            bg_server = QuicConnection(
                sim, topo.competitor_servers[i], "server", QuicConfig()
            )

            bg_served: Set[int] = set()

            def serve_bg(
                sid: int,
                data: bytes,
                fin: bool,
                server: QuicConnection = bg_server,
                seen: Set[int] = bg_served,
            ) -> None:
                if sid not in seen:
                    seen.add(sid)
                    server.send_stream_data(
                        sid, b"x" * background_bytes, fin=True
                    )

            def count_bg(sid: int, data: bytes, fin: bool) -> None:
                if fin:
                    background_fcts.append(sim.now)

            bg_server.on_stream_data = serve_bg
            bg_client.on_stream_data = count_bg
            bg_client.on_established = (
                lambda c=bg_client: c.send_stream_data(
                    c.open_stream(), b"GET", fin=True
                )
            )
            bg_client.connect()
            holders.append((bg_client, bg_server))
    else:
        # Analytic background: fluid flows reserve bottleneck capacity,
        # the measured connection serializes into what remains.
        network = FluidNetwork(sim)
        # The measured MPQUIC connection is ONE coupled (OLIA)
        # connection, so it is entitled to one fair share of the
        # bottleneck even though two subflows cross it.
        network.set_packet_load(topo.bottleneck_down, 1)
        rtt = bottleneck.rtt_ms / 1e3 + 2e-3  # + access links
        bg_cfg = QuicConfig(fidelity="fluid")
        for i in range(n_background):
            flow = background_transfer(
                network,
                f"bg-{i}",
                [topo.bottleneck_down],
                background_bytes,
                rtt,
                config=bg_cfg,
            )
            flow.on_complete = (
                lambda f=flow: background_fcts.append(f.completion_time)
            )

    mp_client.connect()
    sim.run_until(lambda: done["time"] > 0.0, timeout=timeout)

    transfer_time = done["time"]
    goodput = (
        received["measured"] * 8.0 / transfer_time
        if transfer_time > 0.0
        else 0.0
    )
    return HybridRunResult(
        fidelity=fidelity,
        measured_transfer_time=transfer_time,
        measured_goodput_bps=goodput,
        background_fcts=background_fcts,
        sim_events=sim.events_processed,
    )
