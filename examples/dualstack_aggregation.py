#!/usr/bin/env python3
"""Bandwidth aggregation on a dual-stack host (IPv4 + IPv6 paths).

The paper's second motivating use case: a host whose IPv4 and IPv6
paths to a server differ in performance.  MPQUIC should pool both;
the experimental aggregation benefit quantifies how well (1 = perfect
pooling of what single-path QUIC achieves on each path).

Run:  python examples/dualstack_aggregation.py
"""

from repro.experiments.metrics import experimental_aggregation_benefit
from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig

#: An uncongested IPv4 path and a faster but longer IPv6 path.
IPV4 = PathConfig(capacity_mbps=12.0, rtt_ms=40.0, queuing_delay_ms=80.0)
IPV6 = PathConfig(capacity_mbps=25.0, rtt_ms=55.0, queuing_delay_ms=80.0)
FILE_SIZE = 4_000_000


def main() -> None:
    paths = [IPV4, IPV6]
    quic_v4 = run_bulk("quic", paths, FILE_SIZE, initial_interface=0)
    quic_v6 = run_bulk("quic", paths, FILE_SIZE, initial_interface=1)
    mpquic = run_bulk("mpquic", paths, FILE_SIZE, initial_interface=0)

    print(f"GET {FILE_SIZE / 1e6:.0f} MB:")
    print(f"  QUIC over IPv4 only : {quic_v4.transfer_time:6.3f} s "
          f"({quic_v4.goodput_bps / 1e6:5.2f} Mbps)")
    print(f"  QUIC over IPv6 only : {quic_v6.transfer_time:6.3f} s "
          f"({quic_v6.goodput_bps / 1e6:5.2f} Mbps)")
    print(f"  MPQUIC over both    : {mpquic.transfer_time:6.3f} s "
          f"({mpquic.goodput_bps / 1e6:5.2f} Mbps)")
    eben = experimental_aggregation_benefit(
        mpquic.goodput_bps, [quic_v4.goodput_bps, quic_v6.goodput_bps]
    )
    print(f"\nExperimental aggregation benefit: {eben:.2f} "
          f"(0 = best single path, 1 = perfect pooling)")


if __name__ == "__main__":
    main()
