"""Round-trip-time estimation.

QUIC obtains unambiguous RTT samples because retransmissions get fresh
packet numbers, and the ACK frame's *ack delay* field subtracts the
receiver's deliberate delaying of the acknowledgment (paper §2).  The
same estimator, run in ``karn`` mode, models classic TCP: samples from
retransmitted segments are discarded and no ack-delay correction is
available, which is precisely the "ambiguities linked to the estimation
of the round-trip-time in the Linux kernel" the paper blames for
MPTCP's scheduler mis-preferring slow paths (§4.1).
"""

from __future__ import annotations

from typing import Callable, Optional


class RttEstimator:
    """RFC 6298-style smoothed RTT with optional ack-delay correction."""

    __slots__ = (
        "use_ack_delay", "latest", "min_rtt", "smoothed", "variance",
        "_has_sample", "samples_taken", "on_sample",
    )

    ALPHA = 0.125
    BETA = 0.25

    def __init__(self, use_ack_delay: bool = True) -> None:
        self.use_ack_delay = use_ack_delay
        self.latest: float = 0.0
        self.min_rtt: float = float("inf")
        self.smoothed: float = 0.0
        self.variance: float = 0.0
        self._has_sample = False
        self.samples_taken = 0
        #: Optional telemetry hook ``fn(estimator)``, invoked after each
        #: absorbed sample when a tracer is attached (no-op otherwise).
        self.on_sample: Optional[Callable[[RttEstimator], None]] = None

    @property
    def has_sample(self) -> bool:
        """True once at least one valid sample was absorbed."""
        return self._has_sample

    def update(self, rtt_sample: float, ack_delay: float = 0.0) -> None:
        """Absorb a new RTT measurement.

        Args:
            rtt_sample: measured time from send to ACK receipt.
            ack_delay: receiver-reported delay, subtracted when the
                estimator trusts it (QUIC mode) and doing so would not
                push the sample below the observed minimum.
        """
        if rtt_sample <= 0:
            return
        self.latest = rtt_sample
        if rtt_sample < self.min_rtt:
            self.min_rtt = rtt_sample
        adjusted = rtt_sample
        if self.use_ack_delay and rtt_sample - ack_delay >= self.min_rtt:
            adjusted = rtt_sample - ack_delay
        if not self._has_sample:
            self.smoothed = adjusted
            self.variance = adjusted / 2.0
            self._has_sample = True
        else:
            delta = abs(self.smoothed - adjusted)
            self.variance = (1 - self.BETA) * self.variance + self.BETA * delta
            self.smoothed = (1 - self.ALPHA) * self.smoothed + self.ALPHA * adjusted
        self.samples_taken += 1
        if self.on_sample is not None:
            self.on_sample(self)

    def rto(self, min_rto: float = 0.2, max_rto: float = 60.0, max_ack_delay: float = 0.025) -> float:
        """Retransmission timeout derived from the current estimate."""
        if not self._has_sample:
            return 0.5  # initial RTO before any sample (gQUIC default)
        timeout = self.smoothed + max(4.0 * self.variance, 0.001) + max_ack_delay
        return min(max(timeout, min_rto), max_rto)
