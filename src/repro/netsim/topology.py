"""Topology builders.

The paper's main evaluation topology (its Fig. 2) is two multihomed
hosts connected by two fully disjoint paths, each path characterised by
a capacity, a round-trip-time, a maximum queuing delay (bufferbloat) and
a random loss percentage (its Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:
    from repro.netsim.faults import Mutation

from repro.netsim.engine import Simulator
from repro.netsim.link import GilbertElliottLoss, Link
from repro.netsim.node import Datagram, Host

#: Conservative MTU; both stacks cap their datagrams at this size.
MTU = 1500

#: Minimum buffer so a zero queuing-delay path can absorb an initial
#: window burst (IW10) without pathological startup losses.
MIN_QUEUE_PACKETS = 10


@dataclass(frozen=True)
class PathConfig:
    """Characteristics of one end-to-end path (both directions symmetric).

    Attributes:
        capacity_mbps: link rate in Mbit/s.
        rtt_ms: two-way propagation delay in milliseconds (split evenly
            between the forward and return links).
        queuing_delay_ms: maximum extra delay a full drop-tail buffer may
            add; the buffer is sized as ``capacity * queuing_delay``.
        loss_percent: random loss probability per datagram, in percent,
            applied independently on both directions.
    """

    capacity_mbps: float
    rtt_ms: float
    queuing_delay_ms: float = 0.0
    loss_percent: float = 0.0
    #: Optional netem-style delay variation per direction (ms).
    jitter_ms: float = 0.0
    #: Mean loss-burst length in packets (0 = independent Bernoulli
    #: losses, the paper's model; >= 1 = Gilbert-Elliott bursts with
    #: this mean length at the same average ``loss_percent``).
    loss_burst: float = 0.0

    @property
    def rate_bps(self) -> float:
        return self.capacity_mbps * 1e6

    @property
    def one_way_delay(self) -> float:
        return self.rtt_ms / 2.0 / 1e3

    @property
    def loss_rate(self) -> float:
        return self.loss_percent / 100.0

    @property
    def queue_capacity_bytes(self) -> int:
        by_delay = int(self.rate_bps / 8.0 * self.queuing_delay_ms / 1e3)
        return max(by_delay, MIN_QUEUE_PACKETS * MTU)

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the bare path (no queuing)."""
        return self.rate_bps / 8.0 * self.rtt_ms / 1e3


class TwoPathTopology:
    """Two hosts joined by ``len(paths)`` disjoint symmetric paths.

    One forward and one return :class:`Link` is created per path.  The
    client's interface *i* talks exclusively to the server's interface
    *i*.  Loss randomness on the four/two links derives from a single
    seed so a scenario replays identically.
    """

    def __init__(
        self,
        sim: Simulator,
        paths: List[PathConfig],
        seed: int = 0,
        client_name: str = "client",
        server_name: str = "server",
    ) -> None:
        if not paths:
            raise ValueError("at least one path is required")
        self.sim = sim
        self.paths = list(paths)
        self.client = Host(client_name)
        self.server = Host(server_name)
        self.forward_links: List[Link] = []
        self.return_links: List[Link] = []
        base_rng = random.Random(seed)

        def burst_model(cfg: PathConfig) -> Optional[GilbertElliottLoss]:
            if cfg.loss_burst >= 1.0 and cfg.loss_percent > 0.0:
                return GilbertElliottLoss(
                    avg_loss_rate=cfg.loss_rate,
                    mean_burst=cfg.loss_burst,
                    rng=random.Random(base_rng.getrandbits(32)),
                )
            return None

        for i, cfg in enumerate(paths):
            c_iface = self.client.add_interface(f"10.{i}.0.1")
            s_iface = self.server.add_interface(f"10.{i}.0.2")
            fwd = Link(
                sim,
                rate_bps=cfg.rate_bps,
                prop_delay=cfg.one_way_delay,
                queue_capacity=cfg.queue_capacity_bytes,
                loss_rate=cfg.loss_rate,
                rng=random.Random(base_rng.getrandbits(32)),
                sink=_make_sink(self.server, i),
                name=f"path{i}-fwd",
                jitter=cfg.jitter_ms / 1e3,
                burst_loss=burst_model(cfg),
            )
            ret = Link(
                sim,
                rate_bps=cfg.rate_bps,
                prop_delay=cfg.one_way_delay,
                queue_capacity=cfg.queue_capacity_bytes,
                loss_rate=cfg.loss_rate,
                rng=random.Random(base_rng.getrandbits(32)),
                sink=_make_sink(self.client, i),
                name=f"path{i}-ret",
                jitter=cfg.jitter_ms / 1e3,
                burst_loss=burst_model(cfg),
            )
            c_iface.attach(fwd)
            s_iface.attach(ret)
            self.forward_links.append(fwd)
            self.return_links.append(ret)

    def apply_fault(self, path_index: int, mutation: "Mutation") -> None:
        """Apply one fault mutation to both directions of a path.

        The entry point :class:`repro.netsim.faults.FaultTimeline` uses
        when its events fire; paths are symmetric, so the forward and
        return links receive the same mutation.
        """
        for link in (self.forward_links[path_index], self.return_links[path_index]):
            link.apply(mutation)

    def set_path_loss(self, path_index: int, loss_percent: float) -> None:
        """Change a path's random loss in both directions (handover test).

        Overrides any burst-loss model on the path with plain Bernoulli
        loss at the given rate.
        """
        rate = loss_percent / 100.0
        for link in (self.forward_links[path_index], self.return_links[path_index]):
            link.burst_loss = None
            link.set_loss_rate(rate)

    def set_path_up(self, path_index: int, up: bool) -> None:
        """Administratively enable or disable a path at both hosts."""
        self.client.interfaces[path_index].up = up
        self.server.interfaces[path_index].up = up

    def best_path_index(self) -> int:
        """Index of the path with the highest capacity (ties: lowest RTT)."""
        return min(
            range(len(self.paths)),
            key=lambda i: (-self.paths[i].capacity_mbps, self.paths[i].rtt_ms),
        )

    def worst_path_index(self) -> int:
        """Index of the path with the lowest capacity (ties: highest RTT)."""
        return min(
            range(len(self.paths)),
            key=lambda i: (self.paths[i].capacity_mbps, -self.paths[i].rtt_ms),
        )


def _make_sink(host: Host, interface_index: int) -> "Callable[[Datagram], None]":
    def sink(datagram: Datagram) -> None:
        host.deliver(datagram, interface_index)

    return sink
