"""Sets of non-overlapping integer ranges.

Used for QUIC ACK ranges, TCP SACK scoreboards and stream reassembly
bookkeeping.  Ranges are half-open ``[start, stop)`` and kept sorted and
coalesced at all times.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Tuple


class RangeSet:
    """A sorted set of disjoint half-open integer ranges.

    The representation is a flat sorted list ``[s0, e0, s1, e1, ...]``
    with ``s0 < e0 < s1 < e1 < ...`` which keeps membership tests and
    insertions logarithmic-plus-shift.
    """

    __slots__ = ("_bounds",)

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()) -> None:
        self._bounds: List[int] = []
        for start, stop in ranges:
            self.add(start, stop)

    def add(self, start: int, stop: int) -> None:
        """Insert ``[start, stop)``, merging with any overlapping ranges."""
        if stop <= start:
            return
        b = self._bounds
        # Fast path for the dominant in-order pattern (ACK ranges and
        # stream reassembly almost always grow at the top end).
        if b:
            last = b[-1]
            if start > last:  # disjoint new range at the end
                b.append(start)
                b.append(stop)
                return
            if start == last:  # touches the last range: extend it
                b[-1] = stop
                return
        else:
            b.append(start)
            b.append(stop)
            return
        # Index of first bound > start and >= stop respectively.
        lo = bisect.bisect_right(b, start)
        hi = bisect.bisect_left(b, stop)
        # If lo is even, start falls in a gap; the new range begins at start.
        new_start = start if lo % 2 == 0 else b[lo - 1]
        new_stop = stop if hi % 2 == 0 else b[hi]
        if lo % 2 == 0:
            left = lo
        else:
            left = lo - 1
        if hi % 2 == 0:
            right = hi
        else:
            right = hi + 1
        # Merge with an adjacent (touching) range on each side.
        if left >= 2 and b[left - 1] == new_start:
            new_start = b[left - 2]
            left -= 2
        if right + 1 < len(b) and b[right] == new_stop:
            new_stop = b[right + 1]
            right += 2
        b[left:right] = [new_start, new_stop]

    def add_value(self, value: int) -> None:
        """Insert a single integer."""
        self.add(value, value + 1)

    def remove(self, start: int, stop: int) -> None:
        """Remove ``[start, stop)`` from the set."""
        if stop <= start:
            return
        b = self._bounds
        lo = bisect.bisect_right(b, start)
        hi = bisect.bisect_left(b, stop)
        insert: List[int] = []
        if lo % 2 == 1:  # start falls inside a range: keep its left part
            if b[lo - 1] < start:
                insert.extend((b[lo - 1], start))
            lo -= 1
        if hi % 2 == 1:  # stop falls inside a range: keep its right part
            if stop < b[hi]:
                insert.extend((stop, b[hi]))
            hi += 1
        b[lo:hi] = insert

    def __contains__(self, value: int) -> bool:
        idx = bisect.bisect_right(self._bounds, value)
        return idx % 2 == 1

    def contains_range(self, start: int, stop: int) -> bool:
        """True when the whole of ``[start, stop)`` is present."""
        if stop <= start:
            return True
        idx = bisect.bisect_right(self._bounds, start)
        return idx % 2 == 1 and stop <= self._bounds[idx]

    def intersects(self, start: int, stop: int) -> bool:
        """True when any integer of ``[start, stop)`` is present."""
        if stop <= start:
            return False
        b = self._bounds
        lo = bisect.bisect_right(b, start)
        hi = bisect.bisect_left(b, stop)
        return lo % 2 == 1 or hi != lo

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        b = self._bounds
        for i in range(0, len(b), 2):
            yield (b[i], b[i + 1])

    def __len__(self) -> int:
        return len(self._bounds) // 2

    def __bool__(self) -> bool:
        return bool(self._bounds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._bounds == other._bounds

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s},{e})" for s, e in self)
        return f"RangeSet({inner})"

    @property
    def total(self) -> int:
        """Number of integers covered by the set."""
        b = self._bounds
        return sum(b[i + 1] - b[i] for i in range(0, len(b), 2))

    @property
    def min(self) -> int:
        """Smallest covered integer.  Raises ``IndexError`` when empty."""
        return self._bounds[0]

    @property
    def max(self) -> int:
        """Largest covered integer.  Raises ``IndexError`` when empty."""
        return self._bounds[-1] - 1

    def copy(self) -> "RangeSet":
        dup = RangeSet()
        dup._bounds = list(self._bounds)
        return dup

    def first_gap_after(self, value: int) -> int:
        """Smallest integer >= ``value`` that is *not* in the set."""
        idx = bisect.bisect_right(self._bounds, value)
        if idx % 2 == 1:
            return self._bounds[idx]
        return value

    def descending_ranges(self, limit: int = 0) -> List[Tuple[int, int]]:
        """Ranges from highest to lowest, optionally truncated to ``limit``.

        QUIC ACK frames report the most recent (highest) packet ranges
        first and cap the number of ranges they carry; TCP SACK blocks
        behave similarly with a much smaller cap.
        """
        b = self._bounds
        ranges = [(b[i], b[i + 1]) for i in range(len(b) - 2, -1, -2)]
        if limit:
            ranges = ranges[:limit]
        return ranges
