"""Property tests: arbitrary application write patterns deliver exactly.

Whatever sequence of writes (sizes, timing, streams) the application
produces, the receiver must see exactly those bytes in order per
stream, across every protocol family.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection

PATHS = [PathConfig(10, 30, 60, loss_percent=1.0),
         PathConfig(10, 30, 60, loss_percent=1.0)]

write_plan = st.lists(
    st.tuples(
        st.integers(1, 30_000),          # write size
        st.floats(0.0, 0.05),            # delay before the write
    ),
    min_size=1,
    max_size=8,
)

SETTINGS = dict(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def patterned(total_writes):
    """Deterministic but non-trivial payload bytes for verification."""
    blob = bytearray()
    for i, (size, _delay) in enumerate(total_writes):
        blob += bytes([(i * 37 + j) % 251 for j in range(size)])
    return bytes(blob)


class TestQuicWritePatterns:
    @given(plan=write_plan, seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_chunked_delayed_writes_deliver_exactly(self, plan, seed):
        sim = Simulator()
        topo = TwoPathTopology(sim, PATHS, seed=seed)
        client = QuicConnection(sim, topo.client, "client", QuicConfig())
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        expected = patterned(plan)
        received = bytearray()
        done = {}

        def on_server_data(sid, data, fin):
            received.extend(data)
            if fin:
                done["t"] = sim.now

        server.on_stream_data = on_server_data

        def start():
            sid = client.open_stream()
            offset = 0

            def write(index):
                nonlocal offset
                size, _ = plan[index]
                chunk = expected[offset:offset + size]
                offset += size
                last = index == len(plan) - 1
                client.send_stream_data(sid, chunk, fin=last)
                if not last:
                    sim.schedule(plan[index + 1][1], write, index + 1)

            sim.schedule(plan[0][1], write, 0)

        client.on_established = start
        client.connect()
        ok = sim.run_until(lambda: "t" in done, timeout=300.0)
        assert ok
        assert bytes(received) == expected


class TestTcpWritePatterns:
    @given(plan=write_plan, seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_chunked_delayed_writes_deliver_exactly(self, plan, seed):
        sim = Simulator()
        topo = TwoPathTopology(sim, PATHS, seed=seed)
        client = TcpConnection(sim, topo.client, "client", TcpConfig())
        server = TcpConnection(sim, topo.server, "server", TcpConfig())
        expected = patterned(plan)
        received = bytearray()
        done = {}

        def on_server_data(data, fin):
            received.extend(data)
            if fin:
                done["t"] = sim.now

        server.on_app_data = on_server_data

        def start():
            offset = 0

            def write(index):
                nonlocal offset
                size, _ = plan[index]
                chunk = expected[offset:offset + size]
                offset += size
                last = index == len(plan) - 1
                client.send_app_data(chunk, fin=last)
                if not last:
                    sim.schedule(plan[index + 1][1], write, index + 1)

            sim.schedule(plan[0][1], write, 0)

        client.on_established = start
        client.connect()
        ok = sim.run_until(lambda: "t" in done, timeout=300.0)
        assert ok
        assert bytes(received) == expected
