#!/usr/bin/env python3
"""Compare MPQUIC packet schedulers on heterogeneous paths (§3).

The paper's scheduler prefers the lowest-RTT path with window space and
duplicates traffic onto RTT-unknown paths.  This example contrasts it
with round-robin (the alternative the paper rejects as fragile under
delay heterogeneity) and with duplication disabled.

Run:  python examples/scheduler_comparison.py
"""

from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig

PATHS = [
    PathConfig(capacity_mbps=15.0, rtt_ms=15.0, queuing_delay_ms=40.0),
    PathConfig(capacity_mbps=4.0, rtt_ms=120.0, queuing_delay_ms=200.0),
]
FILE_SIZE = 3_000_000

VARIANTS = [
    ("lowest-RTT + duplication (paper)", "lowest_rtt", True),
    ("lowest-RTT, no duplication", "lowest_rtt_no_dup", False),
    ("round-robin", "round_robin", True),
]


def main() -> None:
    print(f"GET {FILE_SIZE / 1e6:.0f} MB over 15 Mbps/15 ms + 4 Mbps/120 ms\n")
    for label, scheduler, duplicate in VARIANTS:
        config = QuicConfig(
            scheduler=scheduler, duplicate_on_unknown_rtt=duplicate
        )
        result = run_bulk("mpquic", PATHS, FILE_SIZE, quic_config=config)
        print(f"  {label:36s} {result.transfer_time:7.3f} s "
              f"({result.goodput_bps / 1e6:5.2f} Mbps)")


if __name__ == "__main__":
    main()
