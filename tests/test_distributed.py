"""Distributed sweep executor: leases, crash recovery, streaming folds.

The contract under test: a sweep spread over independent worker
processes through a spool directory finishes with results
bit-identical to the serial loop, no matter which process dies when —
a SIGKILLed worker's lease expires and is reclaimed, a restarted
coordinator recovers committed cells from the cache, a corrupt entry
or cell file quarantines instead of crashing — and aggregate mode
folds commits into bounded-memory sketches without ever building the
result matrix.
"""

import json
import os
import signal
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import distributed as dist
from repro.experiments.metrics import StreamingJain, jain_index
from repro.experiments.parallel import (
    SweepCell,
    result_to_dict,
    run_cell,
)
from repro.netsim.topology import PathConfig

PATHS = (
    PathConfig(capacity_mbps=8.0, rtt_ms=20.0, queuing_delay_ms=10.0),
    PathConfig(capacity_mbps=4.0, rtt_ms=40.0, queuing_delay_ms=20.0),
)


def _syn_cells(n, seed=1):
    """Cheap cells for the synthetic runner (no simulation executes)."""
    return [
        SweepCell(
            paths=(),
            protocol=("mpquic" if i % 2 else "quic"),
            initial_interface="wifi",
            file_size=100_000 + i,
            repetitions=1,
            base_seed=seed,
        )
        for i in range(n)
    ]


def _sim_cells(file_size=150_000):
    return [
        SweepCell(
            paths=PATHS,
            protocol=protocol,
            initial_interface=0,
            file_size=file_size,
            repetitions=1,
            base_seed=1,
        )
        for protocol in ("quic", "mpquic")
    ]


def _telemetry_records(spool):
    with open(spool.telemetry_path) as fh:
        return [json.loads(line) for line in fh]


class TestSpool:
    def test_init_creates_layout_and_tokens(self, tmp_path):
        cells = _syn_cells(5)
        spool = dist.init_spool(tmp_path / "s", cells, runner="synthetic")
        assert spool.keys == tuple(c.cache_key() for c in cells)
        assert sorted(os.listdir(spool.todo_dir)) == sorted(spool.keys)
        for key in spool.keys:
            assert spool.load_cell(key).cache_key() == key

    def test_reinit_same_plan_is_idempotent(self, tmp_path):
        cells = _syn_cells(3)
        first = dist.init_spool(tmp_path / "s", cells, runner="synthetic")
        again = dist.init_spool(tmp_path / "s", cells, runner="synthetic")
        assert again.keys == first.keys

    def test_different_plan_is_refused(self, tmp_path):
        dist.init_spool(tmp_path / "s", _syn_cells(3), runner="synthetic")
        with pytest.raises(dist.SpoolError, match="different sweep plan"):
            dist.init_spool(tmp_path / "s", _syn_cells(4), runner="synthetic")

    def test_missing_or_corrupt_manifest_raises(self, tmp_path):
        with pytest.raises(dist.SpoolError, match="no spool manifest"):
            dist.Spool.open(tmp_path / "nope")
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "manifest.json").write_text("{torn")
        with pytest.raises(dist.SpoolError, match="corrupt spool manifest"):
            dist.Spool.open(tmp_path / "s")

    def test_format_version_mismatch_raises(self, tmp_path):
        spool = dist.init_spool(
            tmp_path / "s", _syn_cells(1), runner="synthetic"
        )
        manifest = json.loads((spool.root / "manifest.json").read_text())
        manifest["format"] = -1
        (spool.root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(dist.SpoolError, match="format"):
            dist.Spool.open(spool.root)

    def test_unknown_runner_refused(self, tmp_path):
        with pytest.raises(ValueError, match="unknown runner"):
            dist.init_spool(tmp_path / "s", _syn_cells(1), runner="magic")


class TestLeaseProtocol:
    """Deterministic single-step checks; every call takes `now`."""

    def _spool(self, tmp_path, n=2, ttl=10.0, max_attempts=3):
        return dist.init_spool(
            tmp_path / "s", _syn_cells(n), runner="synthetic",
            ttl=ttl, max_attempts=max_attempts,
        )

    def test_claim_has_exactly_one_winner(self, tmp_path):
        spool = self._spool(tmp_path)
        key = spool.keys[0]
        assert dist.claim_cell(spool, key, "w0", now=100.0)
        assert not dist.claim_cell(spool, key, "w1", now=100.0)
        assert not (spool.todo_dir / key).exists()

    def test_fresh_lease_is_not_reclaimed(self, tmp_path):
        spool = self._spool(tmp_path, ttl=10.0)
        key = spool.keys[0]
        dist.claim_cell(spool, key, "w0", now=100.0)
        assert dist.reclaim_expired(spool, now=105.0, worker_id="w1") == 0
        assert not (spool.todo_dir / key).exists()

    def test_expired_lease_is_reclaimed_and_requeued(self, tmp_path):
        spool = self._spool(tmp_path, ttl=10.0)
        key = spool.keys[0]
        dist.claim_cell(spool, key, "w0", now=100.0)
        assert dist.reclaim_expired(spool, now=111.0, worker_id="w1") == 1
        assert (spool.todo_dir / key).exists()
        assert dist.failure_count(spool, key) == 1
        assert "lease expired" in dist.failure_errors(spool, key)[0]

    def test_renewal_extends_the_deadline(self, tmp_path):
        spool = self._spool(tmp_path, ttl=10.0)
        key = spool.keys[0]
        dist.claim_cell(spool, key, "w0", now=100.0)
        assert dist.renew_lease(spool, key, "w0", now=108.0)
        # Would have expired at 110 without the renewal (now 118).
        assert dist.reclaim_expired(spool, now=112.0, worker_id="w1") == 0

    def test_renewal_after_reclaim_reports_loss(self, tmp_path):
        spool = self._spool(tmp_path, ttl=10.0)
        key = spool.keys[0]
        dist.claim_cell(spool, key, "w0", now=100.0)
        dist.reclaim_expired(spool, now=111.0, worker_id="w1")
        assert not dist.renew_lease(spool, key, "w0", now=112.0)

    def test_claim_in_progress_gets_mtime_grace(self, tmp_path):
        # A lease file still holding the renamed token's content (the
        # claimer died between rename and stamp) must not read as
        # instantly expired — it gets mtime + TTL.
        spool = self._spool(tmp_path, ttl=10.0)
        key = spool.keys[0]
        lease = spool.leases_dir / f"{key}.w0.lease"
        os.rename(spool.todo_dir / key, lease)  # claim without stamp
        now = os.stat(lease).st_mtime
        owner, deadline = dist.read_lease(lease, now, spool.ttl)
        assert owner == "?"
        assert deadline == pytest.approx(now + spool.ttl)
        assert dist.reclaim_expired(spool, now=now, worker_id="w1") == 0
        # ... and one TTL later it is reclaimable like any dead lease.
        assert (
            dist.reclaim_expired(
                spool, now=now + spool.ttl + 1.0, worker_id="w1"
            )
            == 1
        )

    def test_exhausted_attempts_quarantine_on_reclaim(self, tmp_path):
        spool = self._spool(tmp_path, ttl=10.0, max_attempts=2)
        key = spool.keys[0]
        now = 100.0
        for _ in range(2):  # claim, die, reclaim — twice
            dist.claim_cell(spool, key, "w0", now=now)
            now += spool.ttl + 1.0
            dist.reclaim_expired(spool, now=now, worker_id="w1")
        assert dist.is_quarantined(spool, key)
        assert not (spool.todo_dir / key).exists()
        entries = dist.quarantine_entries(spool)
        assert [e["cache_key"] for e in entries] == [key]
        assert entries[0]["attempts"] == 2

    def test_ensure_tokens_requeues_lost_cells(self, tmp_path):
        spool = self._spool(tmp_path, n=3)
        lost = spool.keys[0]
        os.unlink(spool.todo_dir / lost)  # simulate a vanished token
        assert dist.ensure_tokens(spool) == 1
        assert (spool.todo_dir / lost).exists()
        assert dist.ensure_tokens(spool) == 0  # now a fixed point


class TestLeaseStateMachine:
    """Property test: random claim/renew/expire/reclaim/commit walks.

    Invariants, whatever the interleaving: expired foreign leases are
    always reclaimable; no cell is ever lost (every key stays
    committed, quarantined, queued or leased); and a key is never
    committed twice with different digests — any surviving cache entry
    equals the deterministic re-execution bit for bit.
    """

    OPS = ("claim", "renew", "expire", "reclaim", "commit", "fail")

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(OPS),
                st.integers(min_value=0, max_value=2),  # worker
                st.integers(min_value=0, max_value=3),  # cell
            ),
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_walk_preserves_invariants(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            cells = _syn_cells(4)
            spool = dist.init_spool(
                Path(tmp) / "s", cells, runner="synthetic",
                ttl=1000.0, max_attempts=10_000,
            )
            keys = list(spool.keys)
            cache = spool.cache()
            now = 1_000_000.0
            for op, w, c in ops:
                worker = f"w{w}"
                key = keys[c]
                if op == "claim":
                    dist.claim_cell(spool, key, worker, now)
                elif op == "renew":
                    dist.renew_lease(spool, key, worker, now)
                elif op == "expire":
                    now += spool.ttl + 1.0
                elif op == "reclaim":
                    dist.reclaim_expired(spool, now, "reaper")
                elif op == "commit":
                    # Commits are legal even from a zombie whose lease
                    # was reclaimed: idempotent by construction.
                    cache.put(
                        spool.load_cell(key),
                        dist.synthetic_result(spool.load_cell(key)),
                    )
                    dist.release_lease(spool, key, worker)
                elif op == "fail":
                    lease = spool.leases_dir / f"{key}.{worker}.lease"
                    if lease.exists():
                        dist.record_failure(spool, key, "boom", worker)
                        dist.release_to_todo(spool, key, worker)

                # Inline invariant: no key ever unaccounted for.
                committed, quarantined = dist.terminal_keys(spool)
                queued = set(os.listdir(spool.todo_dir))
                leased = {
                    p.name.split(".", 1)[0]
                    for p in dist._lease_files(spool)
                }
                missing = (
                    set(keys) - committed - quarantined - queued - leased
                )
                # A committed key may legitimately lose its token; only
                # non-terminal keys must stay claimable or leased.
                assert not missing

            # Expired leases are always reclaimable: after a reclaim
            # pass no foreign lease is past its deadline.
            dist.reclaim_expired(spool, now, "reaper")
            for lease in dist._lease_files(spool):
                owner, deadline = dist.read_lease(lease, now, spool.ttl)
                assert deadline >= now or owner == "reaper"

            # Drain to the end: every cell reaches a terminal state.
            dist.ensure_tokens(spool)
            dist.worker_loop(spool.root, worker_id="drainer")
            committed, quarantined = dist.terminal_keys(spool)
            assert committed | quarantined == set(keys)
            assert not quarantined  # attempts bound is unreachable here

            # Never two different digests: whatever sequence of
            # (possibly duplicate) commits happened, each entry equals
            # the deterministic re-execution.
            for key in keys:
                stored = cache.get_key(key)
                expected = dist.synthetic_result(spool.load_cell(key))
                assert result_to_dict(stored) == result_to_dict(expected)


class TestWorkerDrain:
    def test_single_worker_drains_spool(self, tmp_path):
        cells = _syn_cells(20)
        spool = dist.init_spool(tmp_path / "s", cells, runner="synthetic")
        stats = dist.worker_loop(spool.root, worker_id="w0")
        assert stats.committed == 20
        committed, _ = dist.terminal_keys(spool)
        assert committed == set(spool.keys)
        records = _telemetry_records(spool)
        kinds = [r["record"] for r in records]
        assert kinds.count("worker_start") == 1
        assert kinds.count("worker_end") == 1
        assert kinds.count("cell_committed") == 20

    def test_corrupt_cell_file_quarantines_not_crashes(self, tmp_path):
        cells = _syn_cells(4)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", max_attempts=2,
        )
        bad = spool.keys[1]
        (spool.cells_dir / f"{bad}.pkl").write_bytes(b"\x80notapickle")
        stats = dist.worker_loop(spool.root, worker_id="w0")
        assert stats.committed == 3
        assert stats.quarantined == 1
        committed, quarantined = dist.terminal_keys(spool)
        assert quarantined == {bad}
        assert committed == set(spool.keys) - {bad}
        entry = dist.quarantine_entries(spool)[0]
        assert entry["cache_key"] == bad
        assert entry["attempts"] >= 2

    def test_subprocess_workers_match_serial(self, tmp_path):
        cells = _sim_cells()
        serial = [run_cell(c) for c in cells]
        outcome = dist.coordinate(
            tmp_path / "s", cells, workers=2, collect="results",
            runner="simulation", ttl=10.0,
        )
        assert outcome.stats.complete
        assert outcome.stats.workers_spawned == 2
        assert [result_to_dict(r) for r in outcome.results] == [
            result_to_dict(r) for r in serial
        ]


class TestCrashRecovery:
    def test_sigkilled_worker_is_reclaimed_and_sweep_completes(
        self, tmp_path
    ):
        # A worker killed -9 mid-cell stops heartbeating; its lease
        # expires and a later worker reclaims and re-runs the cell.
        # Results must equal the serial run exactly.
        cells = _sim_cells(file_size=2_000_000)
        serial = [run_cell(c) for c in cells]
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="simulation", ttl=1.0,
        )
        victim = dist.spawn_worker(spool, "victim")
        try:
            deadline = time.time() + 30.0
            while time.time() < deadline and not dist._lease_files(spool):
                time.sleep(0.02)
            assert dist._lease_files(spool), "worker never claimed a cell"
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)
        stats = dist.worker_loop(spool.root, worker_id="rescuer")
        committed, quarantined = dist.terminal_keys(spool)
        assert committed == set(spool.keys)
        assert not quarantined
        outcome = dist.coordinate(
            spool.root, collect="results", workers=0,
        )
        assert outcome.stats.complete
        assert [result_to_dict(r) for r in outcome.results] == [
            result_to_dict(r) for r in serial
        ]
        # The kill is visible in the protocol's records: either the
        # rescuer reclaimed the victim's expired lease, or the victim
        # died before stamping and the token was simply re-claimed.
        assert stats.committed >= 1

    def test_coordinator_restart_recovers_bit_identically(self, tmp_path):
        cells = _syn_cells(30)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        # Phase 1: a worker commits part of the sweep, then everything
        # stops (the "coordinator crashed" state — it keeps no state,
        # so there is nothing else to lose).
        dist.worker_loop(spool.root, worker_id="w0", max_cells=10)
        committed_before, _ = dist.terminal_keys(spool)
        assert len(committed_before) == 10
        # Phase 2: a fresh coordinator against the same spool recovers
        # the 10 from cache and drives the remaining 20 to completion.
        outcome = dist.coordinate(
            spool.root, cells, workers=1, collect="results",
            runner="synthetic", ttl=5.0,
        )
        assert outcome.stats.complete
        assert outcome.stats.committed == 30
        for cell, got in zip(cells, outcome.results):
            assert result_to_dict(got) == result_to_dict(
                dist.synthetic_result(cell)
            )
        starts = [
            r for r in _telemetry_records(spool)
            if r["record"] == "coordinator_start"
        ]
        assert len(starts) == 1  # phase 1 had no coordinator at all

    def test_corrupt_cache_entry_is_requeued_and_reexecuted(self, tmp_path):
        cells = _syn_cells(6)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        dist.worker_loop(spool.root, worker_id="w0")
        # Corrupt one committed entry on disk (torn write).
        key = spool.keys[2]
        entry_path = spool.root / "cache" / key[:2] / f"{key}.json"
        entry_path.write_text(entry_path.read_text()[:40])
        with pytest.warns(RuntimeWarning, match="corrupt sweep-cache"):
            outcome = dist.coordinate(
                spool.root, cells, workers=1, collect="results",
                runner="synthetic", ttl=5.0,
            )
        assert outcome.stats.complete
        assert outcome.stats.corrupt_entries == 1
        assert entry_path.with_name(entry_path.name + ".corrupt").exists()
        # The re-executed cell is bit-identical to what was lost.
        assert result_to_dict(outcome.results[2]) == result_to_dict(
            dist.synthetic_result(cells[2])
        )

    def test_worker_spawn_failure_degrades_to_inline(
        self, tmp_path, monkeypatch
    ):
        def refuse(spool, worker_id):
            raise PermissionError("no subprocesses here")

        monkeypatch.setattr(dist, "spawn_worker", refuse)
        cells = _syn_cells(5)
        with pytest.warns(RuntimeWarning, match="cannot spawn"):
            outcome = dist.coordinate(
                tmp_path / "s", cells, workers=2, collect="results",
                runner="synthetic", ttl=5.0,
            )
        assert outcome.stats.complete
        assert outcome.stats.committed == 5


class TestStreamingAggregation:
    def test_aggregate_mode_never_builds_the_matrix(self, tmp_path):
        cells = _syn_cells(120)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        dist.worker_loop(spool.root, worker_id="w0")
        streamed = []
        outcome = dist.coordinate(
            spool.root, cells, workers=0, collect="aggregate",
            runner="synthetic", on_result=lambda k, r: streamed.append(k),
        )
        assert outcome.stats.complete
        assert outcome.results == []  # no matrix, ever
        agg = outcome.aggregate
        assert agg is not None
        assert agg.cells == 120
        assert agg.completed == 120
        assert len(streamed) == 120
        # Bounded memory: stored sketch entries never exceed what was
        # inserted, and the summary exposes the evidence.
        summary = agg.summary()
        assert summary["sketch_entries"] <= 4 * 120 * 2
        assert set(summary["protocols"]) == {"quic", "mpquic"}

    def test_sketch_quantiles_match_exact_for_small_n(self, tmp_path):
        cells = _syn_cells(101)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        dist.worker_loop(spool.root, worker_id="w0")
        outcome = dist.coordinate(
            spool.root, cells, workers=0, collect="aggregate",
            runner="synthetic",
        )
        agg = outcome.aggregate
        times = sorted(
            dist.synthetic_result(c).transfer_time for c in cells
        )
        exact_median = times[len(times) // 2]
        assert agg.total.transfer_time.p50() == pytest.approx(
            exact_median, rel=0.02
        )

    def test_streaming_jain_matches_batch_jain(self):
        values = [float(v) for v in (1, 2, 3, 5, 8, 13, 21)]
        streaming = StreamingJain()
        for v in values:
            streaming.add(v)
        assert streaming.value() == pytest.approx(jain_index(values))
        # merge(): two partial folds equal one full fold.
        left, right = StreamingJain(), StreamingJain()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        left.merge(right)
        assert left.value() == pytest.approx(jain_index(values))
        assert StreamingJain().value() == 1.0

    def test_cdf_points_form_a_cdf(self, tmp_path):
        cells = _syn_cells(40)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        dist.worker_loop(spool.root, worker_id="w0")
        outcome = dist.coordinate(
            spool.root, cells, workers=0, collect="aggregate",
            runner="synthetic",
        )
        points = outcome.aggregate.cdf(points=21)
        assert len(points) == 21
        values = [v for v, _ in points]
        fracs = [f for _, f in points]
        assert values == sorted(values)
        assert fracs[0] == 0.0 and fracs[-1] == 1.0
        from repro.experiments.metrics import QuantileSketch

        assert QuantileSketch().cdf_points() == []
        with pytest.raises(ValueError):
            outcome.aggregate.cdf(points=1)


class TestCLI:
    def _drained_spool(self, tmp_path, n=8):
        cells = _syn_cells(n)
        spool = dist.init_spool(
            tmp_path / "s", cells, runner="synthetic", ttl=5.0,
        )
        return spool

    def test_worker_and_status_subcommands(self, tmp_path, capsys):
        spool = self._drained_spool(tmp_path)
        assert dist.main(["worker", str(spool.root), "--worker-id", "cli0"]) == 0
        out = capsys.readouterr().out
        assert "committed=8" in out
        assert dist.main(["status", str(spool.root)]) == 0
        out = capsys.readouterr().out
        assert "committed=8" in out and "queued=0" in out

    def test_coordinate_subcommand_writes_output(self, tmp_path, capsys):
        spool = self._drained_spool(tmp_path)
        dist.worker_loop(spool.root, worker_id="w0")
        output = tmp_path / "summary.json"
        code = dist.main([
            "coordinate", str(spool.root),
            "--collect", "aggregate", "--output", str(output),
        ])
        assert code == 0
        payload = json.loads(output.read_text())
        assert payload["stats"]["complete"] is True
        assert payload["stats"]["committed"] == 8
        assert payload["aggregate"]["cells"] == 8
