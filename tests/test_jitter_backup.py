"""Tests for link jitter (delay variation) and MPTCP backup mode."""

import random

import pytest

from repro.mptcp.scheduler import BackupSubflowScheduler, make_subflow_scheduler
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Datagram
from repro.netsim.topology import PathConfig
from repro.tcp.config import TcpConfig

from tests.helpers import run_transfer


class TestLinkJitter:
    def test_delay_within_bounds(self):
        sim = Simulator()
        arrivals = []
        link = Link(
            sim, rate_bps=8e6, prop_delay=0.010, queue_capacity=10**6,
            jitter=0.005, rng=random.Random(1),
            sink=lambda d: arrivals.append(sim.now),
        )
        for _ in range(50):
            link.send(Datagram(payload=None, size=100))
        sim.run()
        for i, t in enumerate(sorted(arrivals)):
            assert t >= 0.010  # never below base propagation

    def test_jitter_reorders_packets(self):
        sim = Simulator()
        order = []
        link = Link(
            sim, rate_bps=80e6, prop_delay=0.001, queue_capacity=10**6,
            jitter=0.050, rng=random.Random(3),
            sink=lambda d: order.append(d.payload),
        )
        for i in range(30):
            link.send(Datagram(payload=i, size=100))
        sim.run()
        assert order != sorted(order)  # reordering observed
        assert sorted(order) == list(range(30))  # nothing lost

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), 8e6, 0.01, 1000, jitter=-0.1)

    def test_quic_survives_reordering(self):
        # QUIC's packet-threshold loss detection tolerates reordering up
        # to 3 packets; heavy jitter may cause spurious retransmits but
        # never corruption or stalls.
        result = run_transfer(
            "quic",
            [PathConfig(10, 30, 100, jitter_ms=8.0)],
            file_size=300_000,
        )
        assert result.ok
        assert result.app.bytes_received == 300_000

    def test_tcp_survives_reordering(self):
        result = run_transfer(
            "tcp",
            [PathConfig(10, 30, 100, jitter_ms=8.0)],
            file_size=300_000,
        )
        assert result.ok
        assert result.app.bytes_received == 300_000


class TestBackupMode:
    PATHS = [
        PathConfig(10, 30, 50),
        PathConfig(10, 30, 50),
    ]

    def test_factory(self):
        sched = make_subflow_scheduler("backup", primary_interface=1)
        assert isinstance(sched, BackupSubflowScheduler)
        assert sched.primary_interface == 1

    def test_only_primary_carries_data(self):
        cfg = TcpConfig(scheduler="backup")
        result = run_transfer(
            "mptcp", self.PATHS, file_size=500_000, tcp_config=cfg
        )
        assert result.ok
        sent = result.server.connection.bytes_sent_per_subflow()
        # The backup subflow carries only its handshake.
        assert sent[1] < 1000
        assert sent[0] > 450_000

    def test_failover_to_backup(self):
        from repro.mptcp.connection import MptcpConnection
        from repro.netsim.topology import TwoPathTopology

        sim = Simulator()
        topo = TwoPathTopology(sim, self.PATHS, seed=2)
        cfg = TcpConfig(scheduler="backup")
        client = MptcpConnection(sim, topo.client, "client", cfg)
        server = MptcpConnection(sim, topo.server, "server", TcpConfig(scheduler="backup"))
        state, done = {}, {}

        def osd(d, fin):
            if "s" not in state:
                state["s"] = True
                server.send_app_data(b"y" * 800_000, fin=True)

        server.on_app_data = osd
        client.on_app_data = lambda d, fin: done.update(t=sim.now) if fin else None
        client.on_established = lambda: client.send_app_data(b"GET")
        client.connect()
        sim.run(until=0.3)
        topo.set_path_loss(0, 100.0)  # primary dies
        ok = sim.run_until(lambda: "t" in done, timeout=120.0)
        assert ok  # the backup subflow finished the transfer
        sent = server.bytes_sent_per_subflow()
        assert sent[1] > 100_000

    def test_no_aggregation_in_backup_mode(self):
        plain = run_transfer("mptcp", self.PATHS, file_size=1_000_000)
        backup = run_transfer(
            "mptcp", self.PATHS, file_size=1_000_000,
            tcp_config=TcpConfig(scheduler="backup"),
        )
        assert backup.transfer_time > plain.transfer_time
