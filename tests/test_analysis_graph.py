"""The whole-program index itself: discovery, imports, call graph.

These tests build throwaway fixture packages under ``tmp_path`` so the
graph's behavior is pinned against controlled trees, independent of the
real ``src/repro`` layout.
"""

import textwrap
from pathlib import Path

from repro.analysis.core import analyze_paths, iter_python_files
from repro.analysis.graph import ProjectGraph


def write_tree(root: Path, files: dict) -> Path:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


class TestDiscovery:
    def test_skips_pycache_directories(self, tmp_path):
        write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "mod.py": "x = 1\n",
                "__pycache__/mod.cpython-311.py": "broken ( syntax\n",
            },
        )
        graph = ProjectGraph.build(tmp_path / "pkg")
        assert set(graph.modules) == {"pkg", "pkg.mod"}
        assert graph.skipped == []

    def test_skips_non_utf8_files_instead_of_raising(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg", {"__init__.py": "", "good.py": "x = 1\n"}
        )
        (root / "binary.py").write_bytes(b"\x93\xfa\x00\xff latin nonsense")
        graph = ProjectGraph.build(root)
        assert "pkg.good" in graph.modules
        assert "pkg.binary" not in graph.modules
        assert [p.name for p, _reason in graph.skipped] == ["binary.py"]

    def test_skips_syntax_errors_with_reason(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {"__init__.py": "", "bad.py": "def broken(:\n    pass\n"},
        )
        graph = ProjectGraph.build(root)
        assert "pkg.bad" not in graph.modules
        assert any("SyntaxError" in reason for _p, reason in graph.skipped)

    def test_non_package_root_uses_file_stems(self, tmp_path):
        write_tree(tmp_path / "loose", {"a.py": "x = 1\n", "b.py": "y = 2\n"})
        graph = ProjectGraph.build(tmp_path / "loose")
        assert set(graph.modules) == {"a", "b"}


class TestCoreDiscoveryBugfix:
    """Satellite: analysis.core module discovery mirrors the graph's."""

    def test_iter_python_files_skips_pycache(self, tmp_path):
        write_tree(
            tmp_path / "pkg",
            {
                "mod.py": "x = 1\n",
                "__pycache__/mod.cpython-311.py": "junk\n",
            },
        )
        files = [f for f, _root in iter_python_files([tmp_path / "pkg"])]
        assert [f.name for f in files] == ["mod.py"]

    def test_analyze_paths_skips_non_utf8(self, tmp_path):
        root = write_tree(tmp_path / "pkg", {"mod.py": "x = 1\n"})
        (root / "binary.py").write_bytes(b"\xff\xfe\x00junk")
        findings, count = analyze_paths([root])
        assert findings == []
        assert count == 1  # binary.py skipped, mod.py analyzed


class TestImportResolution:
    def test_relative_imports_and_aliases(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "sub/__init__.py": "",
                "sub/a.py": "def fa():\n    return 1\n",
                "sub/b.py": (
                    """
                    from .a import fa
                    from ..top import ft as top_fn


                    def fb():
                        return fa() + top_fn()
                    """
                ),
                "top.py": "def ft():\n    return 2\n",
            },
        )
        graph = ProjectGraph.build(root)
        mod_b = graph.modules["pkg.sub.b"]
        assert graph.resolve_symbol(mod_b, "fa") == ("function", "pkg.sub.a.fa")
        assert graph.resolve_symbol(mod_b, "top_fn") == (
            "function",
            "pkg.top.ft",
        )
        # Edges actually landed in the call graph.
        assert graph.callees("pkg.sub.b.fb") == {"pkg.sub.a.fa", "pkg.top.ft"}

    def test_init_reexport_chain(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "engine/__init__.py": "from pkg.engine.core import Simulator\n",
                "engine/core.py": (
                    """
                    class Simulator:
                        def run(self):
                            return 0
                    """
                ),
                "user.py": (
                    """
                    from pkg.engine import Simulator


                    def main():
                        sim = Simulator()
                        return sim.run()
                    """
                ),
            },
        )
        graph = ProjectGraph.build(root)
        user = graph.modules["pkg.user"]
        # The symbol resolves through the package __init__ re-export.
        assert graph.resolve_symbol(user, "Simulator") == (
            "class",
            "pkg.engine.core.Simulator",
        )
        # Constructor-typed receiver: sim.run() resolves to the method.
        assert "pkg.engine.core.Simulator.run" in graph.callees("pkg.user.main")

    def test_module_alias_attribute_access(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "cfg.py": "LIMIT = 7\n",
                "use.py": (
                    """
                    import pkg.cfg as cfg


                    def limit():
                        return cfg.LIMIT
                    """
                ),
            },
        )
        graph = ProjectGraph.build(root)
        use = graph.modules["pkg.use"]
        assert graph.resolve_constant_name(use, "cfg.LIMIT") == 7
        assert graph.constant_owner(
            use, graph.modules["pkg.use"].tree.body[-1].body[0].value
        ) == ("pkg.cfg", "LIMIT")


class TestCallGraphSoundness:
    """Every call in the fixture must produce its expected edge."""

    def test_fixture_edges(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "zoo.py": (
                    """
                    class Animal:
                        def speak(self):
                            return "..."

                        def greet(self):
                            return self.speak()


                    class Dog(Animal):
                        def speak(self):
                            return "woof"


                    def direct():
                        return helper()


                    def helper():
                        return 1


                    def closure_caller():
                        def inner():
                            return 2

                        return inner()


                    def callback_user(sim):
                        sim.schedule(1.0, helper)


                    def typed(dog: Dog):
                        return dog.speak()
                    """
                ),
            },
        )
        graph = ProjectGraph.build(root)
        z = "pkg.zoo"
        # Plain direct call.
        assert f"{z}.helper" in graph.callees(f"{z}.direct")
        # Nested function call resolves into the closure scope.
        assert f"{z}.closure_caller.inner" in graph.callees(f"{z}.closure_caller")
        # self-dispatch includes subclass overrides (virtual edge).
        greet_callees = graph.callees(f"{z}.Animal.greet")
        assert f"{z}.Animal.speak" in greet_callees
        assert f"{z}.Dog.speak" in greet_callees
        # Annotation-typed receiver resolves precisely.
        assert graph.callees(f"{z}.typed") == {f"{z}.Dog.speak"}
        # A function passed as a callback argument is an edge (so
        # dispatch-driven code stays reachable).
        assert f"{z}.helper" in graph.callees(f"{z}.callback_user")

    def test_reachability_closure(self, tmp_path):
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "chain.py": (
                    """
                    def run_cell(cell):
                        return a()


                    def a():
                        return b()


                    def b():
                        return 3


                    def orphan():
                        return 4
                    """
                ),
            },
        )
        graph = ProjectGraph.build(root)
        reachable = graph.reachable_from(graph.run_cell_entries())
        assert "pkg.chain.a" in reachable
        assert "pkg.chain.b" in reachable
        assert "pkg.chain.orphan" not in reachable

    def test_sweep_worker_entries_include_worker_loop(self, tmp_path):
        # The distributed executor's worker_loop roots the same purity
        # closure as run_cell — a helper only it calls must be
        # reachable from the combined sweep-worker entry set.
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "dist.py": (
                    """
                    def worker_loop(spool):
                        return claim(spool)


                    def claim(spool):
                        return spool


                    def run_cell(cell):
                        return cell
                    """
                ),
            },
        )
        graph = ProjectGraph.build(root)
        entries = graph.sweep_worker_entries()
        assert "pkg.dist.worker_loop" in entries
        assert "pkg.dist.run_cell" in entries
        reachable = graph.reachable_from(entries)
        assert "pkg.dist.claim" in reachable
        # run_cell_entries alone keeps its narrower historical meaning.
        assert graph.run_cell_entries() == ["pkg.dist.run_cell"]

    def test_name_fallback_is_bounded(self, tmp_path):
        # Five classes defining .shared() exceed NAME_FALLBACK_LIMIT:
        # an untyped receiver must produce no edges rather than fanning
        # out to every same-named method in the program.
        classes = "\n\n".join(
            f"class C{i}:\n    def shared(self):\n        return {i}"
            for i in range(5)
        )
        root = write_tree(
            tmp_path / "pkg",
            {
                "__init__.py": "",
                "many.py": (
                    classes
                    + "\n\ndef use(x):\n    return x.shared()\n"
                ),
            },
        )
        graph = ProjectGraph.build(root)
        assert graph.callees("pkg.many.use") == set()


class TestRealTreeIndex:
    def test_engine_dispatch_and_schedule_sites(self):
        repo = Path(__file__).resolve().parent.parent
        graph = ProjectGraph.build(repo / "src" / "repro")
        assert graph.skipped == []
        # The engine's calendar queue feeds dispatch: the tree has many
        # schedule sites and their callbacks resolve to real functions.
        sites = graph.schedule_sites()
        assert len(sites) >= 20
        resolved = [s for s in sites if s[3]]
        assert len(resolved) >= 10
        entries = graph.dispatch_entries()
        assert entries
        assert all(q in graph.functions for q in entries)
