"""A6 — handshake evolution (§4.2 outlook): TLS 1.3, TFO, QUIC 0-RTT.

The paper attributes QUIC's short-transfer advantage to its 1-RTT
handshake and predicts TLS 1.3 + TCP Fast Open would shrink the gap.
This benchmark quantifies the whole ladder on a 256 KB transfer.
"""

from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

from benchmarks.common import run_once

PATH = [PathConfig(10, 40, 50)]
SIZE = 256_000
RTT = 0.04


def test_handshake_evolution(benchmark):
    def run():
        return {
            "tls12": run_bulk("tcp", PATH, SIZE,
                              tcp_config=TcpConfig(tls_version="1.2")).transfer_time,
            "tls13": run_bulk("tcp", PATH, SIZE,
                              tcp_config=TcpConfig(tls_version="1.3")).transfer_time,
            "tls13_tfo": run_bulk(
                "tcp", PATH, SIZE,
                tcp_config=TcpConfig(tls_version="1.3", fast_open=True),
            ).transfer_time,
            "quic": run_bulk("quic", PATH, SIZE).transfer_time,
            "quic_0rtt": run_bulk(
                "quic", PATH, SIZE, quic_config=QuicConfig(zero_rtt=True)
            ).transfer_time,
        }

    t = run_once(benchmark, run)
    # Each step of the ladder saves roughly one round trip.
    assert t["tls12"] - t["tls13"] > 0.6 * RTT
    assert t["tls13"] - t["tls13_tfo"] > 0.6 * RTT
    # TCP+TLS1.3+TFO closes the setup gap to (1-RTT) QUIC, confirming
    # the paper's outlook.
    assert abs(t["tls13_tfo"] - t["quic"]) < 1.2 * RTT
    # 0-RTT keeps QUIC one round trip ahead.
    assert t["quic"] - t["quic_0rtt"] > 0.6 * RTT
