"""Fault-injection subsystem: link mutations, timelines, observability.

Covers the mechanics the handover reproduction depends on: in-flight
serialization re-planning under rate changes, the blackhole/link-down
distinction, timeline normalisation and cache-key material, and the
typed ``network:*`` events a tracer records when faults fire.
"""

from __future__ import annotations

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.faults import (
    Blackhole,
    BurstLossStart,
    DelayChange,
    FaultEvent,
    FaultTimeline,
    LinkDown,
    LinkUp,
    LossChange,
    RateChange,
    blackhole,
    link_down,
    link_up,
    loss_change,
    rate_change,
    timeline,
)
from repro.netsim.link import Link
from repro.netsim.node import Datagram
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.obs import Tracer


def make_link(sim, rate_bps=8000.0, prop_delay=0.1, queue=100_000):
    """A bare link delivering into a list, for microscopic assertions."""
    delivered = []
    link = Link(
        sim,
        rate_bps=rate_bps,
        prop_delay=prop_delay,
        queue_capacity=queue,
        sink=delivered.append,
        name="test-link",
    )
    return link, delivered


def dgram(size=1000):
    return Datagram(payload=None, size=size)


# ----------------------------------------------------------------------
# Rate-change re-planning
# ----------------------------------------------------------------------

class TestRateChange:
    def test_idle_link_rate_change_applies_to_next_datagram(self):
        sim = Simulator()
        link, delivered = make_link(sim, rate_bps=8000.0, prop_delay=0.0)
        link.apply(RateChange(rate_mbps=8000.0 / 1e6 * 2))  # double it
        link.send(dgram(1000))  # 8000 bits at 16 kbit/s = 0.5 s
        sim.run()
        assert delivered
        assert sim.now == pytest.approx(0.5)

    def test_inflight_datagram_finishes_remaining_bytes_at_new_rate(self):
        sim = Simulator()
        # 1000 B = 8000 bits at 8 kbit/s -> 1 s serialization.
        link, delivered = make_link(sim, rate_bps=8000.0, prop_delay=0.0)
        link.send(dgram(1000))
        # At t=0.5 half the bytes are out; double the rate: the other
        # 500 B take 0.25 s -> completion at 0.75 s.
        sim.schedule_at(0.5, link.apply, RateChange(rate_mbps=0.016))
        sim.run()
        assert delivered
        assert sim.now == pytest.approx(0.75)

    def test_consecutive_rate_changes_compose(self):
        sim = Simulator()
        link, delivered = make_link(sim, rate_bps=8000.0, prop_delay=0.0)
        link.send(dgram(1000))
        # t=0.5: 500 B left, rate -> 16 kbit/s (would finish at 0.75).
        sim.schedule_at(0.5, link.apply, RateChange(rate_mbps=0.016))
        # t=0.625: 250 B left, rate -> 4 kbit/s: 2000 bits / 4000 bps
        # = 0.5 s more -> completion at 1.125 s.
        sim.schedule_at(0.625, link.apply, RateChange(rate_mbps=0.004))
        sim.run()
        assert delivered
        assert sim.now == pytest.approx(1.125)

    def test_rate_change_rejects_nonpositive(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ValueError):
            link.set_rate(0.0)


# ----------------------------------------------------------------------
# Link down vs blackhole
# ----------------------------------------------------------------------

class TestDownVersusBlackhole:
    def test_down_link_rejects_sends(self):
        sim = Simulator()
        link, delivered = make_link(sim)
        link.apply(LinkDown())
        assert link.send(dgram()) is False
        sim.run()
        assert delivered == []
        assert link.stats.fault_drops == 1

    def test_down_aborts_inflight_and_flushes_queue(self):
        sim = Simulator()
        link, delivered = make_link(sim, rate_bps=8000.0)
        link.send(dgram(1000))      # serializing until t=1
        link.send(dgram(1000))      # queued
        link.send(dgram(1000))      # queued
        sim.schedule_at(0.5, link.apply, LinkDown())
        sim.run()
        assert delivered == []
        assert link.stats.fault_drops == 3
        assert link.queued_bytes == 0
        assert not link.serialization_busy

    def test_down_does_not_recall_datagrams_already_on_the_wire(self):
        sim = Simulator()
        # Serialization 1 s, propagation 5 s: at t=2 the first datagram
        # is mid-flight and must still arrive at t=6.
        link, delivered = make_link(sim, rate_bps=8000.0, prop_delay=5.0)
        link.send(dgram(1000))
        sim.schedule_at(2.0, link.apply, LinkDown())
        sim.run()
        assert len(delivered) == 1
        assert sim.now == pytest.approx(6.0)

    def test_link_up_restores_service(self):
        sim = Simulator()
        link, delivered = make_link(sim, prop_delay=0.0)
        link.apply(LinkDown())
        link.apply(LinkUp())
        assert link.send(dgram()) is True
        sim.run()
        assert len(delivered) == 1

    def test_blackhole_accepts_and_serializes_but_never_delivers(self):
        sim = Simulator()
        link, delivered = make_link(sim, rate_bps=8000.0)
        link.apply(Blackhole())
        assert link.send(dgram(1000)) is True       # NIC accepts
        sim.run()
        assert delivered == []
        assert link.stats.blackholed == 1
        assert link.stats.datagrams_sent == 1       # bandwidth consumed
        assert sim.now == pytest.approx(1.0)        # full serialization

    def test_blackhole_disable_restores_delivery(self):
        sim = Simulator()
        link, delivered = make_link(sim, prop_delay=0.0)
        link.apply(Blackhole())
        link.apply(Blackhole(enabled=False))
        link.send(dgram())
        sim.run()
        assert len(delivered) == 1


# ----------------------------------------------------------------------
# Loss / delay mutations
# ----------------------------------------------------------------------

class TestLossAndDelay:
    def test_loss_change_drops_everything_at_100_percent(self):
        sim = Simulator()
        link, delivered = make_link(sim, prop_delay=0.0)
        link.apply(LossChange(100.0))
        for _ in range(5):
            link.send(dgram())
        sim.run()
        assert delivered == []
        assert link.stats.random_losses == 5

    def test_loss_change_overrides_burst_model(self):
        sim = Simulator()
        link, _ = make_link(sim)
        link.apply(BurstLossStart(10.0))
        assert link.burst_loss is not None
        link.apply(LossChange(0.0))
        assert link.burst_loss is None
        assert link.loss_rate == 0.0

    def test_burst_loss_episode_is_deterministic_per_link_name(self):
        outcomes = []
        for _ in range(2):
            sim = Simulator()
            link, _ = make_link(sim, prop_delay=0.0)
            link.apply(BurstLossStart(30.0, mean_burst=3.0, seed=7))
            outcomes.append(tuple(link.burst_loss.lose() for _ in range(200)))
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])  # the episode actually loses packets

    def test_delay_change_affects_future_datagrams_only(self):
        sim = Simulator()
        link, delivered = make_link(sim, rate_bps=8e6, prop_delay=1.0)
        arrival_times = []
        link.sink = lambda d: arrival_times.append(sim.now)
        link.send(dgram(1000))                       # leaves with 1 s delay
        sim.schedule_at(0.5, link.apply, DelayChange(rtt_ms=4000.0))
        sim.schedule_at(0.6, link.send, dgram(1000))  # leaves with 2 s delay
        sim.run()
        assert arrival_times[0] == pytest.approx(0.001 + 1.0)
        assert arrival_times[1] == pytest.approx(0.6 + 0.001 + 2.0)


# ----------------------------------------------------------------------
# Timeline semantics
# ----------------------------------------------------------------------

class TestTimeline:
    def test_events_normalised_by_time_then_path_then_kind(self):
        a = timeline(link_up(4.0, 0), link_down(2.0, 1), link_down(2.0, 0))
        assert [(e.time, e.path) for e in a.events] == [
            (2.0, 0), (2.0, 1), (4.0, 0),
        ]

    def test_equal_event_sets_compare_equal_regardless_of_order(self):
        a = timeline(link_down(2.0, 0), link_up(4.0, 0))
        b = timeline(link_up(4.0, 0), link_down(2.0, 0))
        assert a == b
        assert a.key_material() == b.key_material()

    def test_key_material_distinguishes_parameters(self):
        a = timeline(rate_change(1.0, 0, 5.0))
        b = timeline(rate_change(1.0, 0, 6.0))
        c = timeline(loss_change(1.0, 0, 5.0))
        keys = [str(t.key_material()) for t in (a, b, c)]
        assert len(set(keys)) == 3

    def test_empty_timeline_is_falsy(self):
        assert not FaultTimeline()
        assert timeline(blackhole(1.0, 0))

    def test_negative_time_and_path_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, 0, LinkDown())
        with pytest.raises(ValueError):
            FaultEvent(1.0, -1, LinkDown())

    def test_install_rejects_out_of_range_path(self):
        sim = Simulator()
        topo = TwoPathTopology(
            sim, [PathConfig(capacity_mbps=10.0, rtt_ms=20.0)], seed=1
        )
        with pytest.raises(ValueError, match="path 1"):
            timeline(link_down(1.0, 1)).install(sim, topo)

    def test_apply_fault_hits_both_directions(self):
        sim = Simulator()
        topo = TwoPathTopology(
            sim,
            [PathConfig(capacity_mbps=10.0, rtt_ms=20.0)] * 2,
            seed=1,
        )
        timeline(link_down(1.0, 0)).install(sim, topo)
        sim.run()
        assert not topo.forward_links[0].up
        assert not topo.return_links[0].up
        assert topo.forward_links[1].up
        assert topo.return_links[1].up

    def test_fired_events_emit_typed_network_events(self):
        sim = Simulator()
        topo = TwoPathTopology(
            sim, [PathConfig(capacity_mbps=10.0, rtt_ms=20.0)] * 2, seed=1
        )
        trace = Tracer()
        timeline(
            blackhole(1.0, 0), rate_change(2.0, 1, 5.0)
        ).install(sim, topo, trace=trace)
        sim.run()
        events = trace.events_of(category="network")
        assert [(e.time, e.name, e.path_id) for e in events] == [
            (1.0, "blackhole", 0),
            (2.0, "rate_change", 1),
        ]
        assert events[1].data["rate_mbps"] == 5.0

    def test_mutation_describe_is_json_compatible(self):
        import json

        for mutation in (
            LinkDown(), LinkUp(), RateChange(5.0), DelayChange(30.0),
            LossChange(2.0), BurstLossStart(5.0, 3.0, 1), Blackhole(),
        ):
            payload = {"kind": mutation.kind, **mutation.describe()}
            assert json.loads(json.dumps(payload)) == payload
