"""Shared utilities: integer range sets and byte-stream reassembly."""

from repro.util.ranges import RangeSet
from repro.util.reassembly import Reassembler

__all__ = ["RangeSet", "Reassembler"]
