"""Per-figure experiment harness (the paper's §4 evaluation).

Each ``figN()`` regenerates the series behind one figure of the paper,
printing the same quantities (time-ratio CDF percentiles, aggregation-
benefit box statistics, handover delay timeline) and returning the raw
data for programmatic checks.

Scaling: the paper runs 253 WSP scenarios per class with 20 MB (or
256 KB) transfers, each repeated 3 times.  Defaults here are reduced
(see :class:`SweepConfig`); set ``REPRO_SCENARIOS`` / ``REPRO_FILE_SIZE``
or pass ``--full`` on the CLI for paper-scale sweeps.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.expdesign.parameters import (
    PAPER_SCENARIOS_PER_CLASS,
    Scenario,
    generate_scenarios,
)
from repro.experiments.metrics import (
    experimental_aggregation_benefit,
    fraction_greater_than,
    median,
)
from repro.experiments.parallel import (
    SweepCell,
    execute_cells,
    execute_class_sweep,
    plan_class_sweep,
    plan_workload_sweep,
    resolve_jobs,
)
from repro.experiments.report import ascii_box, ascii_cdf, table, timeline
from repro.experiments.runner import (
    BulkRunResult,
    run_bulk,
    run_handover,
)
from repro.experiments.scenarios import (
    HANDOVER_SCENARIO,
    wifi_to_lte_family,
)
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig

#: The paper's transfer sizes.
PAPER_LARGE_FILE = 20_000_000
PAPER_SMALL_FILE = 256_000


@dataclass(frozen=True)
class SweepConfig:
    """Sweep sizing knobs (reduced defaults; --full for paper scale)."""

    scenarios: int = int(os.environ.get("REPRO_SCENARIOS", "30"))
    file_size: int = int(os.environ.get("REPRO_FILE_SIZE", "2000000"))
    small_file_size: int = int(os.environ.get("REPRO_SMALL_FILE", "256000"))
    seed: int = 42

    @staticmethod
    def paper_scale() -> "SweepConfig":
        return SweepConfig(
            scenarios=PAPER_SCENARIOS_PER_CLASS,
            file_size=PAPER_LARGE_FILE,
            small_file_size=PAPER_SMALL_FILE,
        )


#: One sweep = per-scenario result matrices, cached so figures sharing a
#: class (e.g. Fig. 3 and Fig. 4) reuse the same runs within a session.
_SWEEP_CACHE: Dict[Tuple, List[Tuple[Scenario, Dict]] ] = {}


def run_class_sweep(
    env_class: str,
    config: SweepConfig,
    file_size: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = "auto",
) -> List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]]:
    """Run the full protocol matrix over a class's WSP scenarios.

    Execution goes through :mod:`repro.experiments.parallel`: cells are
    served from the on-disk result cache when possible and the rest fan
    out over ``REPRO_JOBS`` worker processes (results are bit-identical
    to the serial path).  ``jobs``/``cache`` override the environment;
    the session-local memo above still short-circuits repeat calls
    within one process so figures sharing a class reuse sweeps without
    re-reading the disk cache.
    """
    size = file_size if file_size is not None else config.file_size
    key = (env_class, config.scenarios, size, config.seed)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    scenarios = generate_scenarios(env_class, config.scenarios, seed=config.seed)
    lossy = "no-loss" not in env_class
    out = execute_class_sweep(
        scenarios, size, lossy, jobs=jobs, cache=cache
    )
    _SWEEP_CACHE[key] = out
    return out


# ----------------------------------------------------------------------
# Series extraction
# ----------------------------------------------------------------------

def time_ratio_series(
    sweep: List[Tuple[Scenario, Dict]],
) -> Dict[str, List[float]]:
    """Fig. 3/5/8/9 series: per (scenario, initial path) time ratios."""
    tcp_quic: List[float] = []
    mptcp_mpquic: List[float] = []
    for _scenario, matrix in sweep:
        for initial in (0, 1):
            tcp_quic.append(
                matrix[("tcp", initial)].transfer_time
                / matrix[("quic", initial)].transfer_time
            )
            mptcp_mpquic.append(
                matrix[("mptcp", initial)].transfer_time
                / matrix[("mpquic", initial)].transfer_time
            )
    return {"tcp/quic": tcp_quic, "mptcp/mpquic": mptcp_mpquic}


def aggregation_benefit_series(
    sweep: List[Tuple[Scenario, Dict]],
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 4/6/7/10 series: EBen split by initial-path quality.

    Returns ``{"mptcp_vs_tcp"|"mpquic_vs_quic": {"best_first"|"worst_first": [...]}}``.
    """
    out = {
        "mptcp_vs_tcp": {"best_first": [], "worst_first": []},
        "mpquic_vs_quic": {"best_first": [], "worst_first": []},
    }
    for scenario, matrix in sweep:
        singles = {
            "tcp": [matrix[("tcp", 0)].goodput_bps, matrix[("tcp", 1)].goodput_bps],
            "quic": [matrix[("quic", 0)].goodput_bps, matrix[("quic", 1)].goodput_bps],
        }
        best = scenario.best_path
        for multi, single, label in (
            ("mptcp", "tcp", "mptcp_vs_tcp"),
            ("mpquic", "quic", "mpquic_vs_quic"),
        ):
            for initial in (0, 1):
                eben = experimental_aggregation_benefit(
                    matrix[(multi, initial)].goodput_bps, singles[single]
                )
                bucket = "best_first" if initial == best else "worst_first"
                out[label][bucket].append(eben)
    return out


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def fig3(config: SweepConfig = SweepConfig()) -> Dict[str, List[float]]:
    """Fig. 3 — GET <large>, low-BDP-no-loss: time-ratio CDFs."""
    sweep = run_class_sweep("low-bdp-no-loss", config)
    series = time_ratio_series(sweep)
    print(f"== Fig. 3: GET {config.file_size} B, low-BDP-no-loss ==")
    for label, values in series.items():
        print(ascii_cdf(values, f"time ratio {label}"))
        print(
            f"  multipath/QUIC faster in "
            f"{fraction_greater_than(values, 1.0) * 100:.0f}% of runs\n"
        )
    return series


def fig4(config: SweepConfig = SweepConfig()) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 4 — low-BDP-no-loss: experimental aggregation benefit."""
    sweep = run_class_sweep("low-bdp-no-loss", config)
    data = aggregation_benefit_series(sweep)
    print(f"== Fig. 4: EBen, GET {config.file_size} B, low-BDP-no-loss ==")
    _print_eben(data)
    return data


def fig5(config: SweepConfig = SweepConfig()) -> Dict[str, List[float]]:
    """Fig. 5 — low-BDP-losses: time-ratio CDFs."""
    sweep = run_class_sweep("low-bdp-losses", config)
    series = time_ratio_series(sweep)
    print(f"== Fig. 5: GET {config.file_size} B, low-BDP-losses ==")
    for label, values in series.items():
        print(ascii_cdf(values, f"time ratio {label}"))
        print(
            f"  (MP)QUIC faster in "
            f"{fraction_greater_than(values, 1.0) * 100:.0f}% of runs\n"
        )
    return series


def fig6(config: SweepConfig = SweepConfig()) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 6 — low-BDP-losses: aggregation benefit."""
    sweep = run_class_sweep("low-bdp-losses", config)
    data = aggregation_benefit_series(sweep)
    print(f"== Fig. 6: EBen, GET {config.file_size} B, low-BDP-losses ==")
    _print_eben(data)
    return data


def fig7(config: SweepConfig = SweepConfig()) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 7 — high-BDP-no-loss: aggregation benefit."""
    sweep = run_class_sweep("high-bdp-no-loss", config)
    data = aggregation_benefit_series(sweep)
    print(f"== Fig. 7: EBen, GET {config.file_size} B, high-BDP-no-loss ==")
    _print_eben(data)
    return data


def fig8(config: SweepConfig = SweepConfig()) -> Dict[str, List[float]]:
    """Fig. 8 — high-BDP-losses: time-ratio CDFs."""
    sweep = run_class_sweep("high-bdp-losses", config)
    series = time_ratio_series(sweep)
    print(f"== Fig. 8: GET {config.file_size} B, high-BDP-losses ==")
    for label, values in series.items():
        print(ascii_cdf(values, f"time ratio {label}"))
    return series


def fig9(config: SweepConfig = SweepConfig()) -> Dict[str, List[float]]:
    """Fig. 9 — GET <small>, low-BDP-no-loss: time-ratio CDFs."""
    sweep = run_class_sweep(
        "low-bdp-no-loss", config, file_size=config.small_file_size
    )
    series = time_ratio_series(sweep)
    print(f"== Fig. 9: GET {config.small_file_size} B, low-BDP-no-loss ==")
    for label, values in series.items():
        print(ascii_cdf(values, f"time ratio {label}"))
    return series


def fig10(config: SweepConfig = SweepConfig()) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 10 — small transfers: aggregation benefit."""
    sweep = run_class_sweep(
        "low-bdp-no-loss", config, file_size=config.small_file_size
    )
    data = aggregation_benefit_series(sweep)
    print(f"== Fig. 10: EBen, GET {config.small_file_size} B, low-BDP-no-loss ==")
    _print_eben(data)
    return data


def fig11(config: SweepConfig = SweepConfig()) -> List[Tuple[float, float]]:
    """Fig. 11 — network handover: per-request delay timeline."""
    delays = run_handover(HANDOVER_SCENARIO)
    print("== Fig. 11: MPQUIC network handover ==")
    print(timeline(delays, "request->response delay"))
    return delays


def handover_sweep(
    config: SweepConfig = SweepConfig(),
) -> Dict[Tuple[str, float], BulkRunResult]:
    """WiFi-to-LTE mobility: bulk transfer across a mid-flight failure.

    Sweeps the failure instant of :func:`wifi_to_lte_handover` for
    MPQUIC against single-path QUIC pinned to the failing (WiFi) path.
    Cells run through the parallel engine with the fault timeline as
    part of their cache identity, so re-running the sweep with the same
    timelines is a pure cache hit while a changed failure instant (or
    mode) re-executes only the affected cells.
    """
    scenarios = wifi_to_lte_family()
    cells = [
        SweepCell(
            paths=sc.paths,
            protocol=protocol,
            initial_interface=0,
            file_size=sc.file_size,
            repetitions=1,
            base_seed=1,
            timeout=sc.timeout,
            timeline=sc.timeline,
        )
        for sc in scenarios
        for protocol in ("mpquic", "quic")
    ]
    results = execute_cells(cells)
    out: Dict[Tuple[str, float], BulkRunResult] = {}
    rows = []
    for cell, res, sc in zip(
        cells, results, [s for s in scenarios for _ in ("mpquic", "quic")]
    ):
        failure_time = sc.timeline.events[0].time
        out[(cell.protocol, failure_time)] = res
        rows.append(
            (
                sc.name,
                cell.protocol,
                f"{res.transfer_time:.2f}",
                "yes" if res.completed else "timeout",
            )
        )
    print("== WiFi-to-LTE handover sweep (blackhole at t) ==")
    print(table(["scenario", "protocol", "time (s)", "completed"], rows))
    return out


def headline_percentages(config: SweepConfig = SweepConfig()) -> Dict[str, float]:
    """The §4.1 headline numbers.

    Paper values: MPQUIC beats MPTCP in 89% of low-BDP-no-loss runs;
    EBen > 0 in 77% (MPQUIC) vs 45% (MPTCP); in high-BDP-no-loss, 58%
    vs 20%.
    """
    low = run_class_sweep("low-bdp-no-loss", config)
    high = run_class_sweep("high-bdp-no-loss", config)
    ratios = time_ratio_series(low)
    eben_low = aggregation_benefit_series(low)
    eben_high = aggregation_benefit_series(high)

    def _positive(data: Dict[str, List[float]]) -> float:
        both = data["best_first"] + data["worst_first"]
        return fraction_greater_than(both, 0.0) * 100

    results = {
        "mpquic_faster_than_mptcp_pct": fraction_greater_than(
            ratios["mptcp/mpquic"], 1.0
        ) * 100,
        "low_bdp_eben_positive_mpquic_pct": _positive(eben_low["mpquic_vs_quic"]),
        "low_bdp_eben_positive_mptcp_pct": _positive(eben_low["mptcp_vs_tcp"]),
        "high_bdp_eben_positive_mpquic_pct": _positive(eben_high["mpquic_vs_quic"]),
        "high_bdp_eben_positive_mptcp_pct": _positive(eben_high["mptcp_vs_tcp"]),
    }
    print("== Headline percentages (paper: 89 / 77 / 45 / 58 / 20) ==")
    print(
        table(
            ["metric", "measured %"],
            [(k, f"{v:.0f}") for k, v in results.items()],
        )
    )
    return results


def _print_eben(data: Dict[str, Dict[str, List[float]]]) -> None:
    for label, buckets in data.items():
        for bucket, values in buckets.items():
            if values:
                print(ascii_box(values, f"{label} [{bucket}]"))
        both = buckets["best_first"] + buckets["worst_first"]
        if both:
            print(
                f"  {label}: EBen > 0 in "
                f"{fraction_greater_than(both, 0.0) * 100:.0f}% of runs\n"
            )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------

#: Heterogeneous two-path network for ablation studies.
ABLATION_PATHS = (
    PathConfig(capacity_mbps=10.0, rtt_ms=20.0, queuing_delay_ms=50.0),
    PathConfig(capacity_mbps=3.0, rtt_ms=80.0, queuing_delay_ms=100.0),
)


def ablation_scheduler(config: SweepConfig = SweepConfig()) -> Dict[str, float]:
    """A1: MPQUIC scheduler variants on heterogeneous paths."""
    results = {}
    for scheduler, dup in (
        ("lowest_rtt", True),
        ("lowest_rtt_no_dup", False),
        ("round_robin", True),
    ):
        qc = QuicConfig(scheduler=scheduler, duplicate_on_unknown_rtt=dup)
        res = run_bulk(
            "mpquic", ABLATION_PATHS, config.file_size, quic_config=qc
        )
        results[scheduler if dup else "lowest_rtt_no_dup"] = res.transfer_time
    print("== Ablation A1: MPQUIC packet scheduler ==")
    print(table(["scheduler", "transfer time (s)"],
                [(k, f"{v:.3f}") for k, v in results.items()]))
    return results


def ablation_congestion_control(config: SweepConfig = SweepConfig()) -> Dict[str, float]:
    """A2: coupled OLIA vs uncoupled CUBIC for MPQUIC."""
    results = {}
    for cc in ("olia", "cubic2", "newreno"):
        qc = QuicConfig(multipath_cc=cc)
        res = run_bulk(
            "mpquic", ABLATION_PATHS, config.file_size, quic_config=qc
        )
        results[cc] = res.transfer_time
    print("== Ablation A2: MPQUIC multipath congestion control ==")
    print(table(["controller", "transfer time (s)"],
                [(k, f"{v:.3f}") for k, v in results.items()]))
    return results


def ablation_window_updates(config: SweepConfig = SweepConfig()) -> Dict[str, float]:
    """A3: WINDOW_UPDATE on all paths vs only the delivering path."""
    results = {}
    for all_paths in (True, False):
        qc = QuicConfig(window_update_all_paths=all_paths)
        res = run_bulk(
            "mpquic", ABLATION_PATHS, config.file_size, quic_config=qc
        )
        results["all_paths" if all_paths else "single_path"] = res.transfer_time
    print("== Ablation A3: WINDOW_UPDATE duplication across paths ==")
    print(table(["policy", "transfer time (s)"],
                [(k, f"{v:.3f}") for k, v in results.items()]))
    return results


def workload_study(config: SweepConfig = SweepConfig()) -> Dict[str, List]:
    """Open-loop traffic study: tail FCT and fairness under load.

    Sweeps the offered load (arrival rate) for a fixed mice-and-
    elephants workload across the protocol matrix, every cell a
    hybrid-fidelity :func:`repro.experiments.workload.run_workload`
    through the parallel engine (so cells cache and crash-isolate like
    any sweep).  Prints tail FCT percentiles, Jain's fairness over
    per-flow goodput and bottleneck queue occupancy per (rate,
    protocol) cell.
    """
    from repro.experiments.scenarios import WORKLOAD_BOTTLENECK
    from repro.experiments.workload import WorkloadSpec

    rates = (50.0, 100.0, 200.0)
    protocols = ("quic", "mpquic")
    specs = [
        WorkloadSpec(
            n_flows=max(40, config.scenarios * 4),
            arrival="poisson",
            arrival_rate=rate,
            size_dist="pareto",
            mean_size=min(config.small_file_size, 100_000),
            fidelity="fluid",
            n_pairs=8,
            measure_every=10,
            seed=config.seed,
        )
        for rate in rates
    ]
    cells = plan_workload_sweep(specs, WORKLOAD_BOTTLENECK, protocols=protocols)
    results = execute_cells(cells)
    rows = []
    data: Dict[str, List] = {"rate": [], "protocol": [], "results": []}
    for cell, result in zip(cells, results):
        rate = cell.workload.arrival_rate if cell.workload else 0.0
        data["rate"].append(rate)
        data["protocol"].append(cell.protocol)
        data["results"].append(result)
        rows.append((
            f"{rate:g}",
            cell.protocol,
            f"{result.completed_flows}/{result.n_flows}",
            f"{result.peak_concurrent}",
            f"{result.p50_fct * 1e3:.0f}",
            f"{result.p99_fct * 1e3:.0f}",
            f"{result.p999_fct * 1e3:.0f}",
            f"{result.jain_goodput:.3f}",
            f"{result.queue_p99_bytes / 1e3:.0f}",
        ))
    print("== Open-loop workload study (mice-and-elephants) ==")
    print(table(
        ["rate (fl/s)", "protocol", "done", "peak", "p50 (ms)",
         "p99 (ms)", "p999 (ms)", "Jain", "queue p99 (KB)"],
        rows,
    ))
    return data


def distributed_cdf_study(config: SweepConfig = SweepConfig()) -> Dict[str, object]:
    """Streamed CDFs from a distributed sweep (bounded memory).

    The consumption path for :mod:`repro.experiments.distributed`'s
    ``collect="aggregate"`` mode: the class sweep runs across
    independent worker processes over a spool directory, every
    committed cell folds into Greenwald-Khanna sketches as it lands,
    and the transfer-time CDF plus per-protocol quantile table are
    rendered *straight from the sketches* — no full result matrix is
    ever materialised, so the same path serves 10k-cell designs in
    O(sketch) coordinator memory.
    """
    from repro.experiments.distributed import run_distributed_sweep

    scenarios = generate_scenarios(
        "low-bdp-no-loss", config.scenarios, seed=config.seed
    )
    cells = plan_class_sweep(scenarios, config.file_size, lossy=False)
    outcome = run_distributed_sweep(
        cells, workers=min(resolve_jobs(None), 4), collect="aggregate"
    )
    agg = outcome.aggregate
    assert agg is not None
    summary = agg.summary()
    print(f"== Distributed sweep: GET {config.file_size} B, "
          f"low-BDP-no-loss ({summary['cells']} cells, "
          f"{summary['sketch_entries']} sketch entries) ==")
    rows = []
    for protocol, group in summary["protocols"].items():
        rows.append((
            protocol,
            f"{group['cells']}",
            f"{group['transfer_time']['p50']:.3f}",
            f"{group['transfer_time']['p99']:.3f}",
            f"{group['goodput_bps']['p50'] / 1e6:.2f}",
            f"{group['jain_goodput']:.3f}",
        ))
    print(table(
        ["protocol", "cells", "time p50 (s)", "time p99 (s)",
         "goodput p50 (Mbps)", "Jain"],
        rows,
    ))
    # An even quantile grid *is* the streamed CDF: rendering those
    # values through the empirical-CDF plotter reproduces the sketch's
    # distribution without touching per-cell data.
    grid = [v for v, _ in agg.cdf(points=50)]
    if grid:
        print(ascii_cdf(grid, "transfer time (s), all protocols"))
    return {"summary": summary, "cdf": agg.cdf(points=50)}


FIGURES = {
    "fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
    "fig7": fig7, "fig8": fig8, "fig9": fig9, "fig10": fig10,
    "fig11": fig11, "headline": headline_percentages,
    "handover-sweep": handover_sweep,
    "ablation-scheduler": ablation_scheduler,
    "ablation-cc": ablation_congestion_control,
    "ablation-wupdate": ablation_window_updates,
    "workload": workload_study,
    "distributed-cdf": distributed_cdf_study,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation figures."
    )
    parser.add_argument(
        "figure", choices=sorted(FIGURES) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--scenarios", type=int, default=None)
    parser.add_argument("--file-size", type=int, default=None)
    parser.add_argument("--small-file-size", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--full", action="store_true",
        help="paper scale: 253 scenarios, 20 MB / 256 KB transfers",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep execution "
             "(default: $REPRO_JOBS or all cores; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (results/cache)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="additionally dump every run of the executed sweeps to CSV",
    )
    args = parser.parse_args(argv)
    config = SweepConfig.paper_scale() if args.full else SweepConfig()
    overrides = {}
    if args.scenarios is not None:
        overrides["scenarios"] = args.scenarios
    if args.file_size is not None:
        overrides["file_size"] = args.file_size
    if args.small_file_size is not None:
        overrides["small_file_size"] = args.small_file_size
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = replace(config, **overrides)
    # The fig* entry points take only a SweepConfig, so the execution
    # knobs travel via the environment the parallel engine reads.
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.no_cache:
        os.environ["REPRO_CACHE"] = "off"
    targets = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in targets:
        FIGURES[name](config)
    if args.csv:
        from repro.experiments.report import SWEEP_CSV_HEADERS, save_csv, sweep_to_rows

        rows: List[List[object]] = []
        for sweep in _SWEEP_CACHE.values():
            rows.extend(sweep_to_rows(sweep))
        save_csv(args.csv, SWEEP_CSV_HEADERS, rows)
        print(f"wrote {len(rows)} runs to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
