"""Unit and property tests for repro.util.ranges.RangeSet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ranges import RangeSet


class TestRangeSetBasics:
    def test_empty(self):
        rs = RangeSet()
        assert len(rs) == 0
        assert not rs
        assert rs.total == 0
        assert 5 not in rs

    def test_single_add(self):
        rs = RangeSet()
        rs.add(3, 7)
        assert list(rs) == [(3, 7)]
        assert rs.total == 4
        assert 3 in rs and 6 in rs
        assert 2 not in rs and 7 not in rs

    def test_add_value(self):
        rs = RangeSet()
        rs.add_value(10)
        assert list(rs) == [(10, 11)]

    def test_empty_range_ignored(self):
        rs = RangeSet()
        rs.add(5, 5)
        rs.add(7, 3)
        assert not rs

    def test_disjoint_adds_sorted(self):
        rs = RangeSet()
        rs.add(10, 12)
        rs.add(0, 2)
        rs.add(5, 6)
        assert list(rs) == [(0, 2), (5, 6), (10, 12)]

    def test_overlapping_merge(self):
        rs = RangeSet()
        rs.add(0, 5)
        rs.add(3, 8)
        assert list(rs) == [(0, 8)]

    def test_touching_merge(self):
        rs = RangeSet()
        rs.add(0, 5)
        rs.add(5, 8)
        assert list(rs) == [(0, 8)]

    def test_bridging_merge(self):
        rs = RangeSet()
        rs.add(0, 2)
        rs.add(4, 6)
        rs.add(1, 5)
        assert list(rs) == [(0, 6)]

    def test_superset_add(self):
        rs = RangeSet()
        rs.add(2, 3)
        rs.add(5, 6)
        rs.add(0, 10)
        assert list(rs) == [(0, 10)]

    def test_min_max(self):
        rs = RangeSet([(4, 6), (9, 12)])
        assert rs.min == 4
        assert rs.max == 11

    def test_contains_range(self):
        rs = RangeSet([(0, 10)])
        assert rs.contains_range(0, 10)
        assert rs.contains_range(3, 7)
        assert not rs.contains_range(5, 11)
        assert rs.contains_range(5, 5)  # empty range is trivially contained

    def test_intersects(self):
        rs = RangeSet([(5, 10)])
        assert rs.intersects(9, 20)
        assert rs.intersects(0, 6)
        assert not rs.intersects(0, 5)
        assert not rs.intersects(10, 20)

    def test_remove_middle_splits(self):
        rs = RangeSet([(0, 10)])
        rs.remove(3, 6)
        assert list(rs) == [(0, 3), (6, 10)]

    def test_remove_exact(self):
        rs = RangeSet([(0, 10)])
        rs.remove(0, 10)
        assert not rs

    def test_remove_spanning(self):
        rs = RangeSet([(0, 3), (5, 8), (10, 12)])
        rs.remove(2, 11)
        assert list(rs) == [(0, 2), (11, 12)]

    def test_remove_absent_noop(self):
        rs = RangeSet([(5, 8)])
        rs.remove(0, 3)
        assert list(rs) == [(5, 8)]

    def test_first_gap_after(self):
        rs = RangeSet([(0, 5), (8, 10)])
        assert rs.first_gap_after(0) == 5
        assert rs.first_gap_after(5) == 5
        assert rs.first_gap_after(8) == 10
        assert rs.first_gap_after(20) == 20

    def test_descending_ranges_with_limit(self):
        rs = RangeSet([(0, 1), (3, 4), (6, 7), (9, 10)])
        assert rs.descending_ranges() == [(9, 10), (6, 7), (3, 4), (0, 1)]
        assert rs.descending_ranges(limit=2) == [(9, 10), (6, 7)]

    def test_copy_is_independent(self):
        rs = RangeSet([(0, 5)])
        dup = rs.copy()
        dup.add(10, 12)
        assert list(rs) == [(0, 5)]
        assert rs == RangeSet([(0, 5)])
        assert dup != rs


@st.composite
def range_lists(draw):
    n = draw(st.integers(0, 30))
    out = []
    for _ in range(n):
        start = draw(st.integers(0, 200))
        length = draw(st.integers(1, 30))
        out.append((start, start + length))
    return out


class TestRangeSetProperties:
    @given(range_lists())
    @settings(max_examples=200)
    def test_matches_reference_set(self, ranges):
        rs = RangeSet()
        reference = set()
        for start, stop in ranges:
            rs.add(start, stop)
            reference.update(range(start, stop))
        assert rs.total == len(reference)
        for value in range(0, 240):
            assert (value in rs) == (value in reference)

    @given(range_lists(), range_lists())
    @settings(max_examples=100)
    def test_remove_matches_reference(self, adds, removes):
        rs = RangeSet()
        reference = set()
        for start, stop in adds:
            rs.add(start, stop)
            reference.update(range(start, stop))
        for start, stop in removes:
            rs.remove(start, stop)
            reference.difference_update(range(start, stop))
        assert rs.total == len(reference)
        for value in range(0, 240):
            assert (value in rs) == (value in reference)

    @given(range_lists())
    @settings(max_examples=100)
    def test_invariants_sorted_disjoint(self, ranges):
        rs = RangeSet()
        for start, stop in ranges:
            rs.add(start, stop)
        spans = list(rs)
        for start, stop in spans:
            assert start < stop
        for (_, prev_stop), (next_start, _) in zip(spans, spans[1:]):
            assert prev_stop < next_start  # disjoint and non-touching

    @given(range_lists())
    @settings(max_examples=50)
    def test_add_is_idempotent(self, ranges):
        rs = RangeSet()
        for start, stop in ranges:
            rs.add(start, stop)
        snapshot = list(rs)
        for start, stop in ranges:
            rs.add(start, stop)
        assert list(rs) == snapshot


# ----------------------------------------------------------------------
# AckManager invariants under randomized receive/ack/drop churn
# ----------------------------------------------------------------------

from repro.quic.ackmgr import AckManager  # noqa: E402
from repro.quic.frames import MAX_ACK_RANGES  # noqa: E402


class TestAckManagerChurnInvariants:
    """Drive an AckManager through random packet-arrival histories.

    Invariants (the receiver-side contract the sender's loss detection
    relies on):

    * an ACK never acknowledges a packet number that was not received;
    * neither the stored range set nor any built ACK frame ever exceeds
      ``MAX_ACK_RANGES`` ranges;
    * ``largest_acked`` is the true largest received packet number.
    """

    @given(st.data())
    @settings(max_examples=60, derandomize=True)
    def test_churn(self, data):
        mgr = AckManager(path_id=0)
        received = set()
        forgotten_below = 0
        now = 0.0
        next_pn = 0
        n_ops = data.draw(st.integers(10, 120), label="ops")
        for _ in range(n_ops):
            op = data.draw(
                st.sampled_from(["recv", "drop", "rerecv", "ack", "forget"]),
                label="op",
            )
            now += data.draw(
                st.floats(0.0, 0.05, allow_nan=False), label="dt"
            )
            if op == "recv":
                mgr.on_packet_received(next_pn, now, ack_eliciting=True)
                received.add(next_pn)
                next_pn += 1
            elif op == "drop":
                # The network ate this packet number: the receiver
                # never sees it (a gap the sender must retransmit).
                next_pn += data.draw(st.integers(1, 40), label="gap")
            elif op == "rerecv":
                if received:
                    dup = data.draw(
                        st.sampled_from(sorted(received)), label="dup"
                    )
                    mgr.on_packet_received(dup, now, ack_eliciting=True)
            elif op == "ack":
                frame = mgr.build_ack(now)
                if frame is not None:
                    self._check_ack(frame, mgr, received, forgotten_below)
            elif op == "forget":
                if received:
                    cut = data.draw(
                        st.sampled_from(sorted(received)), label="cut"
                    )
                    mgr.forget_below(cut)
                    forgotten_below = max(forgotten_below, cut)
            # Stored state stays bounded no matter the history.
            assert len(mgr.received) <= MAX_ACK_RANGES
        final = mgr.build_ack(now)
        if final is not None:
            self._check_ack(final, mgr, received, forgotten_below)

    @staticmethod
    def _check_ack(frame, mgr, received, forgotten_below):
        assert len(frame.ranges) <= MAX_ACK_RANGES
        acked = set()
        for start, stop in frame.ranges:
            acked.update(range(start, stop))
        # Soundness: everything acknowledged was actually received.
        assert acked <= received
        assert frame.largest_acked == max(received)
        assert frame.largest_acked in acked
        # Completeness: everything received, not yet forgotten and not
        # trimmed out of the bounded range window is re-acknowledged.
        reportable = {p for p in received if p >= forgotten_below}
        if len(mgr.received) < MAX_ACK_RANGES and len(frame.ranges) < MAX_ACK_RANGES:
            assert reportable <= acked


class TestAckManagerRangeBound:
    def test_pathological_alternating_receives_stay_bounded(self):
        mgr = AckManager(path_id=1)
        # Every other packet lost: worst case for range growth.
        for pn in range(0, 4 * MAX_ACK_RANGES, 2):
            mgr.on_packet_received(pn, now=pn * 0.001, ack_eliciting=True)
            assert len(mgr.received) <= MAX_ACK_RANGES
        frame = mgr.build_ack(now=1.0)
        assert len(frame.ranges) == MAX_ACK_RANGES
        # The *highest* ranges are kept: trimming discards old state.
        assert frame.largest_acked == 4 * MAX_ACK_RANGES - 2
        assert min(s for s, _ in frame.ranges) >= 2 * MAX_ACK_RANGES

    def test_trim_never_drops_the_largest_range(self):
        mgr = AckManager(path_id=0)
        pns = list(range(0, 10 * MAX_ACK_RANGES, 3))
        for pn in pns:
            mgr.on_packet_received(pn, now=0.0, ack_eliciting=False)
        assert mgr.received.max == pns[-1]
        assert mgr.largest_received == pns[-1]
