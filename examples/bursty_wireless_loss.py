#!/usr/bin/env python3
"""Bursty (wireless-like) loss vs independent loss.

The paper's Mininet setup uses independent (Bernoulli) random loss; the
wireless links that motivate multipath lose packets in *bursts*.  This
example re-runs the lossy comparison with a Gilbert-Elliott loss model
at the same average rate but increasing burst lengths.

Result shape: burstiness barely hurts (MP)QUIC — rich ACK ranges and
cross-path retransmission absorb a clobbered window — while MPTCP's
subflows suffer in-sequence retransmission and timeouts, so the
MPTCP/MPQUIC gap *widens* with burstiness.

Run:  python examples/bursty_wireless_loss.py
"""

from repro.experiments.metrics import median
from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig

SIZE = 2_000_000
AVG_LOSS = 2.0  # percent, both paths


def ratio_at(burst: float, seeds=(1, 2, 3)) -> dict:
    sp, mp = [], []
    for seed in seeds:
        paths = [
            PathConfig(10, 40, 50, AVG_LOSS, loss_burst=burst),
            PathConfig(10, 40, 50, AVG_LOSS, loss_burst=burst),
        ]
        tcp = run_bulk("tcp", paths, SIZE, base_seed=seed, repetitions=3)
        quic = run_bulk("quic", paths, SIZE, base_seed=seed, repetitions=3)
        mptcp = run_bulk("mptcp", paths, SIZE, base_seed=seed, repetitions=3)
        mpquic = run_bulk("mpquic", paths, SIZE, base_seed=seed, repetitions=3)
        sp.append(tcp.transfer_time / quic.transfer_time)
        mp.append(mptcp.transfer_time / mpquic.transfer_time)
    return {"tcp/quic": median(sp), "mptcp/mpquic": median(mp)}


def main() -> None:
    print(f"GET {SIZE / 1e6:.0f} MB, two 10 Mbps/40 ms paths, "
          f"{AVG_LOSS}% average loss\n")
    print(f"{'mean burst':>11s} {'TCP/QUIC':>10s} {'MPTCP/MPQUIC':>14s}")
    for burst in (0.0, 2.0, 4.0, 8.0):
        r = ratio_at(burst)
        label = "independent" if burst == 0 else f"{burst:.0f} packets"
        print(f"{label:>11s} {r['tcp/quic']:10.2f} {r['mptcp/mpquic']:14.2f}")
    print("\nratio > 1 means the QUIC variant is faster")


if __name__ == "__main__":
    main()
