"""Exporter tests: qlog JSON shape, JSONL round-trip into the summary,
CSV series output, and the `python -m repro.obs report` CLI."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    Tracer,
    format_report,
    read_jsonl,
    summarize,
    to_qlog,
    write_csv_series,
    write_jsonl,
    write_qlog_json,
)
from tests.test_obs_events import TWO_PATHS, traced_transfer


@pytest.fixture(scope="module")
def trace():
    tr, *_ = traced_transfer(TWO_PATHS, size=200_000)
    return tr


class TestQlogExport:
    def test_document_shape(self, trace):
        doc = to_qlog(trace, title="unit test")
        assert doc["qlog_version"]
        assert doc["title"] == "unit test"
        hosts = {t["vantage_point"]["name"] for t in doc["traces"]}
        assert hosts == {"client", "server"}
        server = next(
            t for t in doc["traces"] if t["vantage_point"]["name"] == "server"
        )
        names = {ev["name"] for ev in server["events"]}
        assert "transport:packet_sent" in names
        assert "path:validated" in names
        assert "path0:cwnd" in server["time_series"]
        assert "path1:srtt" in server["time_series"]
        assert server["scheduler_decisions"]

    def test_json_serializable(self, trace, tmp_path):
        out = tmp_path / "trace.qlog.json"
        write_qlog_json(trace, str(out))
        doc = json.loads(out.read_text())
        assert doc["traces"]


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events_series_histogram(self, trace):
        buf = io.StringIO()
        lines = write_jsonl(trace, buf)
        assert lines == (
            len(trace.events)
            + sum(len(points) for points in trace.series.values())
            + len(trace.scheduler_decisions)
        )
        buf.seek(0)
        restored = read_jsonl(buf)
        assert len(restored.events) == len(trace.events)
        assert restored.events[0] == trace.events[0]
        assert restored.series.keys() == trace.series.keys()
        for key in trace.series:
            assert restored.series[key] == [
                (t, v) for t, v in trace.series[key]
            ]
        assert restored.scheduler_decisions == trace.scheduler_decisions

    def test_round_trip_summary_matches_live_summary(self, trace):
        buf = io.StringIO()
        write_jsonl(trace, buf)
        buf.seek(0)
        live = summarize(trace)
        reloaded = summarize(read_jsonl(buf))
        assert reloaded.paths.keys() == live.paths.keys()
        for key in live.paths:
            assert vars(reloaded.paths[key]) == vars(live.paths[key])
        assert reloaded.scheduler_histogram == live.scheduler_histogram
        assert reloaded.handover_timeline == live.handover_timeline

    def test_histogram_rebuilt_from_events_when_lines_missing(self):
        tr = Tracer()
        tr.sched_decision(0.1, "h", 0)
        tr.sched_decision(0.2, "h", 1)
        tr.sched_decision(0.3, "h", 1)
        buf = io.StringIO()
        # Export events only (simulate a stream cut before the footer).
        for ev in tr.events:
            buf.write(
                json.dumps(
                    {
                        "kind": "event",
                        "time": ev.time,
                        "host": ev.host,
                        "category": ev.category,
                        "name": ev.name,
                        "path_id": ev.path_id,
                        "data": dict(ev.data),
                    }
                )
                + "\n"
            )
        buf.seek(0)
        restored = read_jsonl(buf)
        assert restored.scheduler_decisions == tr.scheduler_decisions


class TestCsvExport:
    def test_csv_rows_and_header(self, trace):
        buf = io.StringIO()
        rows = write_csv_series(trace, buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "time,host,path_id,metric,value"
        assert len(lines) == rows + 1
        cells = lines[1].split(",")
        assert len(cells) == 5
        float(cells[0]), int(cells[2]), float(cells[4])  # parse sanity


class TestSummaryReport:
    def test_report_contains_per_path_rows(self, trace):
        text = format_report(summarize(trace))
        assert "server/0" in text and "server/1" in text
        assert "scheduler decisions:" in text
        assert "path lifecycle timeline:" in text

    def test_cli_report(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, str(path))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", str(path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert "server/0" in proc.stdout
        assert "scheduler decisions:" in proc.stdout
