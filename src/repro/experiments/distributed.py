"""Fault-tolerant distributed sweep executor.

The parallel engine (:mod:`repro.experiments.parallel`) fans a sweep
out over one process pool on one host; this module scales the same
cells across *independent* worker processes coordinated through a
shared **spool directory** — a file-based work protocol with no
sockets, brokers or shared memory, so "multi-host" is just "mount the
same directory".  Robustness is the design centre, not an add-on:

* **Lease-based claims.**  A cell is claimed by atomically renaming
  its ``todo/`` token into ``leases/`` (exactly one winner per token);
  the lease carries a TTL and is renewed by a heartbeat thread while
  the cell runs.  A worker killed with SIGKILL mid-cell stops
  heartbeating, its lease expires, and any other worker (or the
  coordinator) *reclaims* it — the attempt is recorded as a failure
  and the cell re-queued under the same bounded-backoff/quarantine
  rules the in-process engine uses.
* **Two-phase, checksummed commits.**  Workers write results through
  the content-addressed :class:`~repro.experiments.parallel.ResultCache`
  (temp file + digest + rename), so a torn write can never be read
  back as a result: truncated, garbage or digest-mismatched entries
  count as logged misses and quarantine candidates, never crashes.
  Commits are *idempotent by construction* — cells are deterministic,
  so a duplicate execution (two workers racing a reclaimed lease)
  rewrites byte-identical content under the same key.  Lease
  exclusivity is therefore an efficiency mechanism; correctness rests
  on the commit protocol.
* **Stateless, crash-resumable coordinator.**  Every piece of
  coordinator state lives in the spool.  Kill it at any point and
  restart it against the same directory: completed cells are recovered
  bit-identically from the cache, expired leases are reclaimed, lost
  cells are re-queued, and the sweep continues.
* **Streaming, bounded-memory aggregation.**  Committed results fold
  one at a time into :class:`SweepAggregate` — Greenwald-Khanna
  :class:`~repro.experiments.metrics.QuantileSketch` summaries plus
  :class:`~repro.experiments.metrics.StreamingJain` fairness — so a
  10k-cell design aggregates in O(sketch) memory with no full result
  matrix (``collect="aggregate"``).

Spool layout (all mutations are atomic renames or O_APPEND writes)::

    <spool>/
      manifest.json        frozen sweep identity: format version,
                           ordered cell keys, runner kind, lease TTL,
                           max attempts
      cells/<key>.pkl      immutable pickled SweepCell work units
      todo/<key>           claim tokens (presence = claimable)
      leases/<key>.<worker>.lease
                           active claims: owner, deadline (renewed)
      failures/<key>.<n>.<worker>.json
                           one record per failed attempt (exceptions
                           and expired leases both count)
      quarantine/<key>.json
                           terminal skip-list entries (capped errors)
      cache/               shared ResultCache commit target
      telemetry.jsonl      line-atomic shared event sidecar

See ``docs/distributed.md`` for the full protocol and failure matrix.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
import sys
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.metrics import QuantileSketch, StreamingJain
from repro.experiments.parallel import (
    MAX_QUARANTINE_ERRORS,
    RESULTS_FORMAT_VERSION,
    CellResult,
    ResultCache,
    SweepCell,
    backoff_delay,
    clip_error,
    run_cell,
)
from repro.experiments.runner import BulkRunResult
from repro.experiments.workload import WorkloadRunResult
from repro.obs import metrics as _metrics

#: Default lease time-to-live, seconds.  Heartbeats renew at a third
#: of this, so a healthy worker never lets a lease lapse; a SIGKILLed
#: one is reclaimable after at most one TTL.
DEFAULT_LEASE_TTL = 15.0

#: Default total attempts per cell (first run + retries) before the
#: cell is quarantined — matches the in-process engine's default.
DEFAULT_MAX_ATTEMPTS = 3

#: Idle poll interval for workers waiting on claimable cells and for
#: the coordinator's progress scan, seconds.
DEFAULT_POLL_INTERVAL = 0.1

#: Known cell runners: ``simulation`` executes the real
#: :func:`repro.experiments.parallel.run_cell`; ``synthetic`` derives
#: a deterministic result from the cell key without simulating —
#: the harness-drill mode that lets 10k-cell protocol tests run in
#: seconds.
RUNNERS = ("simulation", "synthetic")


class SpoolError(RuntimeError):
    """The spool directory is missing, inconsistent or foreign."""


# ----------------------------------------------------------------------
# Spool layout
# ----------------------------------------------------------------------

@dataclass
class Spool:
    """Handle on one spool directory and its parsed manifest."""

    root: Path
    keys: Tuple[str, ...]
    runner: str
    ttl: float
    max_attempts: int

    @property
    def cells_dir(self) -> Path:
        return self.root / "cells"

    @property
    def todo_dir(self) -> Path:
        return self.root / "todo"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def failures_dir(self) -> Path:
        return self.root / "failures"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def telemetry_path(self) -> Path:
        return self.root / "telemetry.jsonl"

    def cache(self) -> ResultCache:
        return ResultCache(self.root / "cache")

    @staticmethod
    def open(root: "os.PathLike[str]") -> "Spool":
        path = Path(root)
        manifest_path = path / "manifest.json"
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except OSError as exc:
            raise SpoolError(f"no spool manifest at {manifest_path}") from exc
        except json.JSONDecodeError as exc:
            raise SpoolError(f"corrupt spool manifest {manifest_path}") from exc
        if manifest.get("format") != RESULTS_FORMAT_VERSION:
            raise SpoolError(
                f"spool {path} has format {manifest.get('format')!r}, "
                f"this build expects {RESULTS_FORMAT_VERSION}"
            )
        return Spool(
            root=path,
            keys=tuple(manifest["keys"]),
            runner=manifest.get("runner", "simulation"),
            ttl=float(manifest.get("ttl", DEFAULT_LEASE_TTL)),
            max_attempts=int(
                manifest.get("max_attempts", DEFAULT_MAX_ATTEMPTS)
            ),
        )

    def load_cell(self, key: str) -> SweepCell:
        with open(self.cells_dir / f"{key}.pkl", "rb") as fh:
            cell = pickle.load(fh)
        if not isinstance(cell, SweepCell) or cell.cache_key() != key:
            raise SpoolError(f"spooled cell {key[:12]}... fails verification")
        return cell


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_telemetry(spool: Spool, record: Dict[str, Any]) -> None:
    """Append one line-atomic JSONL record to the shared sidecar.

    Open/write/close per record on an ``O_APPEND`` descriptor: the
    kernel serialises whole-line appends, so any number of workers and
    coordinators share one sidecar without interleaving partial lines.
    """
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = os.open(
        spool.telemetry_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)


def init_spool(
    root: "os.PathLike[str]",
    cells: Sequence[SweepCell],
    runner: str = "simulation",
    ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> Spool:
    """Create (or idempotently re-open) a spool for ``cells``.

    Safe to call again on an existing spool with the same plan — the
    coordinator does exactly that after a crash-restart.  A spool
    holding a *different* plan is refused rather than silently mixed.
    """
    if runner not in RUNNERS:
        raise ValueError(f"unknown runner {runner!r} (expected {RUNNERS})")
    path = Path(root)
    keys: List[str] = []
    seen = set()
    for cell in cells:
        key = cell.cache_key()
        keys.append(key)
        seen.add(key)
    manifest_path = path / "manifest.json"
    if manifest_path.exists():
        spool = Spool.open(path)
        if tuple(keys) != spool.keys:
            raise SpoolError(
                f"spool {path} already holds a different sweep plan "
                f"({len(spool.keys)} cells vs {len(keys)} requested)"
            )
        return spool
    for sub in ("cells", "todo", "leases", "failures", "quarantine", "cache"):
        (path / sub).mkdir(parents=True, exist_ok=True)
    written = set()
    for cell in cells:
        key = cell.cache_key()
        if key in written:
            continue
        written.add(key)
        cell_path = path / "cells" / f"{key}.pkl"
        fd, tmp = tempfile.mkstemp(dir=cell_path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(cell, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, cell_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    _atomic_write_json(
        manifest_path,
        {
            "format": RESULTS_FORMAT_VERSION,
            "keys": keys,
            "runner": runner,
            "ttl": ttl,
            "max_attempts": max_attempts,
        },
    )
    spool = Spool.open(path)
    ensure_tokens(spool)
    return spool


# ----------------------------------------------------------------------
# Lease protocol primitives (all take `now` explicitly: the property
# suite drives the state machine on a synthetic clock)
# ----------------------------------------------------------------------

def _lease_path(spool: Spool, key: str, worker_id: str) -> Path:
    return spool.leases_dir / f"{key}.{worker_id}.lease"


def _lease_files(spool: Spool, key: Optional[str] = None) -> List[Path]:
    try:
        names = sorted(os.listdir(spool.leases_dir))
    except OSError:
        return []
    out = []
    for name in names:
        if not name.endswith(".lease"):
            continue
        if key is not None and not name.startswith(f"{key}."):
            continue
        out.append(spool.leases_dir / name)
    return out


def _lease_key(path: Path) -> str:
    return path.name.split(".", 1)[0]


def read_lease(path: Path, now: float, ttl: float) -> Tuple[str, float]:
    """``(owner, deadline)`` of a lease file.

    A freshly-claimed lease briefly holds the renamed todo token's
    content (no owner yet); it is granted a grace deadline from the
    file's mtime so a claim in progress is never mistaken for an
    expired lease, while a claimer that died between rename and write
    still expires one TTL later.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
        owner = data["owner"]
        deadline = float(data["deadline"])
        return owner, deadline
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        pass
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return "?", now  # vanished mid-read: treat as just expired
    return "?", mtime + ttl


def claim_cell(
    spool: Spool, key: str, worker_id: str, now: float
) -> bool:
    """Try to claim ``key``'s todo token; True when this worker won.

    The claim itself is one atomic rename — exactly one contender can
    move ``todo/<key>`` into its lease path.  The winner then stamps
    the lease with its identity and deadline.
    """
    lease = _lease_path(spool, key, worker_id)
    try:
        os.rename(spool.todo_dir / key, lease)
    except OSError:
        return False
    _atomic_write_json(
        lease,
        {"owner": worker_id, "deadline": now + spool.ttl, "claimed_at": now},
    )
    return True


def renew_lease(
    spool: Spool, key: str, worker_id: str, now: float
) -> bool:
    """Extend this worker's lease; False when the lease was lost.

    A lost lease (reclaimed by a peer that judged us dead) is *not* an
    error: the worker may finish and commit anyway — commits are
    idempotent — but it learns it no longer runs exclusively.
    """
    lease = _lease_path(spool, key, worker_id)
    if not lease.exists():
        return False
    _atomic_write_json(
        lease,
        {"owner": worker_id, "deadline": now + spool.ttl, "claimed_at": now},
    )
    return True


def release_lease(spool: Spool, key: str, worker_id: str) -> None:
    """Drop this worker's lease after a terminal outcome (commit or
    quarantine)."""
    try:
        os.unlink(_lease_path(spool, key, worker_id))
    except OSError:
        pass


def release_to_todo(spool: Spool, key: str, worker_id: str) -> None:
    """Re-queue a claimed cell after a failed attempt (atomic rename)."""
    try:
        os.rename(_lease_path(spool, key, worker_id), spool.todo_dir / key)
    except OSError:
        pass


def failure_count(spool: Spool, key: str) -> int:
    """Recorded failed attempts for ``key`` (exceptions + dead leases)."""
    try:
        names = os.listdir(spool.failures_dir)
    except OSError:
        return 0
    return sum(1 for name in names if name.startswith(f"{key}."))


def record_failure(
    spool: Spool, key: str, error: str, worker_id: str
) -> int:
    """Append one failed-attempt record; returns the new attempt count."""
    attempt = failure_count(spool, key) + 1
    _atomic_write_json(
        spool.failures_dir / f"{key}.{attempt}.{worker_id}.json",
        {"error": clip_error(error), "worker": worker_id, "attempt": attempt},
    )
    return failure_count(spool, key)


def failure_errors(spool: Spool, key: str) -> List[str]:
    """The recorded error strings for ``key``, in attempt order."""
    try:
        names = sorted(
            name for name in os.listdir(spool.failures_dir)
            if name.startswith(f"{key}.")
        )
    except OSError:
        return []
    errors = []
    for name in names:
        try:
            with open(spool.failures_dir / name) as fh:
                errors.append(str(json.load(fh).get("error", "?")))
        except (OSError, json.JSONDecodeError):
            errors.append("?")
    return errors


def quarantine_cell(spool: Spool, key: str, worker_id: str) -> None:
    """Write the terminal skip-list entry for ``key`` and de-queue it."""
    try:
        cell = spool.load_cell(key)
        meta: Dict[str, Any] = {
            "protocol": cell.protocol,
            "initial_interface": cell.initial_interface,
            "base_seed": cell.base_seed,
        }
    except Exception:
        # A corrupt pickle can surface as almost anything (ValueError,
        # EOFError, AttributeError, ...) — the quarantine entry must be
        # written regardless; cell metadata is best-effort decoration.
        meta = {}
    errors = [clip_error(e) for e in failure_errors(spool, key)]
    entry = {
        "cache_key": key,
        "attempts": failure_count(spool, key),
        "errors": errors[-MAX_QUARANTINE_ERRORS:],
        "quarantined_by": worker_id,
    }
    entry.update(meta)
    _atomic_write_json(spool.quarantine_dir / f"{key}.json", entry)
    try:
        os.unlink(spool.todo_dir / key)
    except OSError:
        pass


def is_quarantined(spool: Spool, key: str) -> bool:
    return (spool.quarantine_dir / f"{key}.json").exists()


def quarantine_entries(spool: Spool) -> List[Dict[str, Any]]:
    """Every terminal skip-list entry, in key order."""
    try:
        names = sorted(os.listdir(spool.quarantine_dir))
    except OSError:
        return []
    entries = []
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(spool.quarantine_dir / name) as fh:
                entries.append(json.load(fh))
        except (OSError, json.JSONDecodeError):
            entries.append({"cache_key": name[: -len(".json")],
                            "attempts": 0, "errors": ["unreadable entry"]})
    return entries


def reclaim_expired(
    spool: Spool, now: float, worker_id: str
) -> int:
    """Reclaim every expired lease; returns how many were reclaimed.

    The reclaim is one atomic rename back into ``todo/`` — exactly one
    contender wins a given lease file.  The winner records the expiry
    as a failed attempt (a SIGKILLed worker never got to), then
    quarantines the cell if it has exhausted its attempts.
    """
    reclaimed = 0
    for lease in _lease_files(spool):
        key = _lease_key(lease)
        owner, deadline = read_lease(lease, now, spool.ttl)
        if deadline >= now or owner == worker_id:
            continue
        try:
            os.rename(lease, spool.todo_dir / key)
        except OSError:
            continue  # somebody else won the reclaim
        reclaimed += 1
        attempts = record_failure(
            spool, key,
            f"lease expired (owner={owner} presumed dead)", worker_id,
        )
        append_telemetry(
            spool,
            {"record": "lease_reclaimed", "cache_key": key,
             "previous_owner": owner, "by": worker_id,
             "attempts": attempts},
        )
        if attempts >= spool.max_attempts:
            quarantine_cell(spool, key, worker_id)
    return reclaimed


def terminal_keys(spool: Spool) -> Tuple[set, set]:
    """``(committed, quarantined)`` key sets, by direct directory scan."""
    committed = set()
    cache_root = spool.root / "cache"
    for key in spool.keys:
        if (cache_root / key[:2] / f"{key}.json").exists():
            committed.add(key)
    quarantined = set()
    try:
        for name in os.listdir(spool.quarantine_dir):
            if name.endswith(".json"):
                quarantined.add(name[: -len(".json")])
    except OSError:
        pass
    return committed, quarantined


def ensure_tokens(spool: Spool) -> int:
    """Re-queue every cell that is neither terminal, queued nor leased.

    The self-healing pass that makes the coordinator stateless: after
    any crash (worker, coordinator, or a corrupt cache entry set
    aside), calling this restores the invariant that every unfinished
    cell is either claimable or actively leased.  Returns how many
    tokens were (re)created.
    """
    committed, quarantined = terminal_keys(spool)
    try:
        queued = set(os.listdir(spool.todo_dir))
    except OSError:
        queued = set()
    leased = {_lease_key(p) for p in _lease_files(spool)}
    created = 0
    for key in spool.keys:
        if key in committed or key in quarantined:
            continue
        if key in queued or key in leased:
            continue
        _atomic_write_json(spool.todo_dir / key, {"requeued": True})
        created += 1
    return created


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------

class _LeaseHeartbeat(threading.Thread):
    """Renews one lease at TTL/3 cadence while its cell executes.

    A SIGKILL kills this thread with the process — exactly the signal
    the protocol needs: the lease stops renewing and expires.
    """

    def __init__(self, spool: Spool, key: str, worker_id: str) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat-{key[:8]}")
        self._spool = spool
        self._key = key
        self._worker_id = worker_id
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:
        interval = max(self._spool.ttl / 3.0, 0.02)
        while not self._halt.wait(interval):
            if not renew_lease(
                self._spool, self._key, self._worker_id, time.time()
            ):
                self.lost = True

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def synthetic_result(cell: SweepCell) -> BulkRunResult:
    """Deterministic no-simulation result for harness drills.

    Derived purely from the cell's cache key, so re-execution anywhere
    reproduces it bit-identically — which is what lets 10k-cell
    protocol/scale tests exercise the full spool machinery in seconds.
    """
    word = int.from_bytes(
        hashlib.sha256(cell.cache_key().encode()).digest()[:8], "big"
    )
    transfer_time = 0.5 + (word % 10_000) / 10_000.0
    return BulkRunResult(
        protocol=cell.protocol,
        initial_interface=cell.initial_interface,
        file_size=cell.file_size,
        transfer_time=transfer_time,
        goodput_bps=cell.file_size * 8.0 / transfer_time,
        completed=True,
        repetitions=cell.repetitions,
        details={"sim_events": float(word % 1000), "synthetic": 1.0},
        rep_times=[transfer_time],
        rep_completed=[True],
    )


def execute_spooled_cell(cell: SweepCell, runner: str) -> CellResult:
    """Run one claimed cell under the spool's configured runner."""
    if runner == "synthetic":
        return synthetic_result(cell)
    return run_cell(cell)


@dataclass
class WorkerStats:
    """Accounting of one :func:`worker_loop` invocation."""

    worker_id: str
    committed: int = 0
    already_done: int = 0
    failed: int = 0
    quarantined: int = 0
    reclaimed: int = 0
    leases_lost: int = 0


def worker_loop(
    spool_root: "os.PathLike[str]",
    worker_id: Optional[str] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    max_cells: Optional[int] = None,
    max_seconds: Optional[float] = None,
) -> WorkerStats:
    """Claim, execute and commit cells until the spool drains.

    The distributed twin of the pool worker: wholly independent of the
    coordinator (it can start before, after, or without one) and of
    its peers.  Exits when every manifest cell is terminal, or when
    the optional ``max_cells`` / ``max_seconds`` budgets run out.
    """
    spool = Spool.open(spool_root)
    me = worker_id if worker_id is not None else f"w{os.getpid()}"
    stats = WorkerStats(worker_id=me)
    cache = spool.cache()
    deadline = (
        time.time() + max_seconds if max_seconds is not None else None
    )
    append_telemetry(
        spool, {"record": "worker_start", "worker": me, "pid": os.getpid()}
    )
    idle_polls = 0
    # Worker-local claim backlog: one sorted todo/ scan serves many
    # claims, so draining N cells costs O(N) directory reads instead
    # of O(N^2).  Staleness is harmless — a vanished token just fails
    # its claim rename and the backlog refills on exhaustion.
    backlog: List[str] = []
    while True:
        if max_cells is not None and (
            stats.committed + stats.already_done + stats.quarantined
        ) >= max_cells:
            break
        if deadline is not None and time.time() >= deadline:
            break
        now = time.time()
        stats.reclaimed += reclaim_expired(spool, now, me)
        key = _claim_next(spool, me, now, backlog)
        if key is None:
            if _spool_drained(spool):
                healed = ensure_tokens(spool)
                if healed == 0 and _spool_drained(spool):
                    break
                continue
            idle_polls += 1
            time.sleep(poll_interval)
            continue
        idle_polls = 0
        _work_one(spool, cache, key, me, stats)
    append_telemetry(
        spool,
        {"record": "worker_end", "worker": me,
         "committed": stats.committed, "failed": stats.failed,
         "quarantined": stats.quarantined, "reclaimed": stats.reclaimed},
    )
    return stats


def _spool_drained(spool: Spool) -> bool:
    """No queued tokens and no live leases — the sweep looks finished."""
    try:
        if any(True for _ in os.scandir(spool.todo_dir)):
            return False
    except OSError:
        pass
    if _lease_files(spool):
        return False
    return True


def _claim_next(
    spool: Spool,
    worker_id: str,
    now: float,
    backlog: Optional[List[str]] = None,
) -> Optional[str]:
    """Claim the next claimable todo token, if any.

    ``backlog`` (a caller-held list of candidate keys, most recent
    scan first-out) amortises the sorted directory scan across claims;
    without one, every call scans fresh.
    """
    if backlog is None:
        backlog = []
    if not backlog:
        try:
            names = sorted(os.listdir(spool.todo_dir), reverse=True)
        except OSError:
            return None
        backlog.extend(names)  # reverse-sorted: pop() yields key order
    while backlog:
        key = backlog.pop()
        if key.endswith(".tmp"):
            continue
        if is_quarantined(spool, key):
            try:
                os.unlink(spool.todo_dir / key)
            except OSError:
                pass
            continue
        if claim_cell(spool, key, worker_id, now):
            return key
    return None


def _work_one(
    spool: Spool,
    cache: ResultCache,
    key: str,
    worker_id: str,
    stats: WorkerStats,
) -> None:
    """Execute one claimed cell through its terminal outcome."""
    # Already committed (resume re-queued it unnecessarily, or a racing
    # duplicate finished first): drop the lease and move on.
    if cache.get_key(key) is not None:
        release_lease(spool, key, worker_id)
        stats.already_done += 1
        return
    attempts_before = failure_count(spool, key)
    if attempts_before >= spool.max_attempts:
        quarantine_cell(spool, key, worker_id)
        release_lease(spool, key, worker_id)
        stats.quarantined += 1
        append_telemetry(
            spool,
            {"record": "cell_quarantined", "cache_key": key,
             "worker": worker_id, "attempts": attempts_before},
        )
        return
    heartbeat = _LeaseHeartbeat(spool, key, worker_id)
    heartbeat.start()
    t0 = _metrics.clock()
    try:
        # Loading is inside the failure envelope: a corrupt/truncated
        # cell pickle is a failed attempt that ends in quarantine, not
        # a crashed worker.
        cell = spool.load_cell(key)
        result = execute_spooled_cell(cell, spool.runner)
    except Exception as exc:
        heartbeat.stop()
        attempts = record_failure(spool, key, repr(exc), worker_id)
        stats.failed += 1
        append_telemetry(
            spool,
            {"record": "attempt_failed", "cache_key": key,
             "worker": worker_id, "attempt": attempts,
             "error": clip_error(repr(exc))},
        )
        if attempts >= spool.max_attempts:
            quarantine_cell(spool, key, worker_id)
            release_lease(spool, key, worker_id)
            stats.quarantined += 1
        else:
            release_to_todo(spool, key, worker_id)
            time.sleep(backoff_delay(attempts))
        return
    wall = _metrics.clock() - t0
    heartbeat.stop()
    if heartbeat.lost:
        stats.leases_lost += 1
    # Two-phase checksummed commit: temp file + digest + rename into
    # the content-addressed cache.  Idempotent — a racing duplicate
    # writes the same bytes under the same key.
    cache.put(cell, result)
    release_lease(spool, key, worker_id)
    stats.committed += 1
    append_telemetry(
        spool,
        {"record": "cell_committed", "cache_key": key,
         "worker": worker_id, "pid": os.getpid(),
         "wall_seconds": round(wall, 6),
         "attempts": failure_count(spool, key) + 1,
         "lease_lost": heartbeat.lost},
    )


# ----------------------------------------------------------------------
# Streaming aggregation
# ----------------------------------------------------------------------

@dataclass
class _GroupAggregate:
    """Per-protocol streaming summary (bounded memory)."""

    cells: int = 0
    completed: int = 0
    transfer_time: QuantileSketch = field(default_factory=QuantileSketch)
    goodput: QuantileSketch = field(default_factory=QuantileSketch)
    jain_goodput: StreamingJain = field(default_factory=StreamingJain)


class SweepAggregate:
    """Streaming fold of committed cell results — never the matrix.

    Each committed cell contributes one ``(transfer_time, goodput)``
    observation (workload cells: mean FCT and aggregate goodput) to a
    global and a per-protocol Greenwald-Khanna sketch plus a streaming
    Jain fairness accumulator, so aggregate memory is O(sketch size)
    regardless of sweep size.  ``sketch_entries`` is the bounded-memory
    evidence the acceptance test pins.
    """

    def __init__(self) -> None:
        self.cells = 0
        self.completed = 0
        self.quarantined = 0
        self.total = _GroupAggregate()
        self.groups: Dict[str, _GroupAggregate] = {}

    def fold(self, protocol: str, result: CellResult) -> None:
        if isinstance(result, WorkloadRunResult):
            transfer_time = result.mean_fct
            goodput = (
                result.total_bytes * 8.0 / result.duration
                if result.duration > 0.0
                else 0.0
            )
            completed = result.completed
        else:
            transfer_time = result.transfer_time
            goodput = result.goodput_bps
            completed = result.completed
        self.cells += 1
        if completed:
            self.completed += 1
        group = self.groups.setdefault(protocol, _GroupAggregate())
        for agg in (self.total, group):
            agg.cells += 1
            if completed:
                agg.completed += 1
            agg.transfer_time.insert(transfer_time)
            agg.goodput.insert(goodput)
            agg.jain_goodput.add(goodput)

    def sketch_entries(self) -> int:
        """Total stored summary entries across every sketch."""
        total = len(self.total.transfer_time) + len(self.total.goodput)
        for group in self.groups.values():
            total += len(group.transfer_time) + len(group.goodput)
        return total

    def summary(self) -> Dict[str, Any]:
        def _group(agg: _GroupAggregate) -> Dict[str, Any]:
            out: Dict[str, Any] = {
                "cells": agg.cells,
                "completed": agg.completed,
                "jain_goodput": agg.jain_goodput.value(),
            }
            if agg.cells:
                out["transfer_time"] = {
                    "p50": agg.transfer_time.p50(),
                    "p99": agg.transfer_time.p99(),
                }
                out["goodput_bps"] = {
                    "p50": agg.goodput.p50(),
                    "p99": agg.goodput.p99(),
                }
            return out

        return {
            "cells": self.cells,
            "completed": self.completed,
            "quarantined": self.quarantined,
            "sketch_entries": self.sketch_entries(),
            "total": _group(self.total),
            "protocols": {
                name: _group(group)
                for name, group in sorted(self.groups.items())
            },
        }

    def cdf(
        self, protocol: Optional[str] = None, points: int = 50
    ) -> List[Tuple[float, float]]:
        """Transfer-time CDF points straight from the sketch."""
        agg = self.total if protocol is None else self.groups[protocol]
        return agg.transfer_time.cdf_points(points)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

@dataclass
class DistributedStats:
    """Accounting of one :func:`coordinate` invocation."""

    cells: int = 0
    committed: int = 0
    recovered: int = 0
    quarantined: int = 0
    corrupt_entries: int = 0
    reclaimed: int = 0
    requeued: int = 0
    workers_spawned: int = 0
    workers_respawned: int = 0
    complete: bool = False


@dataclass
class DistributedResult:
    """What :func:`coordinate` hands back."""

    stats: DistributedStats
    #: Results aligned with the plan (``collect="results"``); slots of
    #: quarantined cells are None.  Empty in aggregate mode.
    results: List[Optional[CellResult]] = field(default_factory=list)
    #: Streaming aggregate (``collect="aggregate"``), else None.
    aggregate: Optional[SweepAggregate] = None
    quarantine: List[Dict[str, Any]] = field(default_factory=list)


def _repro_env() -> Dict[str, str]:
    """Environment for worker subprocesses: inherit + make repro importable."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def spawn_worker(spool: Spool, worker_id: str) -> "subprocess.Popen[bytes]":
    """Launch one independent worker process over the spool."""
    cmd = [
        sys.executable, "-m", "repro.experiments.distributed",
        "worker", str(spool.root), "--worker-id", worker_id,
    ]
    return subprocess.Popen(
        cmd,
        env=_repro_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def coordinate(
    spool_root: "os.PathLike[str]",
    cells: Optional[Sequence[SweepCell]] = None,
    workers: int = 0,
    collect: str = "results",
    on_result: Optional[Callable[[str, CellResult], None]] = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    runner: str = "simulation",
    ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    respawn: bool = True,
    max_seconds: Optional[float] = None,
) -> DistributedResult:
    """Drive a spool to completion, streaming results as they commit.

    Stateless and crash-resumable: every decision re-derives from the
    spool, so killing the coordinator and calling :func:`coordinate`
    again on the same directory recovers committed cells bit-
    identically from the cache, reclaims expired leases, re-queues
    lost cells, and continues.

    ``collect="results"`` assembles the plan-ordered result list (like
    :func:`repro.experiments.parallel.execute_cells`);
    ``collect="aggregate"`` folds every committed cell into a
    :class:`SweepAggregate` and never materialises the matrix — the
    bounded-memory mode for 10k+-cell designs.  ``on_result`` fires
    once per cell either way, as commits are observed.

    ``workers`` > 0 spawns that many worker subprocesses (respawned on
    death while unfinished cells remain, unless ``respawn=False``); 0
    coordinates workers started elsewhere — including on other hosts
    sharing the spool directory.  When subprocesses cannot be spawned
    at all, the coordinator degrades to draining the spool in-process
    with a warning.
    """
    if collect not in ("results", "aggregate"):
        raise ValueError("collect must be 'results' or 'aggregate'")
    if cells is not None:
        spool = init_spool(
            spool_root, cells, runner=runner, ttl=ttl,
            max_attempts=max_attempts,
        )
    else:
        spool = Spool.open(spool_root)
    stats = DistributedStats(cells=len(spool.keys))
    stats.requeued += ensure_tokens(spool)
    cache = spool.cache()
    aggregate = SweepAggregate() if collect == "aggregate" else None
    results_by_key: Dict[str, CellResult] = {}
    append_telemetry(
        spool,
        {"record": "coordinator_start", "cells": len(spool.keys),
         "workers": workers, "collect": collect,
         "format": RESULTS_FORMAT_VERSION},
    )

    procs: List["subprocess.Popen[bytes]"] = []
    inline = False
    try:
        for i in range(workers):
            procs.append(spawn_worker(spool, f"w{i}"))
            stats.workers_spawned += 1
    except (OSError, PermissionError) as exc:
        for proc in procs:
            proc.terminate()
        procs = []
        inline = workers > 0
        if inline:
            warnings.warn(
                f"cannot spawn worker processes ({exc!r}); coordinator "
                "will drain the spool in-process",
                RuntimeWarning,
                stacklevel=2,
            )

    pending = set(spool.keys)
    folded: set = set()
    deadline = time.time() + max_seconds if max_seconds is not None else None

    def _observe_progress() -> None:
        committed, quarantined = terminal_keys(spool)
        for key in spool.keys:
            if key in folded or key not in pending:
                continue
            if key in quarantined:
                pending.discard(key)
                folded.add(key)
                stats.quarantined += 1
                continue
            if key not in committed:
                continue
            result = cache.get_key(key)
            if result is None:
                continue  # torn/corrupt entry: set aside, re-queued below
            pending.discard(key)
            folded.add(key)
            stats.committed += 1
            if aggregate is not None:
                try:
                    protocol = result.protocol
                except AttributeError:
                    protocol = "?"
                aggregate.fold(protocol, result)
            elif collect == "results":
                results_by_key[key] = result
            if on_result is not None:
                on_result(key, result)

    try:
        while True:
            _observe_progress()
            new_corrupt = cache.corrupt - stats.corrupt_entries
            if new_corrupt:
                stats.corrupt_entries = cache.corrupt
                append_telemetry(
                    spool,
                    {"record": "corrupt_entries",
                     "keys": cache.corrupt_keys[-new_corrupt:]},
                )
            if not pending:
                stats.complete = True
                break
            if deadline is not None and time.time() >= deadline:
                break
            stats.reclaimed += reclaim_expired(
                spool, time.time(), "coordinator"
            )
            stats.requeued += ensure_tokens(spool)
            if inline:
                worker_stats = worker_loop(
                    spool.root, worker_id="coordinator-inline",
                    poll_interval=poll_interval, max_seconds=max_seconds,
                )
                stats.reclaimed += worker_stats.reclaimed
            elif procs and respawn:
                for i, proc in enumerate(procs):
                    if proc.poll() is not None and pending:
                        procs[i] = spawn_worker(spool, f"w{i}r")
                        stats.workers_respawned += 1
            time.sleep(poll_interval)
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=max(5.0, 2.0 * spool.ttl))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        quarantine = quarantine_entries(spool)
        append_telemetry(
            spool,
            {"record": "coordinator_end", "committed": stats.committed,
             "quarantined": stats.quarantined,
             "reclaimed": stats.reclaimed, "requeued": stats.requeued,
             "corrupt_entries": stats.corrupt_entries,
             "complete": stats.complete},
        )

    results: List[Optional[CellResult]] = []
    if collect == "results":
        results = [results_by_key.get(key) for key in spool.keys]
    return DistributedResult(
        stats=stats, results=results, aggregate=aggregate,
        quarantine=quarantine,
    )


def run_distributed_sweep(
    cells: Sequence[SweepCell],
    spool_root: Optional["os.PathLike[str]"] = None,
    workers: int = 2,
    collect: str = "results",
    runner: str = "simulation",
    ttl: float = DEFAULT_LEASE_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> DistributedResult:
    """One-call convenience: spool ``cells``, run workers, coordinate.

    With ``spool_root=None`` a temporary spool is used and cleaned up;
    pass a real path to keep the spool inspectable/resumable.
    """
    if spool_root is not None:
        return coordinate(
            spool_root, cells, workers=workers, collect=collect,
            runner=runner, ttl=ttl, max_attempts=max_attempts,
            poll_interval=poll_interval,
        )
    with tempfile.TemporaryDirectory(prefix="repro-spool-") as tmp:
        return coordinate(
            Path(tmp) / "spool", cells, workers=workers, collect=collect,
            runner=runner, ttl=ttl, max_attempts=max_attempts,
            poll_interval=poll_interval,
        )


# ----------------------------------------------------------------------
# CLI — the multi-host entry points
# ----------------------------------------------------------------------

def _cmd_worker(args: Any) -> int:
    stats = worker_loop(
        args.spool,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        max_cells=args.max_cells,
        max_seconds=args.max_seconds,
    )
    print(
        f"worker {stats.worker_id}: committed={stats.committed} "
        f"failed={stats.failed} quarantined={stats.quarantined} "
        f"reclaimed={stats.reclaimed}"
    )
    return 0


def _cmd_coordinate(args: Any) -> int:
    result = coordinate(
        args.spool,
        workers=args.workers,
        collect=args.collect,
        poll_interval=args.poll_interval,
        respawn=not args.no_respawn,
        max_seconds=args.max_seconds,
    )
    stats = result.stats
    print(
        f"coordinator: cells={stats.cells} committed={stats.committed} "
        f"quarantined={stats.quarantined} reclaimed={stats.reclaimed} "
        f"complete={stats.complete}"
    )
    if args.output:
        payload: Dict[str, Any] = {
            "stats": {
                "cells": stats.cells,
                "committed": stats.committed,
                "quarantined": stats.quarantined,
                "reclaimed": stats.reclaimed,
                "requeued": stats.requeued,
                "corrupt_entries": stats.corrupt_entries,
                "complete": stats.complete,
            },
            "quarantine": result.quarantine,
        }
        if result.aggregate is not None:
            payload["aggregate"] = result.aggregate.summary()
        _atomic_write_json(Path(args.output), payload)
    return 0 if stats.complete else 1


def _cmd_status(args: Any) -> int:
    spool = Spool.open(args.spool)
    committed, quarantined = terminal_keys(spool)
    try:
        queued = len(os.listdir(spool.todo_dir))
    except OSError:
        queued = 0
    leased = len(_lease_files(spool))
    print(
        f"spool {spool.root}: cells={len(spool.keys)} "
        f"committed={len(committed)} quarantined={len(quarantined)} "
        f"queued={queued} leased={leased} runner={spool.runner} "
        f"ttl={spool.ttl:g}s"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.distributed",
        description="Distributed sweep executor over a shared spool directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="run one worker over a spool")
    worker.add_argument("spool")
    worker.add_argument("--worker-id", default=None)
    worker.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL
    )
    worker.add_argument("--max-cells", type=int, default=None)
    worker.add_argument("--max-seconds", type=float, default=None)
    worker.set_defaults(func=_cmd_worker)

    coord = sub.add_parser(
        "coordinate", help="coordinate a spool to completion"
    )
    coord.add_argument("spool")
    coord.add_argument("--workers", type=int, default=0)
    coord.add_argument(
        "--collect", choices=("results", "aggregate"), default="aggregate"
    )
    coord.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL
    )
    coord.add_argument("--no-respawn", action="store_true")
    coord.add_argument("--max-seconds", type=float, default=None)
    coord.add_argument("--output", default=None)
    coord.set_defaults(func=_cmd_coordinate)

    status = sub.add_parser("status", help="print spool progress")
    status.add_argument("spool")
    status.set_defaults(func=_cmd_status)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
