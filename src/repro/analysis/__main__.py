"""CLI: ``python -m repro.analysis [paths...]``.

Runs the per-module rule set over every file, plus the whole-program
(interprocedural) rules over each *directory* argument — the project
pass needs a tree to build its call graph from, so bare file arguments
only get the per-module rules.

Exit status is 0 on a clean tree, 1 when findings remain, 2 on usage
errors, 3 when ``--budget-seconds`` is exceeded — so the command slots
directly into CI as a required gate with a wall-time assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import (
    Finding,
    all_project_rules,
    all_rules,
    analyze_paths,
    analyze_project,
)
from repro.analysis.report import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism and protocol-invariant static analyzer.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default="",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program (interprocedural) pass",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="fail (exit 3) if the full analysis takes longer than S seconds",
    )
    parser.add_argument(
        "--emit-registry",
        action="store_true",
        help="dump the cross-module emit-site registry as JSON and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    select = [r.strip() for r in args.select.split(",") if r.strip()]
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2

    if args.emit_registry:
        return _emit_registry(paths, args.output)

    # The two passes share one --select; split the ids by registry so
    # each pass only sees the rules it can run (unknown ids are a
    # usage error, reported by whichever pass validates them).
    module_ids = set(all_rules())
    project_ids = set(all_project_rules())
    unknown = [r for r in select if r not in module_ids | project_ids]
    if unknown:
        print(
            f"error: unknown rule id(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2
    module_select = [r for r in select if r in module_ids]
    project_select = [r for r in select if r in project_ids]

    started = time.monotonic()  # repro: allow[wall-clock,perf-timing] --budget-seconds times the analyzer itself
    findings: List[Finding] = []
    files_analyzed = 0
    if not select or module_select:
        module_findings, files_analyzed = analyze_paths(
            paths, select=module_select
        )
        findings.extend(module_findings)
    if not args.no_project and (not select or project_select):
        for path in paths:
            if not path.is_dir():
                continue
            project_findings, _graph = analyze_project(
                path, select=project_select
            )
            findings.extend(project_findings)
    findings.sort()
    elapsed = time.monotonic() - started  # repro: allow[wall-clock,perf-timing] --budget-seconds times the analyzer itself

    if args.format == "sarif":
        report = render_sarif(findings)
    elif args.format == "json":
        report = render_json(findings, files_analyzed)
    else:
        report = render_text(findings, files_analyzed)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)

    if args.budget_seconds and elapsed > args.budget_seconds:
        print(
            f"error: analysis took {elapsed:.2f}s, over the "
            f"{args.budget_seconds:.2f}s budget",
            file=sys.stderr,
        )
        return 3
    return 1 if findings else 0


def _emit_registry(paths: List[Path], output: str) -> int:
    """Dump every ``.emit(...)`` site with its resolved category."""
    sites = []
    for path in paths:
        if not path.is_dir():
            continue
        from repro.analysis.graph import ProjectGraph

        graph = ProjectGraph.build(path)
        for site in graph.emit_sites():
            sites.append(
                {
                    "module": site.module,
                    "path": site.rel_path,
                    "line": site.line,
                    "category": site.category,
                    "name": site.name,
                    "fields": list(site.fields),
                }
            )
    document = json.dumps({"emit_sites": sites}, indent=2, sort_keys=True)
    if output:
        Path(output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)
    return 0


if __name__ == "__main__":
    sys.exit(main())
