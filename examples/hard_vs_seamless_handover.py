#!/usr/bin/env python3
"""Handover strategies compared: multipath, migration, redundancy.

The paper's introduction notes that QUIC's connection migration is "a
form of hard handover", while multipath provides seamless ones.  This
example quantifies the worst-case request delay around a WiFi failure
(the §4.3 scenario) for four strategies:

* MPQUIC with the default scheduler (reactive, warm second path),
* MPTCP (reactive, warm second subflow),
* single-path QUIC that migrates to the other interface on failure
  (reactive, cold fallback path),
* MPQUIC with a fully redundant scheduler (proactive: every packet on
  every path).

All reactive schemes pay roughly the failure-*detection* cost — the
RTO of the request that was in flight on the dying path.  Only the
proactive scheme removes the spike, at the price of duplicated bytes.

Run:  python examples/hard_vs_seamless_handover.py
"""

from repro.experiments.runner import run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO
from repro.quic.config import QuicConfig

VARIANTS = [
    ("MPQUIC (lowest-RTT scheduler)", "mpquic", {}),
    ("MPTCP", "mptcp", {}),
    ("QUIC + connection migration", "quic",
     {"quic_config": QuicConfig(migrate_on_failure=True)}),
    ("MPQUIC (redundant scheduler)", "mpquic",
     {"quic_config": QuicConfig(scheduler="redundant")}),
]


def main() -> None:
    fail = HANDOVER_SCENARIO.failure_time
    print("Request/response over two paths; initial path dies at t=3s\n")
    print(f"{'variant':36s} {'worst delay':>12s} {'steady after':>13s}")
    for label, protocol, kwargs in VARIANTS:
        delays = run_handover(HANDOVER_SCENARIO, protocol=protocol, **kwargs)
        spike = max(d for t, d in delays if t >= fail - 0.1)
        after = min(d for t, d in delays if t > fail + 2.0)
        print(f"{label:36s} {spike * 1e3:9.0f} ms {after * 1e3:10.1f} ms")
    print(
        "\nReactive schemes pay one RTO of detection; the redundant\n"
        "scheduler answers from the surviving path as if nothing happened."
    )


if __name__ == "__main__":
    main()
