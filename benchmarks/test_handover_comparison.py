"""A4 — hard handover (QUIC migration) vs seamless multipath handover.

Extends Fig. 11: the paper argues connection migration is a *hard*
handover while multipath is seamless.  The worst-case request delay
around the failure should be clearly larger for migrating single-path
QUIC than for MPQUIC.
"""

from repro.experiments.runner import run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO
from repro.quic.config import QuicConfig

from benchmarks.common import run_once


def _spike(delays):
    fail = HANDOVER_SCENARIO.failure_time
    return max(d for t, d in delays if t >= fail - 0.1)


def test_hard_vs_seamless_handover(benchmark):
    def run():
        return {
            "mpquic": run_handover(HANDOVER_SCENARIO, protocol="mpquic"),
            "quic_migrate": run_handover(
                HANDOVER_SCENARIO, protocol="quic",
                quic_config=QuicConfig(migrate_on_failure=True),
            ),
            "mptcp": run_handover(HANDOVER_SCENARIO, protocol="mptcp"),
            "mpquic_redundant": run_handover(
                HANDOVER_SCENARIO, protocol="mpquic",
                quic_config=QuicConfig(scheduler="redundant"),
            ),
        }

    results = run_once(benchmark, run)
    for delays in results.values():
        assert len(delays) == HANDOVER_SCENARIO.total_requests
    # For request/response traffic every reactive scheme pays the same
    # failure-*detection* cost (roughly one RTO for the in-flight
    # request); migration is never cheaper than the warm multipath path.
    assert _spike(results["quic_migrate"]) >= _spike(results["mpquic"]) * 0.95
    # All reactive schemes recover within well under a second.
    assert _spike(results["mpquic"]) < 0.6
    assert _spike(results["mptcp"]) < 0.6
    assert _spike(results["quic_migrate"]) < 1.0
    # Only proactive redundancy removes the spike entirely: the copy on
    # the surviving path answers as if nothing happened.
    assert _spike(results["mpquic_redundant"]) < 0.04
