"""Sweep-engine benchmark: serial vs parallel vs warm cache.

Runs one benchmark-scale class sweep three ways — serially, through the
process pool, and from a warm result cache — asserts the three result
matrices are bit-identical, and writes a ``BENCH_sweep.json`` record
(wall times, simulator events/sec, cache hit/miss counts) that seeds
the repo's performance trajectory.  CI runs a reduced version of this
and uploads the JSON as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py \
        --scenarios 12 --jobs 4 --output BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from repro.expdesign.parameters import generate_scenarios
from repro.experiments.parallel import (
    RESULTS_FORMAT_VERSION,
    ResultCache,
    SweepStats,
    execute_cells,
    plan_class_sweep,
)


def _matrix(results) -> List[tuple]:
    return [(r.transfer_time, r.goodput_bps) for r in results]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenarios", type=int,
        default=int(os.environ.get("REPRO_SCENARIOS", "12")),
    )
    parser.add_argument(
        "--file-size", type=int,
        default=int(os.environ.get("REPRO_FILE_SIZE", "2000000")),
    )
    parser.add_argument(
        "--jobs", type=int,
        default=int(os.environ.get("REPRO_JOBS", "4")),
    )
    parser.add_argument("--env-class", default="low-bdp-no-loss")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    scenarios = generate_scenarios(
        args.env_class, args.scenarios, seed=args.seed
    )
    lossy = "no-loss" not in args.env_class
    cells = plan_class_sweep(scenarios, args.file_size, lossy)
    print(
        f"sweep: {args.env_class}, {args.scenarios} scenarios, "
        f"{args.file_size} B -> {len(cells)} cells"
    )

    # 1. Serial baseline (no cache).
    serial_stats = SweepStats()
    t0 = time.perf_counter()
    serial = execute_cells(cells, jobs=1, cache=None, stats=serial_stats)
    serial_seconds = time.perf_counter() - t0
    print(f"serial:   {serial_seconds:8.2f} s "
          f"({serial_stats.events_processed} events)")

    # 2. Parallel cold run, populating a fresh cache as it goes.
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        cache = ResultCache(tmp)
        cold_stats = SweepStats()
        t0 = time.perf_counter()
        parallel = execute_cells(
            cells, jobs=args.jobs, cache=cache, stats=cold_stats
        )
        parallel_seconds = time.perf_counter() - t0
        print(f"parallel: {parallel_seconds:8.2f} s (jobs={args.jobs}, "
              f"hits={cold_stats.cache_hits} misses={cold_stats.cache_misses})")

        # 3. Warm-cache rerun: must execute zero simulations.
        warm_stats = SweepStats()
        t0 = time.perf_counter()
        warm = execute_cells(
            cells, jobs=args.jobs, cache=cache, stats=warm_stats
        )
        warm_seconds = time.perf_counter() - t0
        print(f"warm:     {warm_seconds:8.2f} s "
              f"(hits={warm_stats.cache_hits} executed={warm_stats.executed})")

    # Equivalence gates.
    if _matrix(serial) != _matrix(parallel):
        print("FAIL: parallel results differ from serial", file=sys.stderr)
        return 1
    if _matrix(serial) != _matrix(warm):
        print("FAIL: cached results differ from serial", file=sys.stderr)
        return 1
    if warm_stats.executed != 0:
        print(
            f"FAIL: warm-cache rerun executed {warm_stats.executed} runs",
            file=sys.stderr,
        )
        return 1
    print("equivalence: serial == parallel == warm-cache OK")

    cores = os.cpu_count() or 1
    record = {
        "benchmark": "sweep_engine",
        "results_format_version": RESULTS_FORMAT_VERSION,
        "host": {
            "cpu_count": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "env_class": args.env_class,
            "scenarios": args.scenarios,
            "file_size": args.file_size,
            "seed": args.seed,
            "cells": len(cells),
            "jobs": args.jobs,
        },
        "serial": {
            "wall_seconds": round(serial_seconds, 3),
            "sim_events": serial_stats.events_processed,
            "events_per_second": round(
                serial_stats.events_processed / serial_seconds
            ) if serial_seconds > 0 else None,
        },
        "parallel": {
            "wall_seconds": round(parallel_seconds, 3),
            # On a 1-core host "speedup" would only measure process-pool
            # overhead (historically recorded as a misleading 0.89x), so
            # the comparison is skipped, not published.
            "speedup_vs_serial": (
                round(serial_seconds / parallel_seconds, 2)
                if parallel_seconds > 0 and cores > 1 else None
            ),
            "cache_hits": cold_stats.cache_hits,
            "cache_misses": cold_stats.cache_misses,
            "runs_executed": cold_stats.executed,
        },
        "warm_cache": {
            "wall_seconds": round(warm_seconds, 3),
            "cache_hits": warm_stats.cache_hits,
            "cache_misses": warm_stats.cache_misses,
            "runs_executed": warm_stats.executed,
        },
        "identical_matrices": True,
    }
    if cores == 1:
        record["parallel"]["speedup_skipped_reason"] = (
            "single-core host: parallel wall time measures process-pool "
            "overhead, not parallelism; speedup_vs_serial withheld"
        )
    if cores < args.jobs:
        record["note"] = (
            f"host has {cores} core(s) < jobs={args.jobs}; parallel wall "
            "time reflects pool overhead, not achievable speedup"
        )
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
