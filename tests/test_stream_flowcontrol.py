"""Tests for stream send/receive state and flow-control windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic.flowcontrol import FlowControlError, ReceiveWindow, SendWindow
from repro.quic.frames import StreamFrame
from repro.quic.stream import RecvStream, SendStream


class TestSendStream:
    def test_produces_frames_in_order(self):
        s = SendStream(1)
        s.write(b"abcdef", fin=True)
        f1, new1 = s.next_frame(max_bytes=4, flow_budget=100)
        f2, new2 = s.next_frame(max_bytes=4, flow_budget=100)
        assert (f1.offset, f1.data, f1.fin) == (0, b"abcd", False)
        assert (f2.offset, f2.data, f2.fin) == (4, b"ef", True)
        assert new1 == 4 and new2 == 2

    def test_flow_budget_limits_new_data(self):
        s = SendStream(1)
        s.write(b"abcdef")
        frame, new = s.next_frame(max_bytes=100, flow_budget=3)
        assert frame.data == b"abc"
        assert not s.has_data_to_send(flow_budget=0)

    def test_retransmission_priority_and_no_budget(self):
        s = SendStream(1)
        s.write(b"abcdef")
        frame, _ = s.next_frame(100, 100)
        s.on_frame_lost(frame)
        assert s.has_data_to_send(flow_budget=0)  # retransmits bypass budget
        retx, new = s.next_frame(100, 0)
        assert retx.data == b"abcdef"
        assert new == 0

    def test_lost_then_acked_not_retransmitted(self):
        s = SendStream(1)
        s.write(b"abcdef")
        frame, _ = s.next_frame(100, 100)
        s.on_frame_acked(frame)  # e.g. the duplicate copy arrived first
        s.on_frame_lost(frame)
        assert not s.has_data_to_send(flow_budget=100)

    def test_partial_ack_partial_retransmit(self):
        s = SendStream(1)
        s.write(b"abcdef")
        f1, _ = s.next_frame(3, 100)  # abc
        f2, _ = s.next_frame(3, 100)  # def
        s.on_frame_acked(f2)
        s.on_frame_lost(f1)
        retx, _ = s.next_frame(100, 100)
        assert (retx.offset, retx.data) == (0, b"abc")

    def test_all_acked_requires_fin(self):
        s = SendStream(1)
        s.write(b"ab", fin=True)
        frame, _ = s.next_frame(100, 100)
        assert not s.all_acked
        s.on_frame_acked(frame)
        assert s.all_acked

    def test_lost_fin_resent(self):
        s = SendStream(1)
        s.write(b"ab", fin=True)
        frame, _ = s.next_frame(100, 100)
        s.on_frame_lost(frame)
        retx, _ = s.next_frame(100, 100)
        assert retx.fin

    def test_empty_fin_frame(self):
        s = SendStream(1)
        s.write(b"ab")
        s.next_frame(100, 100)
        s.write(b"", fin=True)
        frame, new = s.next_frame(100, 100)
        assert frame.fin and frame.data == b"" and new == 0

    def test_write_after_fin_rejected(self):
        s = SendStream(1)
        s.write(b"x", fin=True)
        with pytest.raises(ValueError):
            s.write(b"y")

    @given(st.binary(min_size=1, max_size=500), st.integers(1, 50))
    @settings(max_examples=50)
    def test_fragmentation_preserves_content(self, payload, chunk):
        s = SendStream(1)
        s.write(payload, fin=True)
        out = bytearray(len(payload))
        fin_seen = False
        while True:
            result = s.next_frame(chunk, 10**9)
            if result is None:
                break
            frame, _ = result
            out[frame.offset:frame.offset + len(frame.data)] = frame.data
            fin_seen = fin_seen or frame.fin
        assert bytes(out) == payload
        assert fin_seen


class TestRecvStream:
    def test_in_order_delivery_and_completion(self):
        r = RecvStream(1)
        ready = r.on_frame(StreamFrame(1, 0, b"abc", False))
        assert ready == b"abc"
        ready = r.on_frame(StreamFrame(1, 3, b"def", True))
        assert ready == b"def"
        assert r.is_complete

    def test_out_of_order_buffered(self):
        r = RecvStream(1)
        assert r.on_frame(StreamFrame(1, 3, b"def", True)) == b""
        assert r.on_frame(StreamFrame(1, 0, b"abc", False)) == b"abcdef"

    def test_highest_offset(self):
        r = RecvStream(1)
        r.on_frame(StreamFrame(1, 10, b"xy", False))
        assert r.highest_offset == 12


class TestReceiveWindow:
    def test_limit_enforced(self):
        w = ReceiveWindow(initial_window=100, max_window=1000)
        w.on_data_received(100)
        with pytest.raises(FlowControlError):
            w.on_data_received(101)

    def test_update_when_half_consumed(self):
        w = ReceiveWindow(initial_window=100, max_window=1000, autotune=False)
        w.on_data_received(60)
        w.on_data_consumed(60)
        new_limit = w.maybe_update(now=1.0, smoothed_rtt=0.1)
        assert new_limit == 160

    def test_no_update_before_half(self):
        w = ReceiveWindow(initial_window=100, max_window=1000)
        w.on_data_consumed(10)
        assert w.maybe_update(1.0, 0.1) is None

    def test_autotune_doubles_under_fast_updates(self):
        w = ReceiveWindow(initial_window=100, max_window=1000, autotune=True)
        w.on_data_consumed(60)
        assert w.maybe_update(now=1.0, smoothed_rtt=0.1) == 160
        w.on_data_consumed(60)
        # Second update well within 2 RTT: window doubles to 200.
        assert w.maybe_update(now=1.05, smoothed_rtt=0.1) == 120 + 200

    def test_autotune_capped_at_max(self):
        w = ReceiveWindow(initial_window=600, max_window=1000, autotune=True)
        now = 0.0
        for i in range(5):
            w.on_data_consumed(600)
            now += 0.01
            w.maybe_update(now, smoothed_rtt=0.5)
        assert w.window_size == 1000

    def test_no_autotune_with_slow_updates(self):
        w = ReceiveWindow(initial_window=100, max_window=1000, autotune=True)
        w.on_data_consumed(60)
        w.maybe_update(now=1.0, smoothed_rtt=0.01)
        w.on_data_consumed(60)
        w.maybe_update(now=2.0, smoothed_rtt=0.01)  # far beyond 2 RTT
        assert w.window_size == 100


class TestSendWindow:
    def test_consume_and_available(self):
        w = SendWindow(100)
        assert w.available == 100
        w.consume(40)
        assert w.available == 60

    def test_over_consume_rejected(self):
        w = SendWindow(10)
        with pytest.raises(FlowControlError):
            w.consume(11)

    def test_stale_update_ignored(self):
        w = SendWindow(100)
        assert w.update_limit(200)
        assert not w.update_limit(150)
        assert w.limit == 200
