"""OLIA — Opportunistic Linked-Increases Algorithm (Khalili et al. 2012).

The coupled multipath congestion controller the paper uses for both
MPTCP and MPQUIC.  Window increases on each path are linked through the
sum of ``w_p / rtt_p`` over all paths, plus a correction term ``alpha``
that shifts traffic from "maximum-window" paths towards "best" paths
(those with the highest ``l_p^2 / rtt_p``, where ``l_p`` estimates bytes
delivered between losses).

The coordinator owns per-path :class:`OliaPath` controllers; paths are
registered as the transport opens them, matching the dynamic path
creation of MPQUIC/MPTCP.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cc.base import CcState, CongestionController, MIN_WINDOW_SEGMENTS


class OliaPath(CongestionController):
    """Per-path state of OLIA.  Driven by its :class:`OliaCoordinator`."""

    BETA = 0.5

    def __init__(self, coordinator: "OliaCoordinator", path_id: int, mss: int) -> None:
        super().__init__(mss=mss)
        self._coordinator = coordinator
        self.path_id = path_id
        self.smoothed_rtt: float = 0.0
        # Inter-loss delivered-byte estimators (l1: since last loss,
        # l2: between the previous two losses).
        self._bytes_since_loss = 0.0
        self._bytes_between_last_losses = 0.0

    # -- CongestionController API ------------------------------------------

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        self.smoothed_rtt = rtt if self.smoothed_rtt <= 0.0 else (
            0.875 * self.smoothed_rtt + 0.125 * rtt
        )
        self._bytes_since_loss += acked_bytes
        if self.state is CcState.RECOVERY:
            return
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            if self.cwnd_bytes >= self.ssthresh_bytes:
                self.state = CcState.CONGESTION_AVOIDANCE
            return
        self.state = CcState.CONGESTION_AVOIDANCE
        self.cwnd_bytes += self._coordinator.increase_for(self, acked_bytes)

    def _reduce_on_loss(self, now: float) -> None:
        self._bytes_between_last_losses = self._bytes_since_loss
        self._bytes_since_loss = 0.0
        self.ssthresh_bytes = max(
            self.cwnd_bytes * self.BETA, MIN_WINDOW_SEGMENTS * self.mss
        )
        self.cwnd_bytes = self.ssthresh_bytes

    def _on_rto_extra(self, now: float) -> None:
        self._bytes_between_last_losses = self._bytes_since_loss
        self._bytes_since_loss = 0.0

    # -- OLIA quantities ------------------------------------------------------

    @property
    def inter_loss_bytes(self) -> float:
        """``l_p``: smoothed estimate of bytes delivered between losses."""
        return max(self._bytes_since_loss, self._bytes_between_last_losses)

    @property
    def rtt_for_coupling(self) -> float:
        """RTT used in the coupling terms (guarded against zero)."""
        return max(self.smoothed_rtt, 1e-3)


class OliaCoordinator:
    """Couples window growth across the paths of one connection."""

    def __init__(self, mss: int = 1400) -> None:
        self.mss = mss
        self._paths: Dict[int, OliaPath] = {}

    def path_controller(self, path_id: int) -> OliaPath:
        """Create (or fetch) the controller for a path."""
        if path_id not in self._paths:
            self._paths[path_id] = OliaPath(self, path_id, self.mss)
        return self._paths[path_id]

    def remove_path(self, path_id: int) -> None:
        """Forget a closed path."""
        self._paths.pop(path_id, None)

    @property
    def paths(self) -> List[OliaPath]:
        return list(self._paths.values())

    def increase_for(self, path: OliaPath, acked_bytes: int) -> float:
        """Congestion-avoidance increase (bytes) for an ACK on ``path``.

        Implements, per acked MSS::

            dw_r = ( (w_r/rtt_r^2) / (sum_p w_p/rtt_p)^2  +  alpha_r/w_r ) * MSS

        with windows expressed in MSS units.
        """
        active = [p for p in self._paths.values() if p.cwnd_bytes > 0]
        if not active:
            return 0.0
        w_r = path.cwnd_bytes / self.mss
        rtt_r = path.rtt_for_coupling
        denom = sum(
            (p.cwnd_bytes / self.mss) / p.rtt_for_coupling for p in active
        )
        if denom <= 0.0:
            return 0.0
        coupled = (w_r / (rtt_r * rtt_r)) / (denom * denom)
        alpha = self._alpha(path, active)
        acked_segments = acked_bytes / self.mss
        delta_segments = (coupled + (alpha / w_r if w_r > 0 else 0.0)) * acked_segments
        # Never shrink below the floor through negative alphas.
        new_cwnd = path.cwnd_bytes + delta_segments * self.mss
        floor = MIN_WINDOW_SEGMENTS * self.mss
        if new_cwnd < floor:
            return floor - path.cwnd_bytes
        return delta_segments * self.mss

    def _alpha(self, path: OliaPath, active: List[OliaPath]) -> float:
        """OLIA's traffic-shifting term.

        * ``collected``: best paths (max ``l_p^2 / rtt_p``) that do NOT
          have the maximum window — they receive extra increase.
        * ``max_w``: paths with the maximum window — they are dampened
          whenever some best path is under-used.
        """
        n = len(active)
        if n <= 1:
            return 0.0
        max_cwnd = max(p.cwnd_bytes for p in active)
        max_w_paths = [p for p in active if p.cwnd_bytes >= max_cwnd - 1e-9]
        best_metric = max(
            (p.inter_loss_bytes ** 2) / p.rtt_for_coupling for p in active
        )
        best_paths = [
            p
            for p in active
            if (p.inter_loss_bytes ** 2) / p.rtt_for_coupling >= best_metric - 1e-9
        ]
        max_ids = {p.path_id for p in max_w_paths}
        collected = [p for p in best_paths if p.path_id not in max_ids]
        if not collected:
            return 0.0
        if any(p.path_id == path.path_id for p in collected):
            return 1.0 / (n * len(collected))
        if path.path_id in max_ids:
            return -1.0 / (n * len(max_w_paths))
        return 0.0
