"""Wire-format tests: varints, frame and packet codecs.

The key invariant: ``wire_size()`` must equal the length of the actual
encoding, so the simulator's bandwidth accounting is honest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic import wire
from repro.quic.frames import (
    AckFrame,
    AddAddressFrame,
    ConnectionCloseFrame,
    HandshakeFrame,
    MAX_ACK_RANGES,
    PathChallengeFrame,
    PathInfo,
    PathResponseFrame,
    PathsFrame,
    PingFrame,
    StreamFrame,
    WindowUpdateFrame,
)
from repro.quic.packet import Packet


class TestVarint:
    @pytest.mark.parametrize(
        "value,size",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), (2**30 - 1, 4),
         (2**30, 8), (2**62 - 1, 8)],
    )
    def test_sizes(self, value, size):
        assert wire.varint_size(value) == size
        assert len(wire.encode_varint(value)) == size

    @given(st.integers(min_value=0, max_value=2**62 - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        buf = wire.encode_varint(value)
        decoded, pos = wire.decode_varint(buf, 0)
        assert decoded == value
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire.varint_size(-1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            wire.varint_size(2**62)


FRAME_EXAMPLES = [
    StreamFrame(stream_id=1, offset=0, data=b"hello", fin=False),
    StreamFrame(stream_id=5, offset=123456, data=b"", fin=True),
    StreamFrame(stream_id=2**20, offset=2**35, data=b"x" * 1000, fin=True),
    AckFrame(path_id=0, largest_acked=10, ack_delay=0.0008,
             ranges=((8, 11), (0, 5))),
    AckFrame(path_id=3, largest_acked=2**30, ack_delay=0.02,
             ranges=((2**30, 2**30 + 1),)),
    WindowUpdateFrame(stream_id=0, byte_offset=16 * 1024 * 1024),
    WindowUpdateFrame(stream_id=7, byte_offset=2**40),
    PingFrame(),
    HandshakeFrame("CHLO", 730),
    HandshakeFrame("SHLO", 100),
    ConnectionCloseFrame(error_code=7, reason="bye"),
    PathChallengeFrame(data=b"\x43\x01\x00\x00\x00\x00\x00\x2a"),
    PathResponseFrame(data=b"\x53\x01\x00\x00\x00\x00\x00\x2a"),
    AddAddressFrame("10.1.0.2"),
    PathsFrame(active=(PathInfo(0, 25000), PathInfo(1, 48000)), failed=(2,)),
    PathsFrame(active=(), failed=()),
]


class TestFrameCodec:
    @pytest.mark.parametrize("frame", FRAME_EXAMPLES, ids=lambda f: type(f).__name__)
    def test_roundtrip(self, frame):
        buf = wire.encode_frame(frame)
        decoded, pos = wire.decode_frame(buf, 0)
        assert pos == len(buf)
        if isinstance(frame, AckFrame):
            # Ack delay is quantised on the wire (3-bit shift of us).
            assert decoded.path_id == frame.path_id
            assert decoded.largest_acked == frame.largest_acked
            assert decoded.ranges == frame.ranges
            assert decoded.ack_delay == pytest.approx(frame.ack_delay, abs=1e-5)
        else:
            assert decoded == frame

    @pytest.mark.parametrize("frame", FRAME_EXAMPLES, ids=lambda f: type(f).__name__)
    def test_wire_size_matches_encoding(self, frame):
        assert frame.wire_size() == len(wire.encode_frame(frame))

    def test_ack_range_cap_enforced(self):
        ranges = tuple((i * 3, i * 3 + 1) for i in range(MAX_ACK_RANGES + 1))
        with pytest.raises(ValueError):
            AckFrame(path_id=0, largest_acked=10**6, ack_delay=0.0, ranges=ranges)

    def test_ack_at_cap_allowed(self):
        ranges = tuple(
            (i * 3, i * 3 + 1) for i in range(MAX_ACK_RANGES - 1, -1, -1)
        )
        frame = AckFrame(0, ranges[0][1] - 1, 0.0, ranges)
        assert frame.acked_packet_count() == MAX_ACK_RANGES

    @given(
        st.integers(0, 2**30),
        st.integers(0, 2**40),
        st.binary(max_size=1200),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_stream_frame_roundtrip_property(self, sid, offset, data, fin):
        frame = StreamFrame(sid, offset, data, fin)
        decoded, _ = wire.decode_frame(wire.encode_frame(frame), 0)
        assert decoded == frame
        assert frame.wire_size() == len(wire.encode_frame(frame))


class TestPacketCodec:
    def test_roundtrip_singlepath(self):
        pkt = Packet(
            path_id=0, packet_number=42,
            frames=(StreamFrame(1, 0, b"data", True),),
            connection_id=0xDEADBEEF, multipath=False,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded == pkt

    def test_roundtrip_multipath_path_id(self):
        pkt = Packet(
            path_id=3, packet_number=7,
            frames=(PingFrame(), WindowUpdateFrame(0, 1000)),
            connection_id=1, multipath=True,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded.path_id == 3
        assert decoded == pkt

    def test_singlepath_header_has_no_path_byte(self):
        single = Packet(0, 1, (PingFrame(),), multipath=False)
        multi = Packet(0, 1, (PingFrame(),), multipath=True)
        assert multi.wire_size == single.wire_size + 1

    def test_wire_size_matches_encoding(self):
        pkt = Packet(
            path_id=1, packet_number=99,
            frames=(
                AckFrame(1, 50, 0.001, ((40, 51), (0, 30))),
                StreamFrame(3, 1000, b"y" * 500, False),
            ),
            multipath=True,
        )
        assert pkt.wire_size == len(pkt.encode())

    def test_ack_eliciting(self):
        ack_only = Packet(0, 1, (AckFrame(0, 1, 0.0, ((0, 2),)),))
        data = Packet(0, 2, (StreamFrame(1, 0, b"x", False),))
        assert not ack_only.is_ack_eliciting
        assert data.is_ack_eliciting

    def test_multiframe_roundtrip_with_handshake(self):
        pkt = Packet(
            path_id=0, packet_number=0,
            frames=(HandshakeFrame("CHLO", 730), PingFrame()),
            multipath=False,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded == pkt

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_frame(b"\x7e", 0)


# ----------------------------------------------------------------------
# Property-based corpus: random frames/packets, truncation, corruption
# ----------------------------------------------------------------------

def _ints_to_ack_ranges(values):
    """Disjoint descending [start, stop) ranges from a set of ints."""
    ranges = []
    for v in sorted(set(values)):
        if ranges and ranges[-1][1] == v:
            ranges[-1] = (ranges[-1][0], v + 1)
        else:
            ranges.append((v, v + 1))
    ranges.reverse()
    return tuple(ranges[:MAX_ACK_RANGES])


#: Ack delays exactly representable on the wire (16-bit, 3-bit shift of
#: microseconds), so decoded frames compare equal to the originals.
wire_exact_ack_delays = st.integers(0, 0xFFFF).map(lambda r: (r << 3) / 1e6)

stream_frames = st.builds(
    StreamFrame,
    stream_id=st.integers(0, 2**30),
    offset=st.integers(0, 2**40),
    data=st.binary(max_size=1400),
    fin=st.booleans(),
)
ack_frames = st.builds(
    lambda values, path_id, delay: AckFrame(
        path_id=path_id,
        largest_acked=max(values),
        ack_delay=delay,
        ranges=_ints_to_ack_ranges(values),
    ),
    values=st.lists(st.integers(0, 10_000), min_size=1, max_size=64),
    path_id=st.integers(0, 255),
    delay=wire_exact_ack_delays,
)
window_update_frames = st.builds(
    WindowUpdateFrame,
    stream_id=st.integers(0, 2**30),
    byte_offset=st.integers(0, 2**63),
)
close_frames = st.builds(
    ConnectionCloseFrame,
    error_code=st.integers(0, 2**32 - 1),
    reason=st.text(max_size=100),
)
add_address_frames = st.builds(
    AddAddressFrame,
    address=st.text(max_size=40).filter(lambda s: len(s.encode()) <= 255),
)
paths_frames = st.builds(
    PathsFrame,
    active=st.lists(
        st.builds(
            PathInfo,
            path_id=st.integers(0, 255),
            rtt_us=st.integers(0, 2**32 - 1),
        ),
        max_size=8,
    ).map(tuple),
    failed=st.lists(st.integers(0, 255), max_size=8).map(tuple),
)
ping_frames = st.just(PingFrame())
handshake_frames = st.builds(
    HandshakeFrame,
    kind=st.sampled_from(["CHLO", "SHLO"]),
    length=st.integers(0, 1200),
)

#: Frames whose encodings are self-delimiting (every strict prefix of
#: an encoding is invalid).  HandshakeFrame is excluded: its payload
#: length is implicit (zero padding), so truncation yields a shorter
#: but well-formed frame by design.
self_delimiting_frames = st.one_of(
    stream_frames, ack_frames, window_update_frames, close_frames,
    add_address_frames, paths_frames, ping_frames,
)
all_frames = st.one_of(self_delimiting_frames, handshake_frames)

packets = st.builds(
    lambda cid, pn, path_id, multipath, frames: Packet(
        path_id=path_id if multipath else 0,
        packet_number=pn,
        frames=tuple(frames),
        connection_id=cid,
        multipath=multipath,
    ),
    cid=st.integers(0, 2**64 - 1),
    pn=st.integers(0, 2**32 - 1),
    path_id=st.integers(0, 255),
    multipath=st.booleans(),
    frames=st.lists(self_delimiting_frames, max_size=4),
)


class TestFrameProperties:
    @given(all_frames)
    @settings(max_examples=300, derandomize=True)
    def test_roundtrip_and_size(self, frame):
        buf = wire.encode_frame(frame)
        decoded, pos = wire.decode_frame(buf, 0)
        assert pos == len(buf)
        assert decoded == frame
        assert frame.wire_size() == len(buf)

    @given(self_delimiting_frames, st.data())
    @settings(max_examples=300, derandomize=True)
    def test_any_truncation_raises_cleanly(self, frame, data):
        buf = wire.encode_frame(frame)
        cut = data.draw(st.integers(0, len(buf) - 1))
        with pytest.raises(wire.WireFormatError):
            wire.decode_frame(buf[:cut], 0)

    @given(all_frames, st.data())
    @settings(max_examples=300, derandomize=True)
    def test_single_byte_corruption_never_escapes_valueerror(self, frame, data):
        buf = bytearray(wire.encode_frame(frame))
        idx = data.draw(st.integers(0, len(buf) - 1))
        buf[idx] ^= data.draw(st.integers(1, 255))
        try:
            decoded, pos = wire.decode_frame(bytes(buf), 0)
        except ValueError:
            return  # clean rejection (WireFormatError or subclass use)
        # A successful parse must stay within the buffer.
        assert 0 < pos <= len(buf)
        assert decoded is not None


class TestPacketProperties:
    @given(packets)
    @settings(max_examples=200, derandomize=True)
    def test_roundtrip_and_size(self, pkt):
        buf = wire.encode_packet(pkt)
        assert pkt.wire_size == len(buf)
        assert wire.decode_packet(buf) == pkt

    @given(packets, st.data())
    @settings(max_examples=200, derandomize=True)
    def test_truncation_raises_or_yields_frame_prefix(self, pkt, data):
        buf = wire.encode_packet(pkt)
        cut = data.draw(st.integers(0, len(buf) - 1))
        try:
            decoded = wire.decode_packet(buf[:cut])
        except wire.WireFormatError:
            return
        # Truncation at a frame boundary is indistinguishable from a
        # shorter packet — but then the frames must be a strict prefix
        # of the original's, never a mis-parse.
        n = len(decoded.frames)
        assert n < len(pkt.frames) or cut >= len(buf) - 0
        assert decoded.frames == pkt.frames[:n]

    def test_empty_buffer_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode_packet(b"")

    def test_header_only_truncations_rejected(self):
        pkt = Packet(0, 1, (PingFrame(),), connection_id=5, multipath=True)
        buf = wire.encode_packet(pkt)
        header = wire.public_header_size(multipath=True)
        for cut in range(header):
            with pytest.raises(wire.WireFormatError):
                wire.decode_packet(buf[:cut])
