"""The Multipath QUIC connection.

Subclasses :class:`repro.quic.QuicConnection`, adding the mechanisms of
paper §3: a packet scheduler across per-path packet-number spaces, a
path manager that opens paths right after the handshake, duplication
of traffic onto RTT-unknown paths, OLIA coupled congestion control,
and PATHS frames for failure signalling (§4.3's fast handover).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cc import OliaCoordinator, make_controller
from repro.cc.base import CongestionController
from repro.core.path_manager import PathManager
from repro.core.scheduler import Scheduler, make_scheduler
from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import PathState, QuicConnection
from repro.quic.frames import PathInfo, PathsFrame, StreamFrame
from repro.quic.packet import Packet


class MultipathQuicConnection(QuicConnection):
    """One endpoint of an MPQUIC connection."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        role: str,
        config: Optional[QuicConfig] = None,
        trace: Optional[PacketTrace] = None,
        connection_id: int = 0x1234,
    ) -> None:
        config = config or QuicConfig()
        config.enable_multipath = True
        self._olia: Optional[OliaCoordinator] = (
            OliaCoordinator(mss=config.mss)
            if config.multipath_cc == "olia"
            else None
        )
        super().__init__(sim, host, role, config, trace, connection_id)
        self.scheduler: Scheduler = make_scheduler(config.scheduler)
        self.path_manager = PathManager(self)
        #: The peer's latest view of its paths (from PATHS frames):
        #: path id -> RTT in seconds.
        self.remote_path_info: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Congestion control: coupled OLIA across paths
    # ------------------------------------------------------------------

    def _make_cc(self, path_id: int) -> CongestionController:
        if self._olia is not None:
            return self._olia.path_controller(path_id)
        return make_controller(self.config.multipath_cc, mss=self.config.mss)

    # ------------------------------------------------------------------
    # Path management
    # ------------------------------------------------------------------

    def open_path(self, interface_index: int) -> PathState:
        """Open a new path over a local interface (client side).

        The path is usable for data immediately (no handshake).  A PING
        goes out right away so the peer learns the path and an RTT
        sample arrives quickly; pending data does not wait for it —
        the scheduler duplicates data onto the path in the meantime.
        """
        path_id = self.path_manager.next_path_id()
        path = self._create_path(path_id, interface_index)
        from repro.quic.frames import PingFrame

        self._queue_control(path_id, PingFrame())
        self._send_pending()
        return path

    def _handshake_complete(self) -> None:
        self.path_manager.on_handshake_complete()
        if self.config.paths_frame_interval > 0:
            self.sim.schedule(
                self.config.paths_frame_interval, self._on_paths_interval
            )
        super()._handshake_complete()

    def _on_paths_interval(self) -> None:
        if self.closed:
            return
        self.send_paths_frame()
        self.sim.schedule(self.config.paths_frame_interval, self._on_paths_interval)

    def _on_paths_frame(self, frame: PathsFrame, path: PathState) -> None:
        super()._on_paths_frame(frame, path)
        for info in frame.active:
            self.remote_path_info[info.path_id] = info.rtt_us / 1e6

    # ------------------------------------------------------------------
    # Scheduling and duplication
    # ------------------------------------------------------------------

    def _select_data_path(self) -> Optional[PathState]:
        return self.scheduler.choose(self._usable_paths())

    def _after_data_packet_sent(self, path: PathState, packet: Packet, new_bytes: int) -> None:
        """Duplicate stream data onto RTT-unknown paths (paper §3).

        "Our scheduler duplicates the traffic over another path when
        the path's characteristics are still unknown.  While this
        induces some overhead, it enables faster usage of additional
        paths without facing head-of-line issues."
        """
        duplicate_everywhere = self.scheduler.duplicate_everywhere
        if not self.config.duplicate_on_unknown_rtt and not duplicate_everywhere:
            return
        # Filter paths first and extract the stream frames lazily: in
        # steady state every path has an RTT estimate, so this runs as
        # a cheap scan with no tuple built per data packet.
        stream_frames: Optional[Tuple[StreamFrame, ...]] = None
        for other in self._usable_paths():
            if other.path_id == path.path_id:
                continue
            if other.rtt_known and not duplicate_everywhere:
                continue
            if not other.can_send_data():
                continue
            if stream_frames is None:
                stream_frames = tuple(
                    f for f in packet.frames if isinstance(f, StreamFrame) and f.data
                )
                if not stream_frames:
                    return
            dup = self._send_packet(other, stream_frames)
            other.duplicated_packets += 1
            self.stats.packets_duplicated += 1
            if self.trace is not None:
                self.trace.log(
                    self.sim.now, self.host.name, "dup",
                    other.path_id, dup.packet_number, dup.wire_size,
                )

    # ------------------------------------------------------------------
    # Failure signalling (fast handover, paper §4.3)
    # ------------------------------------------------------------------

    def _on_path_potentially_failed(self, path: PathState) -> None:
        """Tell the peer via a PATHS frame that this path looks dead.

        Sent on the remaining usable paths so the peer can stop
        answering on the broken one without waiting for its own RTO.
        """
        frame = self._build_paths_frame(failed=(path.path_id,))
        for other in self._usable_paths():
            if other.path_id != path.path_id:
                self._queue_control(other.path_id, frame)

    def _on_path_abandoned(self, path: PathState) -> None:
        """Release the retired path's coupled-CC and manager state.

        OLIA's epsilon computation iterates over its registered paths;
        dropping the abandoned one keeps the surviving paths' increase
        terms from being diluted by a window that will never move
        again.
        """
        if self._olia is not None:
            self._olia.remove_path(path.path_id)
        self.path_manager.on_path_abandoned(path.path_id)

    def _build_paths_frame(self, failed: Tuple[int, ...] = ()) -> PathsFrame:
        active = tuple(
            PathInfo(p.path_id, int(p.rtt.smoothed * 1e6))
            for p in self._active_paths()
            if p.rtt_known and not p.potentially_failed
        )
        return PathsFrame(active=active, failed=failed)

    def send_paths_frame(self) -> None:
        """Proactively share path statistics with the peer."""
        frame = self._build_paths_frame()
        target = self._first_usable_path()
        if target is not None:
            self._queue_control(target.path_id, frame)
            self._send_pending()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path_count(self) -> int:
        return len(self.paths)

    def bytes_sent_per_path(self) -> Dict[int, int]:
        return {pid: p.bytes_sent for pid, p in self.paths.items()}

    def packets_lost_per_path(self) -> Dict[int, int]:
        return {pid: p.recovery.packets_lost_total for pid, p in self.paths.items()}

    def retransmitted_bytes_per_path(self) -> Dict[int, int]:
        return {pid: p.stream_bytes_retransmitted for pid, p in self.paths.items()}

    def duplicated_packets_per_path(self) -> Dict[int, int]:
        return {pid: p.duplicated_packets for pid, p in self.paths.items()}
