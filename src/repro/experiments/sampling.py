"""Time-series sampling of connection state during a simulation.

The paper's analysis reasons about congestion-window evolution,
per-path traffic split and goodput over time; this module records those
series so examples and tests can assert on dynamics rather than just
end-to-end totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.netsim.engine import Simulator


@dataclass
class Sample:
    """One snapshot of a connection's state."""

    time: float
    stream_bytes_received: int
    stream_bytes_sent: int
    per_path_cwnd: Dict[int, float]
    per_path_bytes_sent: Dict[int, int]
    per_path_srtt: Dict[int, float]


class ConnectionSampler:
    """Periodically snapshots a (MP)QUIC connection.

    Works for single- and multipath QUIC connections (anything with
    ``paths`` and ``stats``); see :class:`MptcpSampler` for the TCP
    family.
    """

    def __init__(
        self,
        sim: Simulator,
        connection: Any,
        interval: float = 0.1,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.sim = sim
        self.connection = connection
        self.interval = interval
        self.stop_when = stop_when
        self.samples: List[Sample] = []

    def start(self) -> None:
        self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        conn = self.connection
        self.samples.append(
            Sample(
                time=self.sim.now,
                stream_bytes_received=conn.stats.stream_bytes_received,
                stream_bytes_sent=conn.stats.stream_bytes_sent,
                per_path_cwnd={
                    pid: p.cc.cwnd_bytes for pid, p in conn.paths.items()
                },
                per_path_bytes_sent={
                    pid: p.bytes_sent for pid, p in conn.paths.items()
                },
                per_path_srtt={
                    pid: p.rtt.smoothed for pid, p in conn.paths.items()
                },
            )
        )
        if self.stop_when is None or not self.stop_when():
            self.sim.schedule(self.interval, self._tick)

    def goodput_series(self, direction: str = "recv") -> List[tuple]:
        """``(time, bits/s)`` pairs of goodput per interval.

        ``direction`` is ``"recv"`` (bytes delivered to this endpoint's
        application) or ``"sent"`` (new stream bytes this endpoint sent).
        """
        out = []
        prev_bytes = 0
        prev_time = 0.0
        for sample in self.samples:
            value = (
                sample.stream_bytes_received
                if direction == "recv"
                else sample.stream_bytes_sent
            )
            dt = sample.time - prev_time
            if dt > 0:
                out.append((sample.time, (value - prev_bytes) * 8.0 / dt))
            prev_bytes = value
            prev_time = sample.time
        return out

    def cwnd_series(self, path_id: int) -> List[tuple]:
        """``(time, cwnd bytes)`` pairs for one path."""
        return [
            (s.time, s.per_path_cwnd[path_id])
            for s in self.samples
            if path_id in s.per_path_cwnd
        ]

    def path_split(self) -> Dict[int, float]:
        """Final fraction of bytes each path carried."""
        if not self.samples:
            return {}
        last = self.samples[-1].per_path_bytes_sent
        total = sum(last.values()) or 1
        return {pid: b / total for pid, b in last.items()}


class MptcpSampler:
    """Periodic snapshots of an MPTCP connection's subflows."""

    def __init__(self, sim: Simulator, connection: Any, interval: float = 0.1) -> None:
        self.sim = sim
        self.connection = connection
        self.interval = interval
        self.samples: List[Dict] = []

    def start(self) -> None:
        self.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        conn = self.connection
        self.samples.append(
            {
                "time": self.sim.now,
                "app_bytes": conn.app_bytes_received,
                "cwnd": {
                    i: f.cc.cwnd_bytes for i, f in conn.subflows.items()
                },
                "outstanding": {
                    i: f.bytes_outstanding for i, f in conn.subflows.items()
                },
            }
        )
        self.sim.schedule(self.interval, self._tick)
