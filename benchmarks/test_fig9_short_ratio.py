"""E7 / Fig. 9 — GET 256 KB, low-BDP-no-loss: time-ratio CDFs.

Paper shape: for short transfers QUIC clearly beats HTTPS/TCP because
its secure handshake costs 1 RTT instead of 3 (TCP 3WHS + TLS 1.2).
"""

from repro.experiments.figures import fig9
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def test_fig9_short_transfers(benchmark):
    series = run_once(benchmark, lambda: fig9(BENCH_CONFIG))
    tcp_quic = series["tcp/quic"]
    assert median(tcp_quic) > 1.1
    assert fraction_greater_than(tcp_quic, 1.0) >= 0.8
