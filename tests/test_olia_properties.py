"""Property-based tests of OLIA's design goals (Khalili et al. 2012)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import OliaCoordinator
from repro.cc.base import MIN_WINDOW_SEGMENTS

MSS = 1400


def make_paths(coord, windows_and_rtts):
    paths = []
    for i, (w, rtt) in enumerate(windows_and_rtts):
        p = coord.path_controller(i)
        p.cwnd_bytes = w * MSS
        p.ssthresh_bytes = p.cwnd_bytes  # congestion avoidance
        p.smoothed_rtt = rtt
        paths.append(p)
    return paths


path_params = st.lists(
    st.tuples(st.integers(2, 200), st.floats(0.005, 0.5)),
    min_size=1, max_size=4,
)


class TestOliaResourcePooling:
    @given(path_params)
    @settings(max_examples=40, deadline=None)
    def test_aggregate_increase_at_most_single_reno(self, params):
        """Long-run aggregate growth never exceeds one Reno flow's.

        This is OLIA's fairness headline: a multipath user should not
        out-compete single-path users at a bottleneck.  The bound holds
        on average (alpha-set flapping allows small per-round
        transients), so it is checked over many rounds.
        """
        coord = OliaCoordinator(mss=MSS)
        paths = make_paths(coord, params)
        rounds = 15
        total_before = sum(p.cwnd_bytes for p in paths)
        acks_per_round = {
            p.path_id: max(1, int(p.cwnd_bytes / MSS)) for p in paths
        }
        for _ in range(rounds):
            for p in paths:
                for _ in range(acks_per_round[p.path_id]):
                    p.on_ack(1.0, MSS, p.smoothed_rtt)
        total_delta = sum(p.cwnd_bytes for p in paths) - total_before
        # One Reno flow grows one MSS per RTT.  The discretised per-ACK
        # updates and alpha-set flapping can transiently overshoot the
        # continuous model; the long-run growth stays within ~1.6x of a
        # single Reno flow (versus N-fold for uncoupled controllers).
        assert total_delta <= rounds * MSS * 1.6

    @given(path_params)
    @settings(max_examples=60)
    def test_increase_is_nonnegative_per_path(self, params):
        coord = OliaCoordinator(mss=MSS)
        paths = make_paths(coord, params)
        for p in paths:
            w_before = p.cwnd_bytes
            p.on_ack(1.0, MSS, p.smoothed_rtt)
            assert p.cwnd_bytes >= min(w_before, MIN_WINDOW_SEGMENTS * MSS) - 1e-6

    @given(path_params, st.integers(0, 3))
    @settings(max_examples=40)
    def test_loss_never_collapses_below_floor(self, params, loss_path):
        coord = OliaCoordinator(mss=MSS)
        paths = make_paths(coord, params)
        target = paths[min(loss_path, len(paths) - 1)]
        for i in range(5):
            target.on_loss_event(float(i + 1), float(i) + 0.5)
            target.exit_recovery()
        assert target.cwnd_bytes >= MIN_WINDOW_SEGMENTS * MSS - 1e-6

    def test_two_equal_paths_grow_equally(self):
        coord = OliaCoordinator(mss=MSS)
        p0, p1 = make_paths(coord, [(20, 0.05), (20, 0.05)])
        for _ in range(50):
            p0.on_ack(1.0, MSS, 0.05)
            p1.on_ack(1.0, MSS, 0.05)
        # Interleaved updates introduce tiny asymmetries; windows stay
        # within a fraction of a percent of each other.
        assert p0.cwnd_bytes == pytest.approx(p1.cwnd_bytes, rel=0.01)

    def test_symmetric_two_path_growth_is_half_reno(self):
        """For two identical paths the aggregate CA slope is ~1/2 MSS
        per RTT — the resource-pooling price the EXPERIMENTS.md scale
        note discusses."""
        coord = OliaCoordinator(mss=MSS)
        p0, p1 = make_paths(coord, [(30, 0.05), (30, 0.05)])
        total_before = p0.cwnd_bytes + p1.cwnd_bytes
        for p in (p0, p1):
            for _ in range(30):
                p.on_ack(1.0, MSS, 0.05)
        growth = (p0.cwnd_bytes + p1.cwnd_bytes) - total_before
        assert growth == pytest.approx(0.5 * MSS, rel=0.1)
