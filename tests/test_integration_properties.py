"""Property-based integration tests: reliability invariants.

Whatever the network looks like (within Table 1's ranges) and whatever
the protocol, a transfer must complete, deliver exactly the requested
bytes, and never violate flow control or nonce uniqueness (both of
which raise inside the stacks).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.topology import PathConfig

from tests.helpers import run_transfer


def path_configs(lossy: bool):
    loss = st.floats(0.0, 2.5) if lossy else st.just(0.0)
    return st.builds(
        PathConfig,
        capacity_mbps=st.floats(0.5, 100.0),
        rtt_ms=st.floats(1.0, 200.0),
        queuing_delay_ms=st.floats(0.0, 400.0),
        loss_percent=loss,
    )


COMMON_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTransferInvariants:
    @pytest.mark.parametrize("protocol", ["tcp", "quic", "mptcp", "mpquic"])
    def test_delivers_exact_bytes_on_random_networks(self, protocol):
        @given(
            paths=st.tuples(path_configs(lossy=True), path_configs(lossy=True)),
            seed=st.integers(0, 2**16),
        )
        @settings(**COMMON_SETTINGS)
        def check(paths, seed):
            result = run_transfer(
                protocol, list(paths), file_size=120_000, seed=seed,
                timeout=3000.0,
            )
            assert result.ok, f"{protocol} stalled on {paths}"
            assert result.app.bytes_received == 120_000

        check()

    @given(
        paths=st.tuples(path_configs(lossy=False), path_configs(lossy=False)),
        initial=st.integers(0, 1),
    )
    @settings(**COMMON_SETTINGS)
    def test_mpquic_initial_path_never_prevents_completion(self, paths, initial):
        result = run_transfer(
            "mpquic", list(paths), file_size=150_000,
            initial_interface=initial, timeout=3000.0,
        )
        assert result.ok

    @given(seed=st.integers(0, 2**16))
    @settings(**COMMON_SETTINGS)
    def test_heavy_loss_never_breaks_reliability(self, seed):
        paths = [
            PathConfig(5.0, 30.0, 50.0, loss_percent=6.0),
            PathConfig(3.0, 60.0, 80.0, loss_percent=6.0),
        ]
        result = run_transfer(
            "mpquic", paths, file_size=80_000, seed=seed, timeout=3000.0,
        )
        assert result.ok
        assert result.app.bytes_received == 80_000


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["tcp", "quic", "mptcp", "mpquic"])
    def test_same_seed_same_outcome(self, protocol):
        paths = [
            PathConfig(8.0, 35.0, 60.0, loss_percent=1.0),
            PathConfig(4.0, 70.0, 90.0, loss_percent=1.0),
        ]
        a = run_transfer(protocol, paths, file_size=200_000, seed=11)
        b = run_transfer(protocol, paths, file_size=200_000, seed=11)
        assert a.transfer_time == b.transfer_time
        assert (
            a.client.connection.stats.packets_received
            == b.client.connection.stats.packets_received
            if hasattr(a.client.connection, "stats")
            else True
        )
