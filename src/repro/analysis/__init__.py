"""Static analysis enforcing the simulator's determinism contract.

``python -m repro.analysis src/repro`` runs an AST pass over the tree
with a registry of determinism and protocol-invariant rules (wall
clocks, unseeded RNGs, hash-order iteration, telemetry taxonomy, ...)
and exits non-zero on findings.  Line-scoped waivers use
``# repro: allow[rule-id]``; see ``docs/static-analysis.md``.
"""

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    register,
    suppressed_rules,
)
from repro.analysis.report import (
    REPORT_VERSION,
    findings_from_json,
    render_json,
    render_rule_list,
    render_text,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "REPORT_VERSION",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "findings_from_json",
    "register",
    "render_json",
    "render_rule_list",
    "render_text",
    "suppressed_rules",
]
