#!/usr/bin/env python3
"""Live streaming through a WiFi failure: rebuffering comparison.

A 4 Mbps live stream plays for 8 seconds; at t=2 s the WiFi-like
initial path dies.  Compares what the viewer experiences (startup
delay, rebuffering) across transports — the user-experience face of
the paper's handover argument.

Run:  python examples/live_streaming.py
"""

from repro.apps.streaming import StreamingApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig

PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=25.0, queuing_delay_ms=60.0),
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=60.0),
]
KILL_AT = 2.0
DURATION = 8.0

VARIANTS = [
    ("MPQUIC (lowest-RTT)", "mpquic", None),
    ("MPQUIC (redundant)", "mpquic", QuicConfig(scheduler="redundant")),
    ("MPTCP", "mptcp", None),
    ("QUIC + migration", "quic",
     QuicConfig(migrate_on_failure=True, keepalive_interval=0.2)),
]


def main() -> None:
    print(f"4 Mbps live stream, {DURATION:.0f}s of media; "
          f"initial path dies at t={KILL_AT:.0f}s\n")
    print(f"{'variant':24s} {'startup':>8s} {'stalls':>7s} {'stalled':>9s} {'done':>7s}")
    for label, protocol, qcfg in VARIANTS:
        sim = Simulator()
        topo = TwoPathTopology(sim, PATHS, seed=4)
        client, server = make_client_server(
            protocol, sim, topo, quic_config=qcfg
        )
        app = StreamingApp(sim, client, server, bitrate_bps=4e6,
                           duration=DURATION)
        sim.schedule_at(KILL_AT, topo.set_path_loss, 0, 100.0)
        ok = app.run(timeout=90.0)
        done = f"{app.finished_at:.1f}s" if ok else "never"
        print(f"{label:24s} {app.startup_delay * 1e3:6.0f}ms "
              f"{app.rebuffer_count:7d} {app.rebuffer_time * 1e3:7.0f}ms {done:>7s}")
    print("\n'stalled' is total rebuffering time the viewer sees.")


if __name__ == "__main__":
    main()
