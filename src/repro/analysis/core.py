"""Infrastructure of the static analyzer: findings, rules, suppression.

The analyzer parses each file once into an :mod:`ast` tree and hands the
tree to every registered rule.  Rules are small classes with a ``check``
method returning :class:`Finding` objects; they never import the code
under analysis, so the pass is safe to run on broken or
dependency-missing trees.

Suppression follows the conventional in-line marker style::

    t = time.time()  # repro: allow[wall-clock] benchmark harness only

A marker silences exactly the listed rule ids (comma separated) on its
physical line; ``# repro: allow[*]`` silences every rule on the line.
Suppressions are deliberately line-scoped — blanket file- or
block-level waivers would defeat the point of the determinism audit.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Type


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class Rule:
    """Base class for analyzer rules.

    Subclasses set ``rule_id``/``rationale`` and implement
    :meth:`check`, yielding findings for one parsed module.
    """

    #: Stable identifier used in reports and suppression markers.
    rule_id: str = ""
    #: One-line justification shown by ``--list-rules`` and the docs.
    rationale: str = ""

    def check(self, ctx: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    display_path: str
    tree: ast.Module
    source_lines: Sequence[str]
    #: Path relative to the analysis root, with ``/`` separators —
    #: rules use it for location-scoped exemptions (e.g. benchmarks/).
    rel_path: str


class ProjectRule:
    """Base class for whole-program (interprocedural) rules.

    Unlike :class:`Rule`, a project rule sees the entire
    :class:`repro.analysis.graph.ProjectGraph` — symbol tables, the
    approximate call graph, reachability — and may report findings in
    any module of the tree.  Suppression markers apply exactly as for
    per-module rules: the marker must sit on the reported line.
    """

    rule_id: str = ""
    rationale: str = ""

    def check(self, graph: "object") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _PROJECT_REGISTRY or rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    _PROJECT_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules, keyed by id (import side effect of rules.py)."""
    from repro.analysis import rules as _rules  # noqa: F401  (registers)

    return dict(_REGISTRY)


def all_project_rules() -> Dict[str, Type[ProjectRule]]:
    """Registered whole-program rules, keyed by id."""
    from repro.analysis import xrules as _xrules  # noqa: F401  (registers)

    return dict(_PROJECT_REGISTRY)


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


def suppressed_rules(line_text: str) -> Set[str]:
    """Rule ids silenced by markers on one physical source line."""
    out: Set[str] = set()
    for match in _ALLOW_RE.finditer(line_text):
        for rule_id in match.group(1).split(","):
            out.add(rule_id.strip())
    return out


def analyze_source(
    source: str,
    display_path: str,
    rel_path: str = "",
    select: Sequence[str] = (),
) -> List[Finding]:
    """Run the (optionally filtered) rule set over one source string."""
    tree = ast.parse(source, filename=display_path)
    lines = source.splitlines()
    ctx = ModuleContext(
        display_path=display_path,
        tree=tree,
        source_lines=lines,
        rel_path=rel_path or display_path,
    )
    registry = all_rules()
    wanted = list(select) if select else sorted(registry)
    unknown = [rule_id for rule_id in wanted if rule_id not in registry]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    findings: List[Finding] = []
    for rule_id in wanted:
        rule = registry[rule_id]()
        for finding in rule.check(ctx):
            line_idx = finding.line - 1
            if 0 <= line_idx < len(lines):
                allowed = suppressed_rules(lines[line_idx])
                if finding.rule in allowed or "*" in allowed:
                    continue
            findings.append(finding)
    findings.sort()
    return findings


def iter_python_files(paths: Iterable[Path]) -> List[Tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs, sorted.

    The root is the argument the file was found under, so relative
    paths (used for location-scoped rules) stay stable regardless of
    the caller's working directory.
    """
    out: List[Tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                # Byte-compiled caches carry .py-suffixed droppings on
                # some setups and are never source to analyze.
                if "__pycache__" in sub.parts:
                    continue
                out.append((sub, path))
        else:
            out.append((path, path.parent))
    return out


def analyze_paths(
    paths: Iterable[Path],
    select: Sequence[str] = (),
) -> Tuple[List[Finding], int]:
    """Analyze files/trees; returns (findings, files analyzed).

    Files that cannot be read as UTF-8 text (editor droppings, binary
    blobs with a ``.py`` suffix) are skipped rather than aborting the
    whole run; the analyzer's job is the source tree, not its litter.
    """
    findings: List[Finding] = []
    count = 0
    for file_path, root in iter_python_files(paths):
        rel = file_path.relative_to(root) if root in file_path.parents or file_path == root else file_path
        try:
            source = file_path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError):
            continue
        findings.extend(
            analyze_source(
                source,
                display_path=str(file_path),
                rel_path=str(rel).replace("\\", "/"),
                select=select,
            )
        )
        count += 1
    findings.sort()
    return findings, count


def analyze_project(
    root: Path,
    select: Sequence[str] = (),
) -> Tuple[List[Finding], "object"]:
    """Run the whole-program rules over one source tree.

    Builds the :class:`~repro.analysis.graph.ProjectGraph` once, runs
    every registered :class:`ProjectRule` (optionally filtered by
    ``select``), applies line-scoped suppression markers, and returns
    ``(findings, graph)`` — the graph so callers (CLI, tests) can reuse
    the index for e.g. the emit-site registry dump.
    """
    from repro.analysis.graph import ProjectGraph

    registry = all_project_rules()
    wanted = (
        [r for r in select if r in registry] if select else sorted(registry)
    )
    if select:
        known = set(registry) | set(all_rules())
        unknown = [r for r in select if r not in known]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    graph = ProjectGraph.build(root)
    lines_by_path = {
        str(mod.path): mod.source_lines for mod in graph.modules.values()
    }
    findings: List[Finding] = []
    for rule_id in wanted:
        rule = registry[rule_id]()
        for finding in rule.check(graph):
            lines = lines_by_path.get(finding.path, ())
            line_idx = finding.line - 1
            if 0 <= line_idx < len(lines):
                allowed = suppressed_rules(lines[line_idx])
                if finding.rule in allowed or "*" in allowed:
                    continue
            findings.append(finding)
    findings.sort()
    return findings, graph
