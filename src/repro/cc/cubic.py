"""CUBIC congestion control (Ha, Rhee, Xu 2008 / RFC 8312).

Both the Linux TCP stack and quic-go used CUBIC at the time of the
paper, so this controller drives all four single-path protocol runs.
Implemented in floating segment units internally, exposed in bytes.
"""

from __future__ import annotations

from repro.cc.base import CcState, CongestionController, MIN_WINDOW_SEGMENTS


class Cubic(CongestionController):
    """RFC 8312 CUBIC with fast convergence and the TCP-friendly region.

    ``num_connections`` enables Chromium's N-connection emulation, which
    quic-go inherited: the window backs off as if it were N parallel
    flows (``beta_eff = (N-1+beta)/N``) and the TCP-friendly region
    grows N times as fast.  Chromium/quic-go default to N=2, one of the
    reasons (MP)QUIC rides out random losses better than Linux TCP in
    the paper's lossy scenarios (§4.1).
    """

    #: CUBIC scaling constant (segments/second^3).
    C = 0.4
    #: Multiplicative decrease factor (single connection).
    BETA = 0.7

    #: HyStart: delay-increase detection threshold parameters.
    HYSTART_MIN_SAMPLES = 8
    HYSTART_DELAY_MIN = 0.004
    HYSTART_DELAY_MAX = 0.016

    def __init__(self, mss: int = 1400, num_connections: int = 1) -> None:
        super().__init__(mss=mss)
        if num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        self.num_connections = num_connections
        n = num_connections
        self.beta_eff = (n - 1 + self.BETA) / n
        #: Reno-friendly additive-increase coefficient (segments/RTT).
        self.alpha_eff = 3.0 * n * n * (1.0 - self.beta_eff) / (1.0 + self.beta_eff)
        self._w_max = 0.0  # segments
        self._k = 0.0
        self._epoch_start = -1.0
        self._w_est = 0.0
        self._acked_since_epoch = 0.0
        # HyStart state (Linux has shipped it with CUBIC since 2.6.29,
        # so the paper's TCP and quic-go baselines both benefit).
        self._hystart_min_rtt = float("inf")
        self._hystart_round_min = float("inf")
        self._hystart_samples = 0

    def _hystart_update(self, rtt: float) -> bool:
        """Return True when delay increase says to leave slow start."""
        if rtt <= 0:
            return False
        self._hystart_min_rtt = min(self._hystart_min_rtt, rtt)
        self._hystart_samples += 1
        self._hystart_round_min = min(self._hystart_round_min, rtt)
        if self._hystart_samples < self.HYSTART_MIN_SAMPLES:
            return False
        threshold = self._hystart_min_rtt + min(
            max(self._hystart_min_rtt / 8.0, self.HYSTART_DELAY_MIN),
            self.HYSTART_DELAY_MAX,
        )
        exit_now = self._hystart_round_min > threshold
        self._hystart_samples = 0
        self._hystart_round_min = float("inf")
        return exit_now

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if self.state is CcState.RECOVERY:
            return
        acked_segments = acked_bytes / self.mss
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            if self._hystart_update(rtt):
                self.ssthresh_bytes = self.cwnd_bytes
                self.state = CcState.CONGESTION_AVOIDANCE
                return
            if self.cwnd_bytes >= self.ssthresh_bytes:
                self.state = CcState.CONGESTION_AVOIDANCE
            return
        self.state = CcState.CONGESTION_AVOIDANCE
        if self._epoch_start < 0.0:
            self._begin_epoch(now)
        t = now - self._epoch_start
        cwnd_seg = self.cwnd_bytes / self.mss
        w_cubic = self.C * (t - self._k) ** 3 + self._w_max
        # TCP-friendly (Reno-estimated) window.
        self._acked_since_epoch += acked_segments
        rtt = max(rtt, 1e-4)
        w_est = self._w_max * self.beta_eff + self.alpha_eff * (t / rtt)
        target = max(w_cubic, w_est)
        if target > cwnd_seg:
            # Approach the target over roughly one RTT of ACKs.
            cwnd_seg += (target - cwnd_seg) / cwnd_seg * acked_segments
        else:
            # Max-probing plateau: grow very slowly.
            cwnd_seg += acked_segments / (100.0 * cwnd_seg)
        self.cwnd_bytes = cwnd_seg * self.mss

    def _begin_epoch(self, now: float) -> None:
        self._epoch_start = now
        cwnd_seg = self.cwnd_bytes / self.mss
        if self._w_max < cwnd_seg:
            self._w_max = cwnd_seg
            self._k = 0.0
        else:
            self._k = ((self._w_max - cwnd_seg) / self.C) ** (1.0 / 3.0)
        self._acked_since_epoch = 0.0

    def _reduce_on_loss(self, now: float) -> None:
        cwnd_seg = self.cwnd_bytes / self.mss
        if cwnd_seg < self._w_max:
            # Fast convergence: release bandwidth faster on shrinking pipes.
            self._w_max = cwnd_seg * (1.0 + self.beta_eff) / 2.0
        else:
            self._w_max = cwnd_seg
        cwnd_seg = max(cwnd_seg * self.beta_eff, MIN_WINDOW_SEGMENTS)
        self.cwnd_bytes = cwnd_seg * self.mss
        self.ssthresh_bytes = self.cwnd_bytes
        self._epoch_start = -1.0

    def _on_rto_extra(self, now: float) -> None:
        self._epoch_start = -1.0
        self._w_max = max(self._w_max, MIN_WINDOW_SEGMENTS)
