"""Tests for the shared-bottleneck topology and the fairness experiment."""

import pytest

from repro.experiments.fairness import DEFAULT_BOTTLENECK, run_fairness
from repro.netsim.bottleneck import Router, SharedBottleneckTopology
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Datagram
from repro.netsim.topology import PathConfig


class TestRouter:
    def test_routes_by_destination(self):
        sim = Simulator()
        got = []
        link = Link(sim, 8e6, 0.001, 100_000, sink=lambda d: got.append(d.payload))
        router = Router()
        router.add_route("10.0.0.2", link)
        router.receive(Datagram(payload="x", size=100, dst_addr="10.0.0.2"))
        sim.run()
        assert got == ["x"]
        assert router.forwarded == 1

    def test_unroutable_dropped(self):
        router = Router()
        router.receive(Datagram(payload="x", size=100, dst_addr="10.0.0.9"))
        assert router.dropped_no_route == 1


class TestSharedBottleneckTopology:
    def make(self):
        sim = Simulator()
        topo = SharedBottleneckTopology(
            sim, PathConfig(10, 40, 100), with_competitor=True, seed=1
        )
        return sim, topo

    def test_multipath_pair_connected_on_both_interfaces(self):
        sim, topo = self.make()
        got = []
        topo.server.set_datagram_handler(lambda d, i: got.append((d.payload, i)))
        topo.client.send(Datagram(payload="a", size=100), 0)
        topo.client.send(Datagram(payload="b", size=100), 1)
        sim.run()
        assert sorted(got) == [("a", 0), ("b", 1)]

    def test_reverse_direction(self):
        sim, topo = self.make()
        got = []
        topo.client.set_datagram_handler(lambda d, i: got.append((d.payload, i)))
        topo.server.send(Datagram(payload="r", size=100), 1)
        sim.run()
        assert got == [("r", 1)]

    def test_competitor_pair_connected(self):
        sim, topo = self.make()
        got = []
        topo.competitor_server.set_datagram_handler(
            lambda d, i: got.append(d.payload)
        )
        topo.competitor_client.send(Datagram(payload="c", size=100), 0)
        sim.run()
        assert got == ["c"]

    def test_all_flows_share_the_bottleneck_link(self):
        sim, topo = self.make()
        topo.server.set_datagram_handler(lambda d, i: None)
        topo.competitor_server.set_datagram_handler(lambda d, i: None)
        topo.client.send(Datagram(payload="a", size=100), 0)
        topo.client.send(Datagram(payload="b", size=100), 1)
        topo.competitor_client.send(Datagram(payload="c", size=100), 0)
        sim.run()
        assert topo.bottleneck_up.stats.datagrams_sent == 3


class TestFairness:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            cc: run_fairness(multipath_cc=cc, duration=10.0, warmup=3.0)
            for cc in ("olia", "cubic2")
        }

    def test_bottleneck_saturated(self, results):
        for r in results.values():
            total = r.mp_goodput_bps + r.competitor_goodput_bps
            assert total > DEFAULT_BOTTLENECK.rate_bps * 0.75

    def test_olia_is_fair(self, results):
        # Coupled OLIA should take roughly ONE share of the bottleneck.
        assert 0.30 <= results["olia"].mp_share <= 0.60

    def test_uncoupled_cubic_is_aggressive(self, results):
        # Two independent CUBIC paths grab more than their fair share.
        assert results["cubic2"].mp_share > results["olia"].mp_share + 0.05
