"""E9 / Fig. 11 — network handover with MPQUIC.

Paper shape: steady ~15 ms-path delays, one spike of a few hundred ms
when the initial path dies at t=3 s (one RTO + cross-path retransmit +
PATHS frame), then steady delays on the 25 ms path.
"""

from repro.experiments.figures import fig11
from repro.experiments.scenarios import HANDOVER_SCENARIO

from benchmarks.common import BENCH_CONFIG, run_once


def test_fig11_handover_timeline(benchmark):
    delays = run_once(benchmark, lambda: fig11(BENCH_CONFIG))
    fail = HANDOVER_SCENARIO.failure_time
    before = [d for t, d in delays if t < fail - 0.5]
    spike = [d for t, d in delays if fail - 0.1 <= t < fail + 0.8]
    after = [d for t, d in delays if t > fail + 1.0]
    assert len(delays) == HANDOVER_SCENARIO.total_requests
    assert max(before) < 0.025          # 15 ms RTT path
    assert spike and 0.05 < max(spike) < 1.0   # one recovery spike
    assert after and max(after) < 0.035  # seamless on the 25 ms path
