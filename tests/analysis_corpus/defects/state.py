"""Module-level mutable state shared (incorrectly) with the worker."""

cell_counter = {}
