"""The TCP flow machine: one sequence space, one path.

A :class:`TcpFlow` is a full TCP sender/receiver pair bound to one host
interface: 3-way handshake, cumulative ACKs with limited SACK, CUBIC
(or a supplied controller), fast retransmission via RFC 6675-style
hole marking, RTO with exponential backoff, delayed ACKs and Karn RTT
sampling.  A plain TCP connection owns exactly one flow; an MPTCP
connection owns one flow per path (a *subflow*) and layers the data
sequence space on top.

Flow behaviour is customised through an *owner* implementing
:class:`FlowOwner`; this keeps the (considerable) reliability machinery
in one place, exactly the role ``tcp_input.c``/``tcp_output.c`` play
for both TCP and MPTCP in Linux.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import List, Optional, Tuple

from repro.cc.base import CongestionController
from repro.netsim.engine import Simulator, Timer
from repro.netsim.node import Datagram, Host
from repro.netsim.trace import PacketTrace
from repro.quic.rtt import RttEstimator
from repro.tcp.config import TcpConfig
from repro.tcp.segment import Segment
from repro.util.ranges import RangeSet
from repro.util.reassembly import Reassembler


class FlowState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"


class FlowOwner:
    """Hooks a connection implements to drive its flow(s)."""

    def flow_established(self, flow: "TcpFlow") -> None:
        """The 3-way handshake finished."""

    def flow_delivered(self, flow: "TcpFlow", data: bytes, fin: bool) -> None:
        """In-order flow bytes arrived (stream mode)."""

    def flow_mapped_data(
        self, flow: "TcpFlow", dsn: int, data: bytes, data_fin: bool
    ) -> None:
        """A data segment with a DSS mapping arrived (MPTCP mode)."""

    def flow_window_edge(self, flow: "TcpFlow") -> int:
        """Absolute receive-window limit to advertise."""
        raise NotImplementedError

    def flow_data_ack(self, flow: "TcpFlow") -> Optional[int]:
        """Cumulative data-level ack (MPTCP) or None."""
        return None

    def flow_on_ack(self, flow: "TcpFlow", data_ack: Optional[int]) -> None:
        """An ACK was processed; a chance to feed more data."""

    def flow_on_rto(self, flow: "TcpFlow") -> None:
        """The flow suffered a retransmission timeout."""

    def flow_dss_for_range(
        self, flow: "TcpFlow", start: int, stop: int
    ) -> Optional[Tuple[int, bool]]:
        """DSS mapping ``(dsn, data_fin)`` for outgoing subflow bytes
        ``[start, stop)``, which the flow has already clamped to a
        single mapping via :meth:`flow_mapping_stop`."""
        return None

    def flow_mapping_stop(self, flow: "TcpFlow", start: int) -> int:
        """Largest subflow sequence a segment starting at ``start`` may
        extend to without crossing a DSS mapping boundary."""
        return 1 << 62


class TcpFlow:
    """One TCP flow (or MPTCP subflow) bound to a host interface."""

    #: Data sequence numbers start after the SYN.
    SEQ_BASE = 1

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        interface_index: int,
        role: str,
        config: TcpConfig,
        cc: CongestionController,
        owner: FlowOwner,
        mapped_delivery: bool = False,
        trace: Optional[PacketTrace] = None,
        name: str = "tcp",
    ) -> None:
        self.sim = sim
        self.host = host
        self.interface_index = interface_index
        self.role = role
        self.config = config
        self.cc = cc
        self.owner = owner
        self.mapped_delivery = mapped_delivery
        self.trace = trace
        self.name = name

        self.state = FlowState.LISTEN if role == "server" else FlowState.CLOSED
        # Karn mode: no ack-delay correction, no samples from rexmits.
        self.rtt = RttEstimator(use_ack_delay=False)

        # --- sender state ---
        self._buf = bytearray()
        self.snd_una = self.SEQ_BASE
        self.snd_nxt = self.SEQ_BASE
        self.fin_seq: Optional[int] = None
        self._fin_sent = False
        self.peer_window_edge = 0
        #: Subflows are gated by the connection-level (DSN) window, not
        #: a per-subflow one.
        self.enforce_flow_window = not mapped_delivery
        self._sacked = RangeSet()
        self._retx_queue = RangeSet()
        self._retx_marked = RangeSet()
        self._retransmitted_ever = RangeSet()
        # Karn RTT probe: one timed segment outstanding at a time,
        # (end_seq, send_time); invalidated if the range is ever
        # retransmitted.  Yields roughly one sample per RTT, as in a
        # timestamp-less Linux stack.
        self._rtt_probe: Optional[Tuple[int, float]] = None
        # Timestamp-option RTT: per-ACK samples used only by the
        # congestion controller (CUBIC epoch timing / HyStart).  The
        # scheduler-visible smoothed RTT stays probe-based and noisy.
        self._ts_times: "deque[Tuple[int, float]]" = deque()
        self._last_ts_rtt = 0.0
        self._recovery_until = -1
        self.in_recovery = False
        self.consecutive_rtos = 0
        # Tail loss probe (Linux sch_tlp, on by default since 3.10):
        # after ~2 smoothed RTTs without progress, re-send the tail
        # segment to elicit SACKs instead of waiting for the full RTO.
        self._tlp_timer: Optional[Timer] = None
        self._tlp_armed_una = -1
        self._tlp_used = False
        self.tlp_probes = 0
        self.potentially_failed = False
        self.last_send_time = -1.0
        self.last_receive_time = -1.0

        # --- receiver state ---
        self.reassembler = Reassembler()
        self._fin_received_seq: Optional[int] = None
        self._unacked_segments = 0
        self._ack_timer: Optional[Timer] = None
        self._rto_timer: Optional[Timer] = None
        self._last_block_received: Optional[Tuple[int, int]] = None

        # --- stats ---
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_retransmitted = 0
        self.rto_count = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Client: send SYN (with the first data flight under TFO)."""
        if self.role != "client":
            raise ValueError("only client flows connect()")
        self.state = FlowState.SYN_SENT
        data = b""
        if self.config.fast_open and self._buf:
            # TCP Fast Open (RFC 7413): data rides the SYN.
            data = bytes(self._buf[: self.config.mss])
            self.snd_nxt = self.SEQ_BASE + len(data)
        self._syn_data = data
        self._emit(
            Segment(seq=0, ack=0, syn=True, data=data,
                    window_edge=self._window_edge())
        )
        self._arm_rto()

    @property
    def established(self) -> bool:
        return self.state is FlowState.ESTABLISHED

    # ------------------------------------------------------------------
    # Sender API
    # ------------------------------------------------------------------

    def write(self, data: bytes, fin: bool = False) -> None:
        """Append stream bytes (and optionally FIN) to the send buffer."""
        if self.fin_seq is not None:
            raise ValueError("flow already closed for sending")
        self._buf += data
        if fin:
            self.fin_seq = self.SEQ_BASE + len(self._buf)
        self.try_send()

    @property
    def buffered_end_seq(self) -> int:
        """Sequence number one past the last buffered byte."""
        return self.SEQ_BASE + len(self._buf)

    @property
    def bytes_outstanding(self) -> int:
        """Pipe estimate (RFC 6675-lite): sent and un-SACKed bytes,
        excluding loss-marked holes not yet retransmitted."""
        return max(
            0,
            (self.snd_nxt - self.snd_una)
            - self._sacked.total
            - self._retx_queue.total,
        )

    def can_take_data(self) -> bool:
        """Congestion-window room for one more segment (scheduling)."""
        return (
            self.established
            and self.bytes_outstanding + self.config.mss <= self.cc.cwnd_bytes
        )

    def all_data_acked(self) -> bool:
        target = self.fin_seq + 1 if self.fin_seq is not None else self.buffered_end_seq
        return self.snd_una >= target and self.snd_nxt >= target

    def try_send(self) -> None:
        """Transmit whatever the windows currently allow."""
        if not self.established:
            return
        while True:
            if not self._send_one():
                break

    def _send_one(self) -> bool:
        # 1. Retransmissions first; they don't enlarge the pipe estimate
        #    but still respect cwnd.
        if self._retx_queue:
            if self.bytes_outstanding + self.config.mss > self.cc.cwnd_bytes:
                return False
            start, stop = next(iter(self._retx_queue))
            stop = min(stop, start + self.config.mss, self._mapping_stop(start))
            self._retx_queue.remove(start, stop)
            self._transmit_range(start, stop, retransmission=True)
            return True
        # 2. New data under cwnd and (for plain TCP) the peer window.
        limit = self.buffered_end_seq
        if self.snd_nxt < limit:
            if self.bytes_outstanding + self.config.mss > self.cc.cwnd_bytes:
                return False
            stop = min(
                limit,
                self.snd_nxt + self.config.mss,
                self._mapping_stop(self.snd_nxt),
            )
            if self.enforce_flow_window:
                stop = min(stop, self.peer_window_edge)
            if stop <= self.snd_nxt:
                return False
            self._transmit_range(self.snd_nxt, stop, retransmission=False)
            return True
        # 3. A bare FIN if everything was sent.
        if (
            self.fin_seq is not None
            and not self._fin_sent
            and self.snd_nxt >= self.fin_seq
        ):
            self._transmit_range(self.fin_seq, self.fin_seq, retransmission=False, fin=True)
            return True
        return False

    def _transmit_range(
        self, start: int, stop: int, retransmission: bool, fin: bool = False
    ) -> None:
        data_stop = min(stop, self.buffered_end_seq)
        data = bytes(self._buf[start - self.SEQ_BASE:data_stop - self.SEQ_BASE])
        fin_flag = fin or (
            self.fin_seq is not None and start <= self.fin_seq <= stop
        )
        dsn: Optional[int] = None
        data_fin = False
        if self.mapped_delivery and data:
            dss = self.owner.flow_dss_for_range(self, start, data_stop)
            if dss is not None:
                dsn, data_fin = dss
        seg = Segment(
            seq=start,
            ack=self._rcv_nxt(),
            data=data,
            fin=fin_flag,
            window_edge=self._window_edge(),
            sack_blocks=self._sack_blocks(),
            dsn=dsn,
            data_ack=self.owner.flow_data_ack(self),
            data_fin=data_fin,
            retransmission=retransmission,
        )
        if fin_flag:
            self._fin_sent = True
        if retransmission:
            self.bytes_retransmitted += len(data)
            self._retransmitted_ever.add(start, max(stop, start + 1))
            if self._rtt_probe is not None and start < self._rtt_probe[0]:
                self._rtt_probe = None  # Karn: never time retransmitted data
        else:
            if seg.end_seq > self.snd_nxt:
                self.snd_nxt = seg.end_seq
            if self._rtt_probe is None:
                self._rtt_probe = (seg.end_seq, self.sim.now)
            self._ts_times.append((seg.end_seq, self.sim.now))
        self._emit(seg)
        self._arm_rto()
        if not retransmission:
            self._arm_tlp()
        # Sending data also acknowledges everything received so far.
        self._ack_sent()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def segment_received(self, segment: Segment) -> None:
        """Entry point for segments delivered by the simulator."""
        now = self.sim.now
        self.segments_received += 1
        self.last_receive_time = now
        if self.trace is not None:
            self.trace.log(
                now, self.host.name, "tcp-recv", self.interface_index,
                segment.seq, segment.wire_size,
            )
        if self.state is FlowState.LISTEN and segment.syn:
            self.peer_window_edge = max(self.peer_window_edge, segment.window_edge)
            if segment.data:
                # TFO: accept the SYN's payload and establish at once so
                # the response need not wait for the handshake ACK.  The
                # SYN-ACK must leave *before* any response data the
                # payload provokes, or a SYN_SENT client would drop it.
                self.state = FlowState.ESTABLISHED
                self._emit(
                    Segment(seq=0, ack=1 + len(segment.data), syn=True,
                            window_edge=self._window_edge())
                )
                self._process_data(segment)
                self.owner.flow_established(self)
                self.try_send()
            else:
                self.state = FlowState.SYN_RCVD
                self._emit(
                    Segment(seq=0, ack=1, syn=True,
                            window_edge=self._window_edge())
                )
                self._arm_rto()
            return
        if self.state is FlowState.ESTABLISHED and segment.syn and self.role == "server":
            # Duplicate (T)FO SYN: our SYN-ACK was lost; repeat it.
            self._emit(
                Segment(seq=0, ack=self._rcv_nxt(), syn=True,
                        window_edge=self._window_edge())
            )
            return
        if self.state is FlowState.SYN_SENT and segment.syn and segment.ack >= 1:
            self.state = FlowState.ESTABLISHED
            self.snd_una = max(self.SEQ_BASE, segment.ack)
            self.rtt.update(now - self._syn_time if hasattr(self, "_syn_time") else 0.0)
            self.peer_window_edge = max(self.peer_window_edge, segment.window_edge)
            self._emit(Segment(seq=self.snd_nxt, ack=self._rcv_nxt(),
                               window_edge=self._window_edge()))
            self._cancel_rto()
            self.owner.flow_established(self)
            self.try_send()
            return
        if self.state is FlowState.SYN_RCVD and segment.ack >= 1:
            self.state = FlowState.ESTABLISHED
            self._cancel_rto()
            self.owner.flow_established(self)
            # Fall through: the ACK may carry data.
        if self.state is not FlowState.ESTABLISHED:
            return
        self.potentially_failed = False
        if segment.window_edge > self.peer_window_edge:
            self.peer_window_edge = segment.window_edge
        data_ack = segment.data_ack
        if segment.ack > 0 or segment.sack_blocks:
            self._process_ack(segment)
        if segment.data or segment.fin:
            self._process_data(segment)
        self.owner.flow_on_ack(self, data_ack)
        self.try_send()

    # -- data reception ---------------------------------------------------

    def _process_data(self, segment: Segment) -> None:
        if segment.data:
            if self.mapped_delivery and segment.dsn is not None:
                self.owner.flow_mapped_data(
                    self, segment.dsn, segment.data, segment.data_fin
                )
            # In a SYN+data (TFO) segment the payload begins one
            # sequence number after the SYN.
            offset = segment.seq - self.SEQ_BASE + (1 if segment.syn else 0)
            self.reassembler.insert(offset, segment.data)
            self._last_block_received = (offset, offset + len(segment.data))
            ready = self.reassembler.pop_ready()
            if ready and not self.mapped_delivery:
                fin = (
                    self._fin_received_seq is not None
                    and self._rcv_nxt() >= self._fin_received_seq
                )
                self.owner.flow_delivered(self, ready, fin)
        if segment.fin:
            self._fin_received_seq = segment.seq + len(segment.data)
            if not self.mapped_delivery and self._rcv_nxt() >= self._fin_received_seq:
                self.owner.flow_delivered(self, b"", True)
        self._unacked_segments += 1
        out_of_order = bool(self.reassembler.pending_ranges(limit=1))
        if self._unacked_segments >= 2 or out_of_order:
            self.send_ack()
        elif self._ack_timer is None or self._ack_timer.cancelled:
            self._ack_timer = self.sim.schedule(
                self.config.delayed_ack, self._on_ack_timer
            )

    def _rcv_nxt(self) -> int:
        nxt = self.SEQ_BASE + self.reassembler.read_offset
        if (
            self._fin_received_seq is not None
            and self.SEQ_BASE + self.reassembler.read_offset >= self._fin_received_seq
        ):
            nxt = self._fin_received_seq + 1  # FIN consumes one seq
        return nxt

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        """Up to ``max_sack_blocks`` SACK blocks, most recent first.

        The 2-3 block limit (option space) is the key disadvantage
        versus QUIC's 256 ACK ranges under bursty random loss (§4.1).
        """
        pending = self.reassembler.pending_ranges()
        if not pending:
            return ()
        blocks: List[Tuple[int, int]] = []
        if self._last_block_received is not None:
            for start, stop in pending:
                if start <= self._last_block_received[0] < stop:
                    blocks.append((start, stop))
                    break
        for start, stop in pending:
            if len(blocks) >= self.config.max_sack_blocks:
                break
            if (start, stop) not in blocks:
                blocks.append((start, stop))
        return tuple(
            (self.SEQ_BASE + start, self.SEQ_BASE + stop)
            for start, stop in blocks[: self.config.max_sack_blocks]
        )

    def send_ack(self) -> None:
        """Emit a pure ACK now."""
        self._emit(
            Segment(
                seq=self.snd_nxt,
                ack=self._rcv_nxt(),
                window_edge=self._window_edge(),
                sack_blocks=self._sack_blocks(),
                data_ack=self.owner.flow_data_ack(self),
            )
        )
        self._ack_sent()

    def _ack_sent(self) -> None:
        self._unacked_segments = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def _on_ack_timer(self) -> None:
        self._ack_timer = None
        if self._unacked_segments > 0:
            self.send_ack()

    def _window_edge(self) -> int:
        return self.owner.flow_window_edge(self)

    def _mapping_stop(self, start: int) -> int:
        if not self.mapped_delivery:
            return 1 << 62
        return self.owner.flow_mapping_stop(self, start)

    # -- ack processing -----------------------------------------------------

    def _process_ack(self, segment: Segment) -> None:
        now = self.sim.now
        newly_acked = 0
        if segment.ack > self.snd_una:
            newly_acked = segment.ack - self.snd_una
            self._absorb_rtt_sample(segment.ack, now)
            while self._ts_times and self._ts_times[0][0] <= segment.ack:
                _, sent_at = self._ts_times.popleft()
                self._last_ts_rtt = now - sent_at
            self.snd_una = segment.ack
            self._sacked.remove(0, self.snd_una)
            self._retx_queue.remove(0, self.snd_una)
            self._retx_marked.remove(0, self.snd_una)
            self.consecutive_rtos = 0
            self._tlp_used = False
            self._arm_rto(restart=True)
            self._arm_tlp(restart=True)
        for start, stop in segment.sack_blocks:
            if stop > self.snd_una:
                self._sacked.add(max(start, self.snd_una), stop)
        if newly_acked:
            self.cc.on_ack(
                now,
                newly_acked,
                self._last_ts_rtt or self.rtt.latest or self.rtt.smoothed,
            )
        if self.in_recovery and self.snd_una >= self._recovery_until:
            self.in_recovery = False
            self._retx_marked = RangeSet()
            self.cc.exit_recovery()
        self._mark_losses(now)
        if self.snd_una >= self.snd_nxt:
            self._cancel_rto()

    def _absorb_rtt_sample(self, ack: int, now: float) -> None:
        """Karn's algorithm: only time never-retransmitted segments.

        One probe segment is timed at a time; the sample includes any
        delayed-ACK holdup on the receiver (there is no ack-delay field
        in TCP), which is part of the RTT noise the paper blames for
        MPTCP's scheduling trouble (§4.1).
        """
        if self._rtt_probe is None:
            return
        end_seq, sent_at = self._rtt_probe
        if ack >= end_seq:
            self.rtt.update(now - sent_at)
            self._rtt_probe = None

    def _mark_losses(self, now: float) -> None:
        """RFC 6675-style: a hole is lost once ``dupack_threshold`` MSS
        of SACKed data sits above it.

        Early retransmit (RFC 5827): when no new data remains to clock
        out more SACKs *and* fewer than four segments are outstanding,
        the threshold drops to outstanding-1 segments.  With larger
        flights TCP still needs 3 MSS of SACKed data above a hole — and
        its 3-block SACK reporting plus the shared sequence space is
        exactly where it recovers worse than QUIC's 256 ACK ranges and
        fresh packet numbers (paper §4.1).
        """
        if not self._sacked:
            return
        highest_sacked = self._sacked.max + 1
        threshold = self.config.dupack_threshold * self.config.mss
        at_tail = self.snd_nxt >= self.buffered_end_seq or (
            self.enforce_flow_window and self.snd_nxt >= self.peer_window_edge
        )
        outstanding_segments = max(
            1,
            round(
                (self.snd_nxt - self.snd_una - self._sacked.total)
                / self.config.mss
            ),
        )
        if at_tail and outstanding_segments < 4:
            threshold = max(1, outstanding_segments - 1) * self.config.mss
        cursor = self.snd_una
        marked_any = False
        while cursor < highest_sacked:
            gap_start = self._sacked.first_gap_after(cursor)
            if gap_start >= highest_sacked:
                break
            gap_end = highest_sacked
            for s_start, _s_stop in self._sacked:
                if s_start > gap_start:
                    gap_end = min(gap_end, s_start)
                    break
            sacked_above = sum(
                stop - max(start, gap_end)
                for start, stop in self._sacked
                if stop > gap_end
            )
            if sacked_above >= threshold and not self._retx_marked.contains_range(
                gap_start, gap_end
            ):
                self._retx_queue.add(gap_start, gap_end)
                self._retx_marked.add(gap_start, gap_end)
                marked_any = True
            cursor = gap_end
        if marked_any:
            self.fast_retransmits += 1
            if not self.in_recovery:
                self.in_recovery = True
                self._recovery_until = self.snd_nxt
                self.cc.on_loss_event(now, now - max(self.rtt.smoothed, 1e-3))

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _rto_interval(self) -> float:
        if self.rtt.has_sample:
            base = self.rtt.rto(
                min_rto=self.config.min_rto, max_rto=self.config.max_rto,
                max_ack_delay=0.0,
            )
        else:
            base = self.config.initial_rto
        return min(base * (2 ** self.consecutive_rtos), self.config.max_rto)

    def _tlp_interval(self) -> float:
        return max(2.0 * self.rtt.smoothed, 2.0 * self.config.delayed_ack)

    def _arm_tlp(self, restart: bool = False) -> None:
        """Arm the tail loss probe ~2 smoothed RTTs out."""
        if not self.rtt.has_sample or self.in_recovery or self._tlp_used:
            return
        if self._tlp_timer is not None:
            if not restart:
                return
            self._tlp_timer.cancel()
            self._tlp_timer = None
        if self.snd_una < self.snd_nxt:
            self._tlp_armed_una = self.snd_una
            self._tlp_timer = self.sim.schedule(self._tlp_interval(), self._on_tlp)

    def _on_tlp(self) -> None:
        self._tlp_timer = None
        if (
            self.snd_una != self._tlp_armed_una
            or self.snd_una >= self.snd_nxt
            or self.in_recovery
            or self._tlp_used
        ):
            # Progress happened (or recovery started); re-arm if needed.
            self._arm_tlp()
            return
        # Probe: re-send the tail segment to draw a SACK from the peer.
        self._tlp_used = True
        self.tlp_probes += 1
        start = max(self.snd_una, self.snd_nxt - self.config.mss)
        stop = min(self.snd_nxt, self._mapping_stop(start))
        if self.fin_seq is not None and stop > self.fin_seq:
            stop = self.fin_seq + 1
            start = min(start, self.fin_seq)
        if stop > start:
            self._transmit_range(start, stop, retransmission=True)

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_timer is not None:
            if not restart:
                return
            self._rto_timer.cancel()
            self._rto_timer = None
        if self.state in (FlowState.SYN_SENT, FlowState.SYN_RCVD) or (
            self.snd_una < self.snd_nxt
        ):
            self._rto_timer = self.sim.schedule(self._rto_interval(), self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        now = self.sim.now
        if self.state is FlowState.SYN_SENT:
            self.consecutive_rtos += 1
            self.rto_count += 1
            self._emit(
                Segment(seq=0, ack=0, syn=True,
                        data=getattr(self, "_syn_data", b""),
                        window_edge=self._window_edge())
            )
            self._arm_rto()
            return
        if self.state is FlowState.SYN_RCVD:
            self.consecutive_rtos += 1
            self.rto_count += 1
            self._emit(Segment(seq=0, ack=1, syn=True, window_edge=self._window_edge()))
            self._arm_rto()
            return
        if self.snd_una >= self.snd_nxt:
            return
        self.consecutive_rtos += 1
        self.rto_count += 1
        # Like Linux: everything un-SACKed is marked lost and will be
        # retransmitted in sequence on this same subflow.
        self._retx_queue = RangeSet([(self.snd_una, self.snd_nxt)])
        for start, stop in self._sacked:
            self._retx_queue.remove(start, stop)
        self._retx_marked = self._retx_queue.copy()
        self.in_recovery = True
        self._recovery_until = self.snd_nxt
        self.cc.on_rto(now)
        # Potentially-failed heuristic (MPTCP pull #70): an RTO with no
        # activity since the last transmission.
        if self.last_receive_time < self.last_send_time:
            self.potentially_failed = True
        if self.trace is not None:
            self.trace.log(now, self.host.name, "tcp-rto", self.interface_index)
        self.owner.flow_on_rto(self)
        self._arm_rto()
        self.try_send()

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------

    def _emit(self, segment: Segment) -> None:
        if segment.syn and self.role == "client":
            self._syn_time = self.sim.now
        self.segments_sent += 1
        self.bytes_sent += segment.wire_size
        self.last_send_time = self.sim.now
        if self.trace is not None:
            self.trace.log(
                self.sim.now, self.host.name, "tcp-send", self.interface_index,
                segment.seq, segment.wire_size,
            )
        self.host.send(
            Datagram(payload=segment, size=segment.wire_size),
            self.interface_index,
        )

    def close_timers(self) -> None:
        """Cancel outstanding timers (teardown)."""
        self._cancel_rto()
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        if self._tlp_timer is not None:
            self._tlp_timer.cancel()
            self._tlp_timer = None
