"""Path creation and lifecycle management (paper §3, *Path Management*).

The path manager opens one path over each client interface as soon as
the cryptographic handshake (performed on the initial path) completes.
Client-created paths take odd Path IDs and server-created paths even
ones to avoid clashes; our implementation, like the paper's, does not
create server-initiated paths because clients are typically behind
NATs or firewalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.connection import MultipathQuicConnection


class PathManager:
    """Controls which paths a multipath connection opens."""

    def __init__(self, connection: "MultipathQuicConnection") -> None:
        self.connection = connection
        self._next_client_path_id = 1
        self._next_server_path_id = 2
        #: Path IDs permanently retired by the liveness state machine.
        self.retired: Set[int] = set()

    def next_path_id(self) -> int:
        """Allocate the next Path ID for this host's role."""
        if self.connection.role == "client":
            path_id = self._next_client_path_id
            self._next_client_path_id += 2
            return path_id
        path_id = self._next_server_path_id
        self._next_server_path_id += 2
        return path_id

    def on_handshake_complete(self) -> None:
        """Open a path over every interface not yet carrying one.

        Unlike MPTCP, which needs a 3-way handshake per subflow, the
        new paths are immediately usable: MPQUIC may place data in the
        very first packet sent on them.
        """
        if self.connection.role != "client":
            return
        used = {p.interface_index for p in self.connection.paths.values()}
        for iface in self.connection.host.interfaces:
            if iface.index in used or not iface.up:
                continue
            self.connection.open_path(iface.index)

    def on_path_abandoned(self, path_id: int) -> None:
        """Record a path the liveness machine retired for good.

        Retired IDs are never reused (packet-number/nonce uniqueness)
        and the interface is not re-opened automatically — rejoining
        after an abandon requires an explicit ``open_path``.
        """
        self.retired.add(path_id)

    def is_retired(self, path_id: int) -> bool:
        return path_id in self.retired

    def usable_interface_indices(self) -> List[int]:
        return [i.index for i in self.connection.host.interfaces if i.up]
