"""QUIC frames.

Frames are the unit of information inside QUIC packets; packets are
merely their containers (paper §2).  Because frames are independent of
the packets carrying them, a multipath sender may rebind the frames of
a lost packet onto any path — the flexibility MPQUIC's scheduler
exploits (paper §3, *Packet Scheduling*).

Wire sizes follow :mod:`repro.quic.wire`; each frame caches its encoded
size at construction so the simulator can account for bandwidth without
serializing — or even re-measuring — every packet.

Frames are ``__slots__`` classes rather than frozen dataclasses: a
transfer churns through one StreamFrame and a fraction of an AckFrame
per packet, and ``object.__setattr__``-based frozen construction
dominated the send-loop profile.  The two high-churn frame types are
additionally *pooled*: :meth:`StreamFrame.acquire` /
:meth:`AckFrame.acquire` reuse recycled instances, and the transport
releases its references once a frame can no longer be observed (its
packet was delivered and every recovery registration resolved).  The
refcount protocol is deliberately conservative: a frame that is never
released is simply garbage-collected (safe), while an unbalanced extra
``release()`` on a zero-ref frame is ignored rather than recycling an
object someone may still hold — e.g. frames hand-built by tests and
injected straight into a connection.

Value semantics (``__eq__``/``__hash__``/``__repr__`` over the declared
``_fields``) are preserved exactly as the frozen dataclasses had them;
the hypothesis wire round-trip corpora and the reassembly layer rely on
frame equality and hashability.
"""

from __future__ import annotations

from typing import Any, ClassVar, List, Tuple

from repro.quic import wire

_varint_size = wire.varint_size

#: Maximum number of ACK ranges one ACK frame may carry (paper §4.1:
#: "the ACK frame ... can acknowledge up to 256 packet number ranges").
MAX_ACK_RANGES = 256

#: Upper bound on recycled instances kept per pooled frame class.
POOL_CAP = 4096


class _Value:
    """Dataclass-like value semantics for ``__slots__`` classes.

    Subclasses declare ``_fields``; equality, hashing and repr follow
    the frozen-dataclass contract: equal only to instances of the same
    class with equal field tuples, hash over the field tuple.
    """

    __slots__ = ()

    _fields: ClassVar[Tuple[str, ...]] = ()

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self._fields
        )

    def __hash__(self) -> int:
        return hash(
            (self.__class__,) + tuple(getattr(self, name) for name in self._fields)
        )

    def __repr__(self) -> str:
        args = ", ".join(f"{name}={getattr(self, name)!r}" for name in self._fields)
        return f"{self.__class__.__name__}({args})"


class Frame(_Value):
    """Base class; concrete frames are ``__slots__`` value classes."""

    __slots__ = ()

    #: Frames that must be retransmitted when their packet is lost.
    retransmittable = True

    #: Frame types managed by the object pool (see module docstring).
    poolable = False

    def wire_size(self) -> int:
        raise NotImplementedError

    def retain(self) -> None:
        """Pooling no-op; overridden by pooled frame types."""

    def release(self) -> None:
        """Pooling no-op; overridden by pooled frame types."""


class _PooledFrame(Frame):
    """Refcounted, recyclable frame base.

    ``retain()`` marks one outstanding observer (a recovery
    registration or an in-flight datagram); ``release()`` drops one and
    recycles the instance onto the class free list when the count hits
    zero.  Releasing a frame that was never retained is a no-op — the
    frame may be externally owned — so leaks are possible but
    use-after-recycle is not.
    """

    __slots__ = ("_refs",)

    poolable = True

    _refs: int
    _free: ClassVar[List[Any]] = []

    def retain(self) -> None:
        self._refs += 1

    def release(self) -> None:
        refs = self._refs
        if refs <= 0:
            return
        refs -= 1
        self._refs = refs
        if refs == 0:
            free = self._free
            if len(free) < POOL_CAP:
                self._recycle()
                free.append(self)

    def _recycle(self) -> None:
        """Drop large payload references before parking on the free list."""
        raise NotImplementedError

    @property
    def pool_refs(self) -> int:
        """Outstanding retain count (observability / tests)."""
        return self._refs


class StreamFrame(_PooledFrame):
    """Carries ``data`` of stream ``stream_id`` starting at ``offset``."""

    __slots__ = ("stream_id", "offset", "data", "fin", "_ws")

    _fields = ("stream_id", "offset", "data", "fin")
    _free: ClassVar[List["StreamFrame"]] = []

    stream_id: int
    offset: int
    data: bytes
    fin: bool
    _ws: int

    def __init__(
        self, stream_id: int, offset: int, data: bytes, fin: bool = False
    ) -> None:
        self._init(stream_id, offset, data, fin)

    def _init(self, stream_id: int, offset: int, data: bytes, fin: bool) -> None:
        self.stream_id = stream_id
        self.offset = offset
        self.data = data
        self.fin = fin
        self._refs = 0
        # type byte + varint stream id + varint offset + 16-bit length
        self._ws = 3 + _varint_size(stream_id) + _varint_size(offset) + len(data)

    @classmethod
    def acquire(
        cls, stream_id: int, offset: int, data: bytes, fin: bool = False
    ) -> "StreamFrame":
        """Pool-aware constructor: reuse a recycled instance if any."""
        free = cls._free
        if free:
            frame = free.pop()
            frame._init(stream_id, offset, data, fin)
            return frame
        return cls(stream_id, offset, data, fin)

    def _recycle(self) -> None:
        self.data = b""

    def wire_size(self) -> int:
        return self._ws

    def __len__(self) -> int:
        return len(self.data)


class AckFrame(_PooledFrame):
    """Acknowledges packet numbers received on one path.

    ``ranges`` are half-open ``[start, stop)`` intervals sorted in
    descending order (highest packets first), at most
    :data:`MAX_ACK_RANGES` of them.  ``ack_delay`` is the time the
    receiver held the largest acknowledged packet before acking —
    letting the peer compute unambiguous RTT estimates even when ACKs
    are delayed (paper §2).

    ``path_id`` identifies the packet-number space being acknowledged;
    MPQUIC lets the ACK for one path travel on any other path (§3).
    """

    __slots__ = ("path_id", "largest_acked", "ack_delay", "ranges", "_ws")

    retransmittable = False
    _fields = ("path_id", "largest_acked", "ack_delay", "ranges")
    _free: ClassVar[List["AckFrame"]] = []

    path_id: int
    largest_acked: int
    ack_delay: float
    ranges: Tuple[Tuple[int, int], ...]
    _ws: int

    def __init__(
        self,
        path_id: int,
        largest_acked: int,
        ack_delay: float,
        ranges: Tuple[Tuple[int, int], ...],
    ) -> None:
        self._init(path_id, largest_acked, ack_delay, ranges)

    def _init(
        self,
        path_id: int,
        largest_acked: int,
        ack_delay: float,
        ranges: Tuple[Tuple[int, int], ...],
    ) -> None:
        if len(ranges) > MAX_ACK_RANGES:
            raise ValueError(
                f"ACK frame limited to {MAX_ACK_RANGES} ranges, got {len(ranges)}"
            )
        self.path_id = path_id
        self.largest_acked = largest_acked
        self.ack_delay = ack_delay
        self.ranges = ranges
        self._refs = 0
        # type + path id + varint largest + 16-bit delay + 16-bit count
        size = 6 + _varint_size(largest_acked)
        for start, stop in ranges:
            size += _varint_size(stop - start) + _varint_size(start)
        self._ws = size

    @classmethod
    def acquire(
        cls,
        path_id: int,
        largest_acked: int,
        ack_delay: float,
        ranges: Tuple[Tuple[int, int], ...],
    ) -> "AckFrame":
        """Pool-aware constructor: reuse a recycled instance if any."""
        free = cls._free
        if free:
            frame = free.pop()
            frame._init(path_id, largest_acked, ack_delay, ranges)
            return frame
        return cls(path_id, largest_acked, ack_delay, ranges)

    def _recycle(self) -> None:
        self.ranges = ()

    def wire_size(self) -> int:
        return self._ws

    def acked_packet_count(self) -> int:
        return sum(stop - start for start, stop in self.ranges)


class WindowUpdateFrame(Frame):
    """Advertises a new flow-control limit.

    ``stream_id`` 0 denotes the connection-level window.  MPQUIC sends
    these on *all* paths to dodge receive-buffer deadlocks when one
    path stalls (paper §3, *Packet Scheduling*).
    """

    __slots__ = ("stream_id", "byte_offset", "_ws")

    _fields = ("stream_id", "byte_offset")

    stream_id: int
    byte_offset: int
    _ws: int

    def __init__(self, stream_id: int, byte_offset: int) -> None:
        self.stream_id = stream_id
        self.byte_offset = byte_offset
        self._ws = 9 + _varint_size(stream_id)

    def wire_size(self) -> int:
        return self._ws


class PathInfo(_Value):
    """Per-path statistics carried by a PATHS frame."""

    __slots__ = ("path_id", "rtt_us")

    _fields = ("path_id", "rtt_us")

    path_id: int
    rtt_us: int

    def __init__(self, path_id: int, rtt_us: int) -> None:
        self.path_id = path_id
        self.rtt_us = rtt_us


class PathsFrame(Frame):
    """Shares the sender's view of its active (and failed) paths.

    Lets a host detect under-performing or broken paths and speeds up
    handover: on path failure, the retransmitted request carries a
    PATHS frame telling the server not to answer on the dead path
    (paper §3 *Path Management* and §4.3).
    """

    __slots__ = ("active", "failed", "_ws")

    _fields = ("active", "failed")

    active: Tuple[PathInfo, ...]
    failed: Tuple[int, ...]
    _ws: int

    def __init__(
        self, active: Tuple[PathInfo, ...], failed: Tuple[int, ...] = ()
    ) -> None:
        self.active = active
        self.failed = failed
        self._ws = 1 + 1 + len(active) * (1 + 4) + 1 + len(failed)

    def wire_size(self) -> int:
        return self._ws


class AddAddressFrame(Frame):
    """Advertises one address owned by the sending host.

    Encrypted and authenticated, so it avoids the security concerns of
    MPTCP's cleartext ADD_ADDR (paper §3, *Path Management*).
    """

    __slots__ = ("address", "_ws")

    _fields = ("address",)

    address: str
    _ws: int

    def __init__(self, address: str) -> None:
        self.address = address
        self._ws = 1 + 1 + len(address.encode())

    def wire_size(self) -> int:
        return self._ws


#: Wire size of a PATH_CHALLENGE / PATH_RESPONSE token, bytes.
PATH_TOKEN_SIZE = 8


class PathChallengeFrame(Frame):
    """Probes liveness of one path (RFC 9000 §8.2 style).

    Carries an opaque 8-byte token the peer must echo back in a
    PATH_RESPONSE *on the same path*; a matching echo proves the path
    forwards packets in both directions.  Probes are not retransmitted
    on loss — the liveness state machine's backed-off probe timer
    (see :mod:`repro.quic.connection`) is the retry mechanism — so the
    frame never arms the RTO machinery of a path already suspected
    dead.
    """

    __slots__ = ("data",)

    retransmittable = False
    _fields = ("data",)

    data: bytes

    def __init__(self, data: bytes) -> None:
        if len(data) != PATH_TOKEN_SIZE:
            raise ValueError(
                f"path challenge token must be {PATH_TOKEN_SIZE} bytes, "
                f"got {len(data)}"
            )
        self.data = data

    def wire_size(self) -> int:
        return 1 + PATH_TOKEN_SIZE


class PathResponseFrame(Frame):
    """Echoes a PATH_CHALLENGE token, validating the path it rode in on."""

    __slots__ = ("data",)

    retransmittable = False
    _fields = ("data",)

    data: bytes

    def __init__(self, data: bytes) -> None:
        if len(data) != PATH_TOKEN_SIZE:
            raise ValueError(
                f"path response token must be {PATH_TOKEN_SIZE} bytes, "
                f"got {len(data)}"
            )
        self.data = data

    def wire_size(self) -> int:
        return 1 + PATH_TOKEN_SIZE


class PingFrame(Frame):
    """Solicits an ACK; used to probe a path."""

    __slots__ = ()

    def wire_size(self) -> int:
        return 1


class HandshakeFrame(Frame):
    """Crypto handshake message (QUIC crypto, 1-RTT).

    ``kind`` is ``"CHLO"`` (client hello) or ``"SHLO"`` (server hello).
    ``length`` models the size of the real crypto payload.
    """

    __slots__ = ("kind", "length")

    _fields = ("kind", "length")

    kind: str
    length: int

    def __init__(self, kind: str, length: int = 0) -> None:
        self.kind = kind
        self.length = length

    def wire_size(self) -> int:
        return 1 + 2 + self.length


class ConnectionCloseFrame(Frame):
    """Terminates the connection.

    Never retransmitted by loss recovery: a close either arrives or the
    peer's own lifetime limits (idle timeout) finish the job, matching
    RFC 9000 §10.2's closing/draining behaviour.
    """

    __slots__ = ("error_code", "reason")

    retransmittable = False
    _fields = ("error_code", "reason")

    error_code: int
    reason: str

    def __init__(self, error_code: int = 0, reason: str = "") -> None:
        self.error_code = error_code
        self.reason = reason

    def wire_size(self) -> int:
        return 1 + 4 + 2 + len(self.reason.encode())
