"""End-to-end tests of MPTCP scheduler variants and DSS integrity."""


from repro.mptcp.connection import MptcpConnection
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.tcp.config import TcpConfig

from tests.helpers import run_transfer


class TestRoundRobinSubflows:
    PATHS = [PathConfig(10, 30, 60), PathConfig(10, 30, 60)]

    def test_round_robin_completes_and_balances(self):
        cfg = TcpConfig(scheduler="round_robin")
        result = run_transfer(
            "mptcp", self.PATHS, file_size=1_000_000, tcp_config=cfg
        )
        assert result.ok
        sent = result.server.connection.bytes_sent_per_subflow()
        low, high = sorted(sent.values())
        # Equal paths, alternating chunks: close to an even split.
        assert low > high * 0.6

    def test_round_robin_on_heterogeneous_paths_still_works(self):
        cfg = TcpConfig(scheduler="round_robin")
        result = run_transfer(
            "mptcp",
            [PathConfig(10, 20, 60), PathConfig(2, 100, 100)],
            file_size=500_000,
            tcp_config=cfg,
        )
        assert result.ok


class TestDssIntegrity:
    def test_patterned_payload_with_loss_and_reinjection(self):
        """Reinjected chunks create duplicate DSS mappings; the
        connection-level reassembly must still produce exact bytes."""
        sim = Simulator()
        topo = TwoPathTopology(
            sim,
            [
                PathConfig(5, 25, 50, loss_percent=2.0),
                PathConfig(1, 120, 100, loss_percent=2.0),
            ],
            seed=5,
        )
        cfg = TcpConfig(
            initial_receive_window=40_000, max_receive_window=80_000
        )
        client = MptcpConnection(sim, topo.client, "client", cfg)
        server = MptcpConnection(sim, topo.server, "server", TcpConfig(
            initial_receive_window=40_000, max_receive_window=80_000
        ))
        payload = bytes((i * 31 + 7) % 253 for i in range(400_000))
        received = bytearray()
        state, done = {}, {}

        def osd(data, fin):
            if "s" not in state:
                state["s"] = True
                server.send_app_data(payload, fin=True)

        server.on_app_data = osd

        def ocd(data, fin):
            received.extend(data)
            if fin:
                done["t"] = sim.now

        client.on_app_data = ocd
        client.on_established = lambda: client.send_app_data(b"GET")
        client.connect()
        ok = sim.run_until(lambda: "t" in done, timeout=600.0)
        assert ok
        assert bytes(received) == payload

    def test_data_fin_on_exact_chunk_boundary(self):
        # File size a multiple of the MSS: DATA_FIN rides the last full
        # chunk rather than an empty one.
        cfg = TcpConfig(mss=1000)
        result = run_transfer(
            "mptcp",
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
            file_size=50_000,  # 50 chunks exactly
            tcp_config=cfg,
        )
        assert result.ok
        assert result.app.bytes_received == 50_000


class TestSubflowRttVisibility:
    def test_scheduler_sees_karn_noisy_rtt(self):
        """The scheduler-visible srtt is probe-based (few samples),
        while the congestion controller consumed many more per-ack
        samples — the paper's RTT-ambiguity modelling (§4.1)."""
        result = run_transfer(
            "mptcp",
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
            file_size=1_000_000,
        )
        flow = result.server.connection.subflows[0]
        assert flow.rtt.has_sample
        assert flow.rtt.samples_taken < flow.segments_received / 2
