"""TCP segments (with the MPTCP DSS option where applicable)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: IPv4 + TCP base headers.
BASE_HEADER = 40
#: Timestamp option (RFC 7323), always on in Linux.
TIMESTAMP_OPTION = 12
#: SACK option overhead: 2 bytes kind/len plus 8 per block.
SACK_BLOCK_SIZE = 8
SACK_BASE = 2
#: MPTCP DSS option (data sequence signal: mapping + data ack).
DSS_OPTION = 20


@dataclass
class Segment:
    """One TCP segment.

    ``seq`` is the sequence number of the first payload byte; SYN and
    FIN each consume one sequence number.  ``window_edge`` is the
    absolute receive-window limit (ack + scaled window) — carrying the
    absolute edge sidesteps window-scale bookkeeping without changing
    semantics.  ``sack_blocks`` holds at most 3 ``[start, stop)`` spans.
    MPTCP segments additionally carry ``dsn`` (the data-level sequence
    of the first payload byte) and ``data_ack`` (cumulative data-level
    acknowledgment).
    """

    seq: int
    ack: int
    data: bytes = b""
    syn: bool = False
    fin: bool = False
    window_edge: int = 0
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    # -- MPTCP DSS fields --
    dsn: Optional[int] = None
    data_ack: Optional[int] = None
    #: DATA_FIN: this segment carries the last byte of the data stream.
    data_fin: bool = False
    #: True when this segment is a subflow-level retransmission.
    retransmission: bool = False

    @property
    def wire_size(self) -> int:
        size = BASE_HEADER + TIMESTAMP_OPTION + len(self.data)
        if self.sack_blocks:
            size += SACK_BASE + SACK_BLOCK_SIZE * len(self.sack_blocks)
        if self.dsn is not None or self.data_ack is not None:
            size += DSS_OPTION
        return size

    @property
    def seq_length(self) -> int:
        """Sequence space consumed: payload plus SYN/FIN flags."""
        return len(self.data) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = ("S" if self.syn else "") + ("F" if self.fin else "")
        return (
            f"Segment(seq={self.seq}, ack={self.ack}, len={len(self.data)},"
            f" flags={flags or '.'}, sack={list(self.sack_blocks)})"
        )
