"""Interprocedural (whole-program) rules for ``repro.analysis``.

These rules run over the :class:`repro.analysis.graph.ProjectGraph`
rather than one module at a time, closing the per-module analyzer's
blind spots:

* ``seed-taint`` — nondeterministic values (``hash()``, ``id()``, wall
  clocks, pids, global-RNG draws, unseeded RNGs) must never flow into
  an RNG seed, even through helper functions and call chains;
* ``event-order`` — callbacks enqueued at equal simulated timestamps
  must not rely on accidental ordering: custom time-keyed heaps need
  an explicit tie-break, sibling same-time callbacks must not be
  coupled through shared state, and scheduling from set iteration is
  hash-order nondeterminism;
* ``sweep-purity`` — code reachable from the sweep worker entry point
  (``run_cell``) must not read or mutate module-level mutable state or
  the process environment: both are inputs the result cache key cannot
  see, i.e. cross-process races on result correctness;
* ``obs-schema`` — every ``emit()`` category must resolve to a value
  registered in ``repro.obs.events`` and category constants must not
  be re-declared outside the registry; ``sample()`` metrics must be in
  ``SERIES_METRICS``.

All four honour the line-scoped ``# repro: allow[rule-id]`` markers
(applied by :func:`repro.analysis.core.analyze_project`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, register_project
from repro.analysis.graph import (
    EmitSite,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    UNRESOLVED,
    _attr_chain,
)
from repro.analysis.rules import _GLOBAL_RANDOM_FUNCS, _TIME_FUNCS

# ----------------------------------------------------------------------
# seed-taint
# ----------------------------------------------------------------------

#: Parameter names that declare "this is a deterministic seed input".
_SEED_NAME = re.compile(r"(^|_)seed(s)?(_|$)")

#: datetime constructors that read host clocks.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: os-level nondeterminism sources.
_OS_FUNCS = frozenset({"getpid", "getppid", "urandom"})

#: uuid constructors that are time/host dependent.
_UUID_FUNCS = frozenset({"uuid1", "uuid4"})

#: Mutating container methods treated as writes by sweep-purity.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "pop", "popitem",
        "clear", "remove", "discard", "setdefault", "appendleft", "popleft",
        "__setitem__", "__delitem__",
    }
)

#: Module-level constructors that create shared mutable containers.
_MUTABLE_CTORS = frozenset(
    {
        "list", "dict", "set", "bytearray", "deque", "Counter",
        "defaultdict", "OrderedDict",
    }
)

#: Names whose presence in a heap entry's tie-break slot makes it
#: deterministic (sequence counters).
_COUNTER_NAME = re.compile(r"(^|_)(seq|count|counter|idx|index|i|n)(_|$)")

#: First-tuple-element names that denote a simulated-time key.
_TIME_KEY_NAME = re.compile(
    r"(^|_)(time|now|deadline|when|at|t|expiry|fire)(_|$)"
)


def _is_seed_name(name: str) -> bool:
    return bool(_SEED_NAME.search(name))


@dataclass
class _TaintSummary:
    """Interprocedural facts about one function.

    ``return_labels`` may contain concrete source descriptions
    (``"hash() at mod.py:12"``) and symbolic parameter labels
    (``"param:name"``) meaning "the return value carries whatever the
    caller passes for that parameter".  ``seed_sink_params`` are the
    parameters that flow — possibly through further calls — into an
    RNG seed position.
    """

    return_labels: Set[str] = field(default_factory=set)
    seed_sink_params: Set[str] = field(default_factory=set)

    def snapshot(self) -> Tuple[frozenset, frozenset]:
        return frozenset(self.return_labels), frozenset(self.seed_sink_params)


class _TaintPass:
    """One abstract-interpretation pass over a function body."""

    def __init__(
        self,
        rule: "SeedTaintRule",
        graph: ProjectGraph,
        info: FunctionInfo,
        summaries: Dict[str, _TaintSummary],
        report: bool,
        findings: List[Finding],
    ) -> None:
        self.rule = rule
        self.graph = graph
        self.info = info
        self.mod = graph.modules[info.module]
        self.summaries = summaries
        self.report = report
        self.findings = findings
        self.summary = summaries[info.qname]
        self.env: Dict[str, Set[str]] = {
            p: {f"param:{p}"} for p in info.params
        }

    # -- expression labels -------------------------------------------------

    def eval(self, expr: Optional[ast.expr]) -> Set[str]:
        if expr is None:
            return set()
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            # ``x.attr`` carries x's labels (a draw bound to a tainted
            # object, ``self.seed`` on a tainted receiver, ...).
            return self.eval(expr.value)
        labels: Set[str] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                labels |= self.eval(child)
            elif isinstance(child, ast.comprehension):
                labels |= self.eval(child.iter)
        return labels

    def _source(self, desc: str, node: ast.AST) -> Set[str]:
        return {f"{desc} at {self.mod.rel_path}:{getattr(node, 'lineno', 0)}"}

    def _eval_call(self, call: ast.Call) -> Set[str]:
        arg_exprs = list(call.args) + [kw.value for kw in call.keywords]
        arg_labels = [self.eval(a) for a in arg_exprs]
        chain = _attr_chain(call.func)
        parts = chain.split(".") if chain else []
        tail = parts[-1] if parts else ""

        # Intrinsic nondeterminism sources.
        if chain in ("hash", "id"):
            out = self._source(f"{chain}()", call)
            for labels in arg_labels:
                out |= labels
            return out
        if len(parts) == 2 and parts[0] == "time" and tail in _TIME_FUNCS:
            return self._source(f"{chain}()", call)
        if (
            len(parts) >= 2
            and parts[-2] in ("datetime", "date")
            and tail in _DATETIME_FUNCS
        ):
            return self._source(f"{chain}()", call)
        if len(parts) == 2 and parts[0] == "os" and tail in _OS_FUNCS:
            return self._source(f"{chain}()", call)
        if len(parts) >= 1 and tail in _UUID_FUNCS:
            return self._source(f"{chain}()", call)
        if (
            len(parts) == 2
            and parts[0] == "random"
            and tail in _GLOBAL_RANDOM_FUNCS
        ):
            return self._source(f"global RNG {chain}()", call)

        # RNG constructions: the object carries its seed's labels; an
        # argument-less construction is itself a nondeterminism source.
        if tail in ("Random", "default_rng"):
            if not call.args and not call.keywords:
                return self._source(f"unseeded {tail}()", call)
            seed_arg = call.args[0] if call.args else call.keywords[0].value
            self._check_sink(
                seed_arg, self.eval(seed_arg), call, f"{tail}() seed"
            )
            out: Set[str] = set()
            for labels in arg_labels:
                out |= labels
            return out
        if tail == "seed" and isinstance(call.func, ast.Attribute) and call.args:
            # rng.seed(x): x is a seed sink; the call returns None.
            receiver = self.eval(call.func.value)
            if receiver or True:
                self._check_sink(
                    call.args[0], self.eval(call.args[0]), call, "rng.seed()"
                )
            return set()

        # Project callees: map arguments through their summaries.
        targets = self.graph.resolve_callable(self.info, call.func)
        if targets:
            out = set()
            for qname in targets:
                out |= self._apply_callee(qname, call, arg_exprs, arg_labels)
            return out

        # Unknown callee: taint propagates through (str(), min(), ...).
        out = set()
        if isinstance(call.func, ast.Attribute):
            out |= self.eval(call.func.value)
        for labels in arg_labels:
            out |= labels
        # Seed-named keywords are declared sinks even on unknown callees
        # (dataclass constructors, external APIs).
        for kw in call.keywords:
            if kw.arg is not None and _is_seed_name(kw.arg):
                self._check_sink(
                    kw.value, self.eval(kw.value), kw.value,
                    f"seed parameter `{kw.arg}`",
                )
        return out

    def _apply_callee(
        self,
        qname: str,
        call: ast.Call,
        arg_exprs: List[ast.expr],
        arg_labels: List[Set[str]],
    ) -> Set[str]:
        callee = self.graph.functions[qname]
        summary = self.summaries.setdefault(qname, _TaintSummary())
        params = list(callee.params)
        bound_method = (
            callee.class_qname is not None
            and isinstance(call.func, ast.Attribute)
            and params
            and params[0] in ("self", "cls")
        )
        if bound_method:
            params = params[1:]
        # Map call arguments onto parameter names.
        param_args: Dict[str, Tuple[ast.expr, Set[str]]] = {}
        for i, expr in enumerate(call.args):
            if i < len(params):
                param_args[params[i]] = (expr, arg_labels[i])
        for j, kw in enumerate(call.keywords):
            if kw.arg is not None:
                param_args[kw.arg] = (
                    kw.value, arg_labels[len(call.args) + j]
                )
        # Arguments flowing into the callee's seed sinks.
        for pname, (expr, labels) in param_args.items():
            if pname in summary.seed_sink_params or _is_seed_name(pname):
                self._check_sink(
                    expr, labels, expr,
                    f"seed parameter `{pname}` of {callee.name}()",
                )
        # The call's value: concrete return sources plus pass-through
        # parameter labels mapped back to this site's arguments.
        out: Set[str] = set()
        for label in summary.return_labels:
            if label.startswith("param:"):
                pname = label[len("param:"):]
                if pname in param_args:
                    out |= param_args[pname][1]
            else:
                out.add(label)
        return out

    def _check_sink(
        self,
        expr: ast.expr,
        labels: Set[str],
        node: ast.AST,
        what: str,
    ) -> None:
        concrete = sorted(x for x in labels if not x.startswith("param:"))
        params = {x[len("param:"):] for x in labels if x.startswith("param:")}
        self.summary.seed_sink_params |= params & set(self.info.params)
        if concrete and self.report:
            self.findings.append(
                Finding(
                    path=str(self.mod.path),
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule=self.rule.rule_id,
                    message=(
                        f"nondeterministic value reaches {what}: "
                        f"tainted by {concrete[0]}"
                    ),
                )
            )

    # -- statements --------------------------------------------------------

    def run(self) -> None:
        body = self.info.node.body  # type: ignore[attr-defined]
        # Two passes pick up loop-carried taint.
        for _ in range(2):
            for stmt in body:
                self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested functions are analyzed separately
        if isinstance(stmt, ast.Assign):
            labels = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(labels)
        elif isinstance(stmt, ast.Return):
            self.summary.return_labels |= self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.eval(stmt.iter))
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.While, ast.If)):
            self.eval(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in (
                stmt.body + stmt.orelse + stmt.finalbody
                + [s for h in stmt.handlers for s in h.body]
            ):
                self._stmt(sub)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)

    def _bind(self, target: ast.expr, labels: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)


@register_project
class SeedTaintRule(ProjectRule):
    """No nondeterministic value may become (part of) an RNG seed."""

    rule_id = "seed-taint"
    rationale = (
        "RNGs are tainted at construction: a seed derived from hash(), "
        "id(), a wall clock, a pid or an unseeded RNG — even through "
        "helper functions — silently breaks bit-identical reruns and "
        "sweep-cache addressing; seeds must come from derive_seed or "
        "an explicit seed parameter."
    )

    #: Fixpoint bound over the call graph (summaries grow monotonically).
    MAX_ROUNDS = 8

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        summaries: Dict[str, _TaintSummary] = {
            q: _TaintSummary() for q in graph.functions
        }
        order = sorted(graph.functions)
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for qname in order:
                summary = summaries[qname]
                before = summary.snapshot()
                _TaintPass(
                    self, graph, graph.functions[qname], summaries,
                    report=False, findings=[],
                ).run()
                if summary.snapshot() != before:
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for qname in order:
            _TaintPass(
                self, graph, graph.functions[qname], summaries,
                report=True, findings=findings,
            ).run()
        return _dedupe(findings)


# ----------------------------------------------------------------------
# event-order
# ----------------------------------------------------------------------

@register_project
class EventOrderRule(ProjectRule):
    """Equal-timestamp events must not rely on accidental ordering."""

    rule_id = "event-order"
    rationale = (
        "The engine breaks same-timestamp ties by insertion order; a "
        "custom time-keyed heap without a sequence counter compares "
        "payloads (crash or nondeterminism), sibling callbacks "
        "scheduled at one timestamp must not race through shared "
        "state, and scheduling from set iteration couples the event "
        "order to PYTHONHASHSEED."
    )

    #: Call-graph depth bound for callback effect sets.
    EFFECT_DEPTH = 40

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_heap_entries(graph))
        findings.extend(self._check_sibling_races(graph))
        findings.extend(self._check_set_scheduling(graph))
        return _dedupe(findings)

    # -- (a) custom heaps without a tie-break ------------------------------

    def _check_heap_entries(self, graph: ProjectGraph) -> List[Finding]:
        findings = []
        for mod in graph.modules.values():
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _attr_chain(node.func) is not None
                    and _attr_chain(node.func).split(".")[-1] == "heappush"
                    and len(node.args) == 2
                ):
                    continue
                entry = node.args[1]
                if not isinstance(entry, ast.Tuple) or len(entry.elts) < 2:
                    continue
                first = entry.elts[0]
                first_name = _attr_chain(first) or ""
                if not _TIME_KEY_NAME.search(first_name.split(".")[-1]):
                    continue
                if not self._is_tie_break(entry.elts[1]):
                    findings.append(
                        Finding(
                            path=str(mod.path),
                            line=node.lineno,
                            col=node.col_offset + 1,
                            rule=self.rule_id,
                            message=(
                                "time-keyed heap entry without a sequence "
                                "tie-break: equal timestamps fall through "
                                "to comparing the payload (use "
                                "(time, next(counter), payload))"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _is_tie_break(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func) or ""
            if chain.split(".")[-1] in ("next", "int"):
                return True
        chain = _attr_chain(node)
        if chain is not None and _COUNTER_NAME.search(chain.split(".")[-1]):
            return True
        return False

    # -- (b) order-coupled same-time siblings ------------------------------

    def _effects(
        self,
        graph: ProjectGraph,
        qname: str,
        cache: Dict[str, Tuple[Set[str], Set[str]]],
        seen: Optional[Set[str]] = None,
    ) -> Tuple[Set[str], Set[str]]:
        """(writes, reads) of ``self.*`` attributes, callees included."""
        if qname in cache:
            return cache[qname]
        if seen is None:
            seen = set()
        if qname in seen or len(seen) > self.EFFECT_DEPTH:
            return set(), set()
        seen.add(qname)
        info = graph.functions.get(qname)
        if info is None:
            return set(), set()
        writes: Set[str] = set()
        reads: Set[str] = set()
        for node in graph._own_body(info.node):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ) and node.value.id == "self":
                label = f"self.{node.attr}"
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.add(label)
                else:
                    reads.add(label)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATORS:
                base = node.func.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    writes.add(f"self.{base.attr}")
        for callee in graph.callees(qname):
            sub_w, sub_r = self._effects(graph, callee, cache, seen)
            writes |= sub_w
            reads |= sub_r
        cache[qname] = (writes, reads)
        return writes, reads

    def _check_sibling_races(self, graph: ProjectGraph) -> List[Finding]:
        findings = []
        by_function: Dict[str, List[Tuple[FunctionInfo, ast.Call, Tuple[str, ...]]]] = {}
        for info, node, _expr, targets in graph.schedule_sites():
            if node.args and targets:
                by_function.setdefault(info.qname, []).append(
                    (info, node, targets)
                )
        effect_cache: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for sites in by_function.values():
            groups: Dict[str, List[Tuple[FunctionInfo, ast.Call, Tuple[str, ...]]]] = {}
            for info, node, targets in sites:
                groups.setdefault(ast.dump(node.args[0]), []).append(
                    (info, node, targets)
                )
            for group in groups.values():
                if len(group) < 2:
                    continue
                # Document order, so the finding lands on the later site.
                group.sort(key=lambda item: (item[1].lineno, item[1].col_offset))
                for i in range(len(group)):
                    for j in range(i + 1, len(group)):
                        info_a, node_a, targets_a = group[i]
                        info_b, node_b, targets_b = group[j]
                        if set(targets_a) == set(targets_b):
                            continue  # same callback: a tick pattern
                        w_a: Set[str] = set()
                        r_a: Set[str] = set()
                        for t in targets_a:
                            w, r = self._effects(graph, t, effect_cache)
                            w_a |= w
                            r_a |= r
                        w_b: Set[str] = set()
                        r_b: Set[str] = set()
                        for t in targets_b:
                            w, r = self._effects(graph, t, effect_cache)
                            w_b |= w
                            r_b |= r
                        shared = (w_a & (r_b | w_b)) | (w_b & r_a)
                        if not shared:
                            continue
                        mod = graph.modules[info_b.module]
                        findings.append(
                            Finding(
                                path=str(mod.path),
                                line=node_b.lineno,
                                col=node_b.col_offset + 1,
                                rule=self.rule_id,
                                message=(
                                    "same-timestamp sibling callbacks are "
                                    f"order-coupled through {sorted(shared)[0]}"
                                    "; their relative order is only the "
                                    "insertion-order tie-break — make the "
                                    "ordering explicit"
                                ),
                            )
                        )
        return findings

    # -- (c) scheduling from set iteration ---------------------------------

    def _check_set_scheduling(self, graph: ProjectGraph) -> List[Finding]:
        findings = []
        for info in graph.functions.values():
            mod = graph.modules[info.module]
            set_names = self._set_typed_names(info)
            for node in graph._own_body(info.node):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if not self._is_set_iter(node.iter, set_names):
                    continue
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("schedule", "schedule_at")
                    ):
                        findings.append(
                            Finding(
                                path=str(mod.path),
                                line=sub.lineno,
                                col=sub.col_offset + 1,
                                rule=self.rule_id,
                                message=(
                                    "schedules events while iterating a "
                                    "set: enqueue order (and so the "
                                    "tie-break) follows hash order; "
                                    "iterate sorted(...) instead"
                                ),
                            )
                        )
                        break
        return findings

    @staticmethod
    def _set_typed_names(info: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        node = info.node
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
                if isinstance(target, ast.Name) and (
                    isinstance(value, (ast.Set, ast.SetComp))
                    or (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("set", "frozenset")
                    )
                ):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_set_iter(iter_node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(iter_node, ast.Name) and iter_node.id in set_names:
            return True
        if isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
        return False


# ----------------------------------------------------------------------
# sweep-purity
# ----------------------------------------------------------------------

#: Modules whose module-level state is exempt: the observability layer
#: (metrics registry, sanitizer flag) is deliberately process-local and
#: never feeds results — see docs/static-analysis.md.
PURITY_EXEMPT = ("obs/", "util/sanitize.py")


@register_project
class SweepPurityRule(ProjectRule):
    """No shared module state or env reads on the sweep worker path."""

    rule_id = "sweep-purity"
    rationale = (
        "Code reachable from run_cell executes in ProcessPoolExecutor "
        "workers (and from worker_loop in independent distributed "
        "worker processes); module-level mutable state and os.environ "
        "reads are "
        "inputs the result-cache key cannot see, so they silently "
        "decide what a cached cell *means* — a cross-process race on "
        "result correctness.  ALL-CAPS registries and the obs/sanitize "
        "layers are exempt by convention."
    )

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        state = self._module_state(graph)
        reachable = graph.reachable_from(graph.sweep_worker_entries())
        findings: List[Finding] = []
        for qname in sorted(reachable):
            info = graph.functions[qname]
            findings.extend(self._check_function(graph, info, state))
        return _dedupe(findings)

    def _exempt(self, mod: ModuleInfo) -> bool:
        rel = mod.rel_path
        return any(
            rel.startswith(pat) or f"/{pat}" in f"/{rel}"
            if pat.endswith("/")
            else rel == pat or rel.endswith("/" + pat)
            for pat in PURITY_EXEMPT
        )

    def _module_state(self, graph: ProjectGraph) -> Dict[str, Set[str]]:
        """module name -> names of module-level mutable state.

        ALL-CAPS names are treated as declared constants/registries and
        skipped; dunder names likewise.  A name *rebound* through a
        ``global`` statement counts as state regardless of its
        initializer.
        """
        state: Dict[str, Set[str]] = {}
        for mod in graph.modules.values():
            if self._exempt(mod):
                continue
            names: Set[str] = set()
            for name, value in mod.assigns.items():
                if name.isupper() or name.startswith("__"):
                    continue
                if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                    names.add(name)
                elif isinstance(value, ast.Call):
                    func = value.func
                    ctor = _attr_chain(func)
                    base = ctor.split(".")[-1] if ctor else ""
                    if base in _MUTABLE_CTORS:
                        names.add(name)
                    else:
                        kind, _q = graph.resolve_symbol(mod, ctor or "")
                        if kind == "class":
                            names.add(name)
            # global-rebound names are state even without a mutable init.
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        if not name.isupper() and name in mod.assigns:
                            names.add(name)
            if names:
                state[mod.name] = names
        return state

    def _check_function(
        self,
        graph: ProjectGraph,
        info: FunctionInfo,
        state: Dict[str, Set[str]],
    ) -> List[Finding]:
        mod = graph.modules[info.module]
        findings: List[Finding] = []
        own_state = state.get(mod.name, set())
        local_names = self._local_bindings(info)
        global_decls: Set[str] = set()
        for node in graph._own_body(info.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        def report(node: ast.AST, owner: str, name: str, kind: str) -> None:
            findings.append(
                Finding(
                    path=str(mod.path),
                    line=getattr(node, "lineno", info.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    rule=self.rule_id,
                    message=(
                        f"{kind} module-level mutable state `{owner}.{name}` "
                        "from code reachable from run_cell: a cache-key-"
                        "invisible input and a cross-process hazard"
                    ),
                )
            )

        for node in graph._own_body(info.node):
            # os.environ access anywhere on the worker path.
            chain = _attr_chain(node) if isinstance(node, ast.Attribute) else None
            if chain is not None and chain.startswith("os.environ"):
                findings.append(
                    Finding(
                        path=str(mod.path),
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=self.rule_id,
                        message=(
                            "reads os.environ from code reachable from "
                            "run_cell: an input the result-cache key "
                            "cannot see"
                        ),
                    )
                )
            if isinstance(node, ast.Name):
                name = node.id
                is_state = name in own_state and (
                    name in global_decls or name not in local_names
                )
                if not is_state:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    if name in global_decls:
                        report(node, mod.name, name, "rebinds")
                else:
                    report(node, mod.name, name, "reads")
            elif isinstance(node, ast.Attribute):
                resolved = self._resolve_state_attr(graph, mod, node, state)
                if resolved is None:
                    continue
                owner, name = resolved
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    report(node, owner, name, "mutates")
                else:
                    report(node, owner, name, "reads")
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATORS:
                base = node.func.value
                if isinstance(base, ast.Name):
                    name = base.id
                    if name in own_state and name not in local_names:
                        report(node, mod.name, name, "mutates")
                elif isinstance(base, ast.Attribute):
                    resolved = self._resolve_state_attr(
                        graph, mod, base, state
                    )
                    if resolved is not None:
                        report(node, resolved[0], resolved[1], "mutates")
            elif isinstance(node, (ast.Subscript,)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id in own_state and base.id not in local_names:
                        report(node, mod.name, base.id, "mutates")
                elif isinstance(base, ast.Attribute):
                    resolved = self._resolve_state_attr(
                        graph, mod, base, state
                    )
                    if resolved is not None:
                        report(node, resolved[0], resolved[1], "mutates")
        return findings

    @staticmethod
    def _resolve_state_attr(
        graph: ProjectGraph,
        mod: ModuleInfo,
        node: ast.Attribute,
        state: Dict[str, Set[str]],
    ) -> Optional[Tuple[str, str]]:
        """``alias.name`` access to another module's state, if any."""
        chain = _attr_chain(node)
        if chain is None or "." not in chain:
            return None
        head, attr = chain.rsplit(".", 1)
        target: Optional[str] = None
        if head in mod.module_aliases:
            target = mod.module_aliases[head]
        elif head in mod.symbol_imports:
            target = mod.symbol_imports[head]
        if target is None or target not in state:
            return None
        if attr in state[target]:
            return target, attr
        return None

    @staticmethod
    def _local_bindings(info: FunctionInfo) -> Set[str]:
        names: Set[str] = set(info.params)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not info.node:
                    names.add(node.name)
        return names


# ----------------------------------------------------------------------
# obs-schema
# ----------------------------------------------------------------------

@register_project
class ObsSchemaRule(ProjectRule):
    """Telemetry categories and metrics must match the registry."""

    rule_id = "obs-schema"
    rationale = (
        "The emit-site registry is only queryable if every category "
        "resolves to a value registered in repro.obs.events; a "
        "re-declared category constant or an off-registry sample() "
        "metric silently drifts from the taxonomy exporters and "
        "summaries key on."
    )

    def check(self, graph: ProjectGraph) -> Iterable[Finding]:
        registry = self._registry_module(graph)
        if registry is None:
            return []
        categories = graph.resolve_constant_name(registry, "CATEGORIES")
        if not isinstance(categories, tuple):
            return []
        series = graph.resolve_constant_name(registry, "SERIES_METRICS")
        series_metrics = (
            set(series) if isinstance(series, tuple) else None
        )
        findings: List[Finding] = []
        flagged_owners: Set[Tuple[str, str]] = set()
        for site in graph.emit_sites():
            findings.extend(
                self._check_emit_site(
                    graph, site, registry, set(categories), flagged_owners
                )
            )
        if series_metrics is not None:
            findings.extend(self._check_samples(graph, series_metrics))
        return _dedupe(findings)

    @staticmethod
    def _registry_module(graph: ProjectGraph) -> Optional[ModuleInfo]:
        mod = graph.find_module("obs.events")
        if mod is not None:
            return mod
        candidates = [
            m for m in graph.modules.values() if "CATEGORIES" in m.assigns
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _check_emit_site(
        self,
        graph: ProjectGraph,
        site: EmitSite,
        registry: ModuleInfo,
        categories: Set[str],
        flagged_owners: Set[Tuple[str, str]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        expr = site.category_expr
        if expr is None:
            return findings
        mod = graph.modules[site.module]
        if site.category is not None and site.category not in categories:
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    col=expr.col_offset + 1,
                    rule=self.rule_id,
                    message=(
                        f"emit() category {site.category!r} is not "
                        "registered in the telemetry taxonomy "
                        f"({registry.name}.CATEGORIES)"
                    ),
                )
            )
        # A constant that resolves to a literal defined outside the
        # registry module is drift waiting to happen: the local copy
        # will not follow a registry rename.
        if isinstance(expr, (ast.Name, ast.Attribute)):
            owner = graph.constant_owner(mod, expr)
            if (
                owner is not None
                and owner[0] != registry.name
                and owner not in flagged_owners
                and site.category is not None
            ):
                flagged_owners.add(owner)
                owner_mod = graph.modules[owner[0]]
                value = owner_mod.assigns.get(owner[1])
                findings.append(
                    Finding(
                        path=str(owner_mod.path),
                        line=getattr(value, "lineno", 1),
                        col=getattr(value, "col_offset", 0) + 1,
                        rule=self.rule_id,
                        message=(
                            f"category constant `{owner[1]}` re-declares "
                            f"{site.category!r} outside the registry; "
                            f"import it from {registry.name} instead"
                        ),
                    )
                )
        return findings

    def _check_samples(
        self, graph: ProjectGraph, series_metrics: Set[str]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for mod in graph.modules.values():
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sample"
                    and len(node.args) >= 5
                ):
                    continue
                metric = node.args[3]
                if isinstance(metric, ast.Constant) and isinstance(
                    metric.value, str
                ):
                    if metric.value not in series_metrics:
                        findings.append(
                            Finding(
                                path=str(mod.path),
                                line=metric.lineno,
                                col=metric.col_offset + 1,
                                rule=self.rule_id,
                                message=(
                                    f"sample() metric {metric.value!r} is "
                                    "not in SERIES_METRICS; register it "
                                    "or fix the name"
                                ),
                            )
                        )
        return findings


def _dedupe(findings: Sequence[Finding]) -> List[Finding]:
    seen: Set[Tuple[str, int, str, str]] = set()
    out: List[Finding] = []
    for f in sorted(findings):
        key = (f.path, f.line, f.rule, f.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out
