"""Tunable transport parameters shared by QUIC and MPQUIC endpoints."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class QuicConfig:
    """Configuration of one endpoint.

    The defaults mirror the paper's setup (§4.1): CUBIC congestion
    control for single path, OLIA for multipath, and a maximum receive
    window of 16 MB for both the connection and its streams.
    """

    #: Maximum wire size of one QUIC packet (header + frames), bytes.
    max_packet_size: int = 1350
    #: Maximum segment size used by congestion controllers.
    mss: int = 1300

    #: Congestion controller for single-path connections.  quic-go (and
    #: Chromium) ship CUBIC with 2-connection emulation enabled.
    cc_algorithm: str = "cubic2"
    #: Coupled controller used when multipath is enabled.
    multipath_cc: str = "olia"

    #: Initial / maximum receive windows (connection level).
    initial_connection_window: int = 3 * 16 * 1024
    max_connection_window: int = 16 * 1024 * 1024
    #: Initial / maximum receive windows (per stream).
    initial_stream_window: int = 2 * 16 * 1024
    max_stream_window: int = 16 * 1024 * 1024
    #: Whether receive windows auto-tune upward (quic-go / DRS style).
    window_autotune: bool = True
    #: Application read rate in bits/s (0 = the app consumes instantly).
    #: A positive value makes the endpoint receiver-limited: window
    #: credit is returned at this rate, so flow control throttles the
    #: peer — e.g. video playback or a slow disk.
    app_consume_rate_bps: float = 0.0

    #: Simulation fidelity for this connection's traffic.  ``"packet"``
    #: (the default) runs the full per-packet protocol machinery;
    #: ``"fluid"`` marks the connection as background load to be
    #: modelled analytically by :mod:`repro.netsim.fluid` — orders of
    #: magnitude fewer simulator events, suitable for cross-traffic
    #: whose only job is to occupy a bottleneck while the *measured*
    #: connections stay packet-level.
    fidelity: str = "packet"

    #: Multipath switch: a False value yields plain single-path QUIC.
    enable_multipath: bool = False
    #: Single-path QUIC only: on a potentially-failed path, migrate the
    #: connection to another interface (QUIC connection migration — the
    #: "hard handover" the paper contrasts with MPQUIC's seamless one).
    migrate_on_failure: bool = False
    #: Send a PING after this many seconds without transmitting (0 =
    #: disabled).  Keeps the RTO machinery armed on idle directions so
    #: a dead path is noticed even by a pure receiver.
    keepalive_interval: float = 0.0
    #: Packet scheduler name for multipath ('lowest_rtt', 'round_robin',
    #: 'lowest_rtt_no_dup', 'single').
    scheduler: str = "lowest_rtt"
    #: Send WINDOW_UPDATE frames on every active path (paper §3).  Can
    #: be disabled for the ablation study.
    window_update_all_paths: bool = True
    #: Duplicate traffic onto paths whose RTT is still unknown (§3).
    duplicate_on_unknown_rtt: bool = True
    #: Periodically exchange PATHS frames so both hosts keep "a global
    #: view about the active paths' performances" (§3); 0 = only on
    #: failure events.
    paths_frame_interval: float = 0.0

    #: Crypto handshake message sizes (bytes of CHLO / SHLO payload).
    chlo_size: int = 730
    shlo_size: int = 730
    #: 0-RTT resumption: the client holds cached server credentials and
    #: sends application data together with its CHLO (gQUIC supported
    #: this for repeat connections; the paper measures the 1-RTT case).
    zero_rtt: bool = False

    #: Path liveness probing (PATH_CHALLENGE / PATH_RESPONSE): interval
    #: before the first probe after a path turns potentially failed.
    probe_interval_initial: float = 0.2
    #: Ceiling of the exponential probe backoff.
    probe_interval_max: float = 2.0
    #: Multiplier applied to the probe interval after every probe.
    probe_backoff: float = 2.0
    #: Unanswered probes before the path is abandoned for good.
    path_max_probes: int = 6

    #: Connection lifetime limits: close with IdleTimeoutError after
    #: this many seconds without receiving anything (0 = disabled).
    idle_timeout: float = 0.0
    #: Abort with HandshakeTimeoutError when the handshake has not
    #: completed within this many seconds (0 = disabled).
    handshake_timeout: float = 0.0
    #: Draining period after close, in multiples of the current RTO
    #: (RFC 9000 §10.2 uses 3·PTO): how long a closed endpoint keeps
    #: answering stray peer packets with the final CONNECTION_CLOSE.
    drain_period_rtos: float = 3.0

    #: Loss detection: reordering threshold in packets.
    packet_reordering_threshold: int = 3
    #: Loss detection: time threshold as a fraction of RTT.
    time_reordering_fraction: float = 1.125
    #: Bounds for the retransmission timeout.
    min_rto: float = 0.2
    max_rto: float = 60.0
    #: RTO before any RTT sample exists.
    initial_rto: float = 0.5
