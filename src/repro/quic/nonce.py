"""Cryptographic-nonce uniqueness across paths (paper §3).

MPQUIC gives every path its own packet-number space, so the same
packet number can occur on two paths.  Since the AEAD nonce is derived
from the packet number, naive reuse would repeat a nonce under the same
key — catastrophic for AES-GCM-class ciphers.  The paper proposes two
mitigations:

1. **Unique-across-paths sequence numbers**: restrict a packet number
   to be used at most once over all paths.
2. **Path ID in the nonce**: mix the Path ID into the nonce derivation
   so equal packet numbers on different paths yield distinct nonces.

This module implements both so the design choice is executable and
testable.  The connection uses :class:`PathAwareNonce` (option 2, the
one MPQUIC standardisation later adopted); :class:`SharedNonceSpace`
exists to demonstrate option 1 and its cost.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

#: AEAD nonces in QUIC crypto are 12 bytes (96 bits).
NONCE_BITS = 96
#: Bits of the nonce reserved for the Path ID under option 2.
PATH_ID_BITS = 8


class NonceReuseError(Exception):
    """A nonce would be used twice under the same key."""


class PathAwareNonce:
    """Option 2: derive nonces from ``(path id, packet number)``.

    The Path ID occupies the top bits, making cross-path collisions
    structurally impossible; uniqueness within one path follows from
    monotonically increasing packet numbers (which the connection
    enforces — retransmissions always get fresh numbers).
    """

    def __init__(self) -> None:
        self._highest_pn: Dict[int, int] = {}  # path_id -> highest packet number seen

    def derive(self, path_id: int, packet_number: int) -> int:
        """Return the nonce for a packet; raises on misuse."""
        if not 0 <= path_id < (1 << PATH_ID_BITS):
            raise ValueError("path id out of nonce range")
        if packet_number < 0 or packet_number >= 1 << (NONCE_BITS - PATH_ID_BITS):
            raise ValueError("packet number out of nonce range")
        last = self._highest_pn.get(path_id)
        if last is not None and packet_number <= last:
            raise NonceReuseError(
                f"packet number {packet_number} reused on path {path_id}"
            )
        self._highest_pn[path_id] = packet_number
        return (path_id << (NONCE_BITS - PATH_ID_BITS)) | packet_number

    @staticmethod
    def would_collide(
        a: Tuple[int, int], b: Tuple[int, int]
    ) -> bool:
        """Do two (path id, packet number) pairs share a nonce?"""
        return a == b


class SharedNonceSpace:
    """Option 1: one packet-number space shared by all paths.

    A packet number may be consumed by at most one path.  Simple, but
    it reintroduces the cross-path coupling (and potential middlebox
    confusion) that per-path number spaces were designed to avoid —
    the trade-off the paper notes before preferring option 2.
    """

    def __init__(self) -> None:
        self._used: Set[int] = set()

    def derive(self, path_id: int, packet_number: int) -> int:
        if packet_number in self._used:
            raise NonceReuseError(
                f"packet number {packet_number} already consumed by another path"
            )
        self._used.add(packet_number)
        return packet_number
