"""The MPTCP connection: data sequence space over TCP subflows.

Follows Linux MPTCP v0.91 behaviour as described by the paper and by
Raiciu et al. (NSDI'12):

* data is **bound** to a subflow at transmission time (the scheduler
  fills each subflow's congestion window with MSS-sized chunks carrying
  DSS mappings) and subflow-level retransmissions must stay in sequence
  on the same subflow;
* a connection-level cumulative DATA_ACK and a **shared receive
  window** over the data sequence space;
* **ORP**: when the shared window blocks sending, the chunk at
  ``DATA_UNA`` is opportunistically reinjected on a subflow with free
  window and the subflow holding it is penalised (cwnd halved);
* after a subflow RTO, its outstanding chunks are also reinjected on
  the remaining subflows (handover behaviour), while the subflow itself
  still retransmits them in sequence — the duplicate traffic the paper
  notes limits MPTCP goodput;
* OLIA coupled congestion control and the default lowest-RTT scheduler.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Tuple

from repro.cc import OliaCoordinator, make_controller
from repro.mptcp.scheduler import SubflowScheduler, make_subflow_scheduler
from repro.netsim.engine import Simulator
from repro.netsim.node import Datagram, Host
from repro.netsim.trace import PacketTrace
from repro.quic.flowcontrol import ReceiveWindow
from repro.tcp.config import TcpConfig, TLS_MESSAGE_SIZES
from repro.tcp.flow import FlowOwner, TcpFlow
from repro.tcp.segment import Segment
from repro.util.ranges import RangeSet
from repro.util.reassembly import Reassembler


class _Mapping:
    """DSS mappings of one subflow, ordered by subflow sequence."""

    def __init__(self) -> None:
        self.starts: List[int] = []  # subflow seq of each chunk
        self.entries: List[Tuple[int, int, int]] = []  # (sf_start, dsn, length)

    def add(self, sf_start: int, dsn: int, length: int) -> None:
        self.starts.append(sf_start)
        self.entries.append((sf_start, dsn, length))

    def lookup(self, seq: int) -> Optional[Tuple[int, int, int]]:
        """Mapping entry covering subflow sequence ``seq``."""
        idx = bisect.bisect_right(self.starts, seq) - 1
        if idx < 0:
            return None
        entry = self.entries[idx]
        if entry[0] <= seq < entry[0] + entry[2]:
            return entry
        return None

    def dsn_ranges_bound(self) -> List[Tuple[int, int]]:
        """All (dsn_start, dsn_stop) chunks ever bound to the subflow."""
        return [(dsn, dsn + length) for _, dsn, length in self.entries]


class MptcpConnection(FlowOwner):
    """One endpoint of a Multipath TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        role: str,
        config: Optional[TcpConfig] = None,
        trace: Optional[PacketTrace] = None,
        initial_interface: int = 0,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        self.sim = sim
        self.host = host
        self.role = role
        self.config = config or TcpConfig()
        self.trace = trace
        self.initial_interface = initial_interface
        self.scheduler: SubflowScheduler = make_subflow_scheduler(
            self.config.scheduler, primary_interface=initial_interface
        )
        self._olia = (
            OliaCoordinator(mss=self.config.mss)
            if self.config.multipath_cc == "olia"
            else None
        )

        # One subflow per interface; only the initial one connects now.
        self.subflows: Dict[int, TcpFlow] = {}
        self._mappings: Dict[int, _Mapping] = {}
        for iface in host.interfaces:
            self._create_subflow(iface.index)
        host.set_datagram_handler(self._datagram_received)

        # --- data-level sender state ---
        self._dsn_buf = bytearray()
        self._dsn_next = 0  # next never-bound dsn
        self._dsn_fin: Optional[int] = None
        self._reinject = RangeSet()  # dsn ranges queued for rebinding
        self.data_una = 0
        self._peer_data_window_edge = self.config.initial_receive_window
        self._last_penalty: Dict[int, float] = {}
        self._last_orp_dsn = -1
        #: When the shared window first blocked sending (-1 = not
        #: blocked).  ORP waits out one RTT before reinjecting so a
        #: merely in-flight head chunk is not treated as stuck.
        self._window_blocked_since = -1.0

        # --- data-level receiver state ---
        self.reassembler = Reassembler()
        self._recv_window = ReceiveWindow(
            self.config.initial_receive_window,
            self.config.max_receive_window,
            autotune=self.config.window_autotune,
        )

        # --- TLS model (runs over the data sequence space) ---
        self._tls_bytes_expected = 0
        self._tls_stage = 0
        if role == "server" and self.config.use_tls:
            # Expect the ClientHello from the start: with multiple
            # subflows the first data may arrive on a join subflow
            # before the initial subflow finishes establishing.
            self._tls_bytes_expected = TLS_MESSAGE_SIZES["client_hello"]
        self.secure_established = False
        self.established_at: Optional[float] = None

        # --- app interface ---
        self.on_established: Optional[Callable[[], None]] = None
        self.on_app_data: Optional[Callable[[bytes, bool], None]] = None
        self.app_bytes_received = 0

        # --- stats ---
        self.reinjected_bytes = 0
        self.orp_events = 0
        self.penalisations = 0

    # ------------------------------------------------------------------
    # Subflow management
    # ------------------------------------------------------------------

    def _make_cc(self, interface_index: int):
        if self._olia is not None:
            return self._olia.path_controller(interface_index)
        return make_controller(self.config.multipath_cc, mss=self.config.mss)

    def _create_subflow(self, interface_index: int) -> TcpFlow:
        flow = TcpFlow(
            self.sim,
            self.host,
            interface_index,
            self.role,
            self.config,
            self._make_cc(interface_index),
            owner=self,
            mapped_delivery=True,
            trace=self.trace,
            name=f"mptcp-{self.role}-sf{interface_index}",
        )
        self.subflows[interface_index] = flow
        self._mappings[interface_index] = _Mapping()
        return flow

    def connect(self) -> None:
        """Client: 3-way handshake on the initial subflow.

        Additional subflows join only after the initial handshake
        completes (MP_JOIN requires the MP_CAPABLE exchange), costing
        one extra round trip before the second path can carry data —
        the startup disadvantage against MPQUIC (§3, Path Management).
        """
        if self.role != "client":
            raise ValueError("only clients connect()")
        self.subflows[self.initial_interface].connect()

    @property
    def initial_subflow(self) -> TcpFlow:
        return self.subflows[self.initial_interface]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def send_app_data(self, data: bytes, fin: bool = False) -> None:
        """Write application bytes onto the data sequence space."""
        if not self.secure_established:
            raise RuntimeError("connection not yet established")
        self._write_dsn(data, fin)

    def all_sent_data_acked(self) -> bool:
        if self._dsn_fin is None:
            return False
        return self.data_una >= self._dsn_fin

    @property
    def smoothed_rtt(self) -> float:
        rtts = [f.rtt.smoothed for f in self.subflows.values() if f.rtt.has_sample]
        return min(rtts) if rtts else 0.0

    def _write_dsn(self, data: bytes, fin: bool = False) -> None:
        self._dsn_buf += data
        if fin:
            self._dsn_fin = len(self._dsn_buf)
        self._push_data()

    # ------------------------------------------------------------------
    # Scheduler: bind DSN chunks to subflows
    # ------------------------------------------------------------------

    def _push_data(self) -> None:
        """Bind pending data to subflows, reinjections first."""
        while True:
            flow = self.scheduler.select(list(self.subflows.values()))
            if flow is None:
                return
            if self._reinject:
                dsn_start, dsn_stop = next(iter(self._reinject))
                dsn_stop = min(dsn_stop, dsn_start + self.config.mss)
                self._reinject.remove(dsn_start, dsn_stop)
                self._bind_chunk(flow, dsn_start, dsn_stop)
                self.reinjected_bytes += dsn_stop - dsn_start
                continue
            if self._dsn_next < len(self._dsn_buf):
                if self._dsn_next >= self._peer_data_window_edge:
                    # Shared receive window is closed: try ORP.
                    if self._window_blocked_since < 0:
                        self._window_blocked_since = self.sim.now
                    self._maybe_orp(flow, window_blocked=True)
                    return
                self._window_blocked_since = -1.0
                dsn_start = self._dsn_next
                dsn_stop = min(
                    len(self._dsn_buf),
                    dsn_start + self.config.mss,
                    self._peer_data_window_edge,
                )
                self._dsn_next = dsn_stop
                self._bind_chunk(flow, dsn_start, dsn_stop)
                continue
            # No new data: a free subflow may rescue the stream tail,
            # but only from a subflow that looks dead (otherwise plain
            # idleness would spam duplicates).
            if self.data_una < self._dsn_next:
                self._maybe_orp(flow, window_blocked=False)
            return

    def _bind_chunk(self, flow: TcpFlow, dsn_start: int, dsn_stop: int) -> None:
        """Bind data chunk [dsn_start, dsn_stop) to ``flow``.

        From here on the bytes live in the subflow's sequence space:
        subflow-level retransmissions are pinned to this path, exactly
        the inflexibility MPQUIC removes (§3, Packet Scheduling).
        """
        mapping = self._mappings[flow.interface_index]
        mapping.add(flow.buffered_end_seq, dsn_start, dsn_stop - dsn_start)
        flow.write(bytes(self._dsn_buf[dsn_start:dsn_stop]))

    def _maybe_orp(self, free_flow: TcpFlow, window_blocked: bool = True) -> None:
        """Opportunistic Retransmission and Penalisation [Raiciu12].

        The chunk holding up the shared window (at DATA_UNA) is
        reinjected on the free subflow; the subflow it was bound to is
        penalised by halving its congestion window (at most once per
        RTT).
        """
        if not self.config.enable_orp:
            return
        if self.data_una >= len(self._dsn_buf):
            return
        if self.data_una == self._last_orp_dsn:
            return  # already reinjected this chunk; wait for progress
        holder = self._holder_of(self.data_una)
        if holder is None or holder.interface_index == free_flow.interface_index:
            return
        if not window_blocked and not holder.potentially_failed:
            return
        if (
            window_blocked
            and not holder.potentially_failed
            and self.sim.now - self._window_blocked_since
            < max(holder.rtt.smoothed, 0.01)
        ):
            # The head chunk may simply still be in flight: give it one
            # round trip before declaring it stuck.
            return
        chunk_stop = min(self.data_una + self.config.mss, len(self._dsn_buf))
        self.orp_events += 1
        self._last_orp_dsn = self.data_una
        self._bind_chunk(free_flow, self.data_una, chunk_stop)
        self.reinjected_bytes += chunk_stop - self.data_una
        # Penalise the slow subflow, rate-limited to once per RTT.
        now = self.sim.now
        last = self._last_penalty.get(holder.interface_index, -1.0)
        if now - last > max(holder.rtt.smoothed, 0.01):
            self._last_penalty[holder.interface_index] = now
            self.penalisations += 1
            cc = holder.cc
            # "We halve its congestion window" [Raiciu12].  ssthresh is
            # left alone: the penalty is a transient brake, not a
            # permanent cap (a slow-starting subflow may resume).
            cc.cwnd_bytes = max(cc.cwnd_bytes / 2.0, 2 * self.config.mss)

    def _holder_of(self, dsn: int) -> Optional[TcpFlow]:
        """Most recent subflow a DSN byte was bound to."""
        best: Optional[TcpFlow] = None
        for iface, mapping in self._mappings.items():
            for _sf_start, m_dsn, length in reversed(mapping.entries):
                if m_dsn <= dsn < m_dsn + length:
                    best = self.subflows[iface]
                    break
        return best

    # ------------------------------------------------------------------
    # FlowOwner hooks
    # ------------------------------------------------------------------

    def flow_established(self, flow: TcpFlow) -> None:
        if flow.interface_index == self.initial_interface:
            if self.role == "client":
                self._open_joins()
                self._start_tls_client()
            else:
                if self.config.use_tls:
                    self._tls_bytes_expected = TLS_MESSAGE_SIZES["client_hello"]
                    self._tls_stage = 0
                else:
                    self._secure_done()
        self._push_data()

    def _open_joins(self) -> None:
        for iface, flow in self.subflows.items():
            if iface != self.initial_interface and self.host.interfaces[iface].up:
                flow.connect()

    def _start_tls_client(self) -> None:
        if not self.config.use_tls:
            self._secure_done()
            return
        self._tls_bytes_expected = TLS_MESSAGE_SIZES["server_hello"]
        self._tls_stage = 0
        self._write_dsn(b"\x16" * TLS_MESSAGE_SIZES["client_hello"])

    def flow_mapped_data(
        self, flow: TcpFlow, dsn: int, data: bytes, data_fin: bool
    ) -> None:
        if data_fin:
            self.reassembler.set_final_size(dsn + len(data))
        new_highest = dsn + len(data)
        if new_highest > self._recv_window.highest_received:
            self._recv_window.on_data_received(
                min(new_highest, self._recv_window.advertised_limit)
            )
        self.reassembler.insert(dsn, data)
        ready = self.reassembler.pop_ready()
        if not ready and not self.reassembler.is_complete():
            return
        self._recv_window.on_data_consumed(len(ready))
        new_limit = self._recv_window.maybe_update(self.sim.now, self.smoothed_rtt)
        payload = self._consume_tls(ready)
        fin = self.reassembler.is_complete()
        if payload or fin:
            self.app_bytes_received += len(payload)
            if self.on_app_data:
                self.on_app_data(payload, fin)
        if new_limit is not None:
            # The wider window rides a pure ACK on the delivering
            # subflow (other subflows pick it up on their own ACKs).
            flow.send_ack()

    def _consume_tls(self, data: bytes) -> bytes:
        if not self.config.use_tls or self.secure_established:
            return data
        sizes = TLS_MESSAGE_SIZES
        while data and self._tls_bytes_expected > 0:
            take = min(len(data), self._tls_bytes_expected)
            self._tls_bytes_expected -= take
            data = data[take:]
            if self._tls_bytes_expected == 0:
                if self.role == "server":
                    if self._tls_stage == 0:
                        self._write_dsn(b"\x16" * sizes["server_hello"])
                        self._tls_bytes_expected = sizes["client_finished"]
                        self._tls_stage = 1
                    else:
                        self._write_dsn(b"\x16" * sizes["server_finished"])
                        self._secure_done()
                else:
                    if self._tls_stage == 0:
                        self._write_dsn(b"\x16" * sizes["client_finished"])
                        self._tls_bytes_expected = sizes["server_finished"]
                        self._tls_stage = 1
                    else:
                        self._secure_done()
        return data

    def _secure_done(self) -> None:
        self.secure_established = True
        self.established_at = self.sim.now
        if self.on_established:
            self.on_established()

    def flow_window_edge(self, flow: TcpFlow) -> int:
        return self._recv_window.advertised_limit

    def flow_data_ack(self, flow: TcpFlow) -> Optional[int]:
        return self.reassembler.read_offset

    def flow_on_ack(self, flow: TcpFlow, data_ack: Optional[int]) -> None:
        if data_ack is not None and data_ack > self.data_una:
            self.data_una = data_ack
            self._reinject.remove(0, data_ack)
            self._window_blocked_since = -1.0  # head progressed
        # The segment's window_edge was absorbed by the flow; mirror it
        # into the shared (DSN) window edge.
        if flow.peer_window_edge > self._peer_data_window_edge:
            self._peer_data_window_edge = flow.peer_window_edge
        self._push_data()

    def flow_on_rto(self, flow: TcpFlow) -> None:
        """Reinject data stuck on a timed-out subflow.

        Linux's ``mptcp_retransmit_timer`` reinjects the head-of-queue
        segment on another subflow per timeout.  Once the subflow is
        deemed potentially failed (no activity since last transmission,
        pull #70) everything it still holds is reinjected so a handover
        can complete (§4.3); meanwhile the subflow itself also
        retransmits in sequence — duplicate traffic the paper counts
        against MPTCP.
        """
        if not self.config.reinject_on_rto:
            return
        mapping = self._mappings[flow.interface_index]
        for sf_start, dsn, length in mapping.entries:
            if sf_start + length <= flow.snd_una:
                continue  # delivered and acknowledged on the subflow
            dsn_stop = dsn + length
            if dsn_stop <= self.data_una:
                continue
            self._reinject.add(max(dsn, self.data_una), dsn_stop)
            if not flow.potentially_failed:
                break  # ordinary RTO: reinject only the head chunk
        self._push_data()

    def flow_dss_for_range(
        self, flow: TcpFlow, start: int, stop: int
    ) -> Optional[Tuple[int, bool]]:
        entry = self._mappings[flow.interface_index].lookup(start)
        if entry is None:
            return None
        sf_start, dsn, length = entry
        seg_dsn = dsn + (start - sf_start)
        seg_len = stop - start
        data_fin = (
            self._dsn_fin is not None and seg_dsn + seg_len == self._dsn_fin
        )
        return seg_dsn, data_fin

    def flow_mapping_stop(self, flow: TcpFlow, start: int) -> int:
        entry = self._mappings[flow.interface_index].lookup(start)
        if entry is None:
            return 1 << 62
        sf_start, _dsn, length = entry
        return sf_start + length

    # ------------------------------------------------------------------
    # Demux and teardown
    # ------------------------------------------------------------------

    def _datagram_received(self, datagram: Datagram, interface_index: int) -> None:
        segment: Segment = datagram.payload
        flow = self.subflows.get(interface_index)
        if flow is not None:
            flow.segment_received(segment)

    def close_timers(self) -> None:
        for flow in self.subflows.values():
            flow.close_timers()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def bytes_sent_per_subflow(self) -> Dict[int, int]:
        return {i: f.bytes_sent for i, f in self.subflows.items()}

    def subflow_stats(self) -> Dict[int, Dict[str, float]]:
        out: Dict[int, Dict[str, float]] = {}
        for i, f in self.subflows.items():
            out[i] = {
                "segments_sent": f.segments_sent,
                "bytes_sent": f.bytes_sent,
                "bytes_retransmitted": f.bytes_retransmitted,
                "srtt": f.rtt.smoothed,
                "rtos": f.rto_count,
                "fast_retransmits": f.fast_retransmits,
                "potentially_failed": float(f.potentially_failed),
            }
        return out
