"""QUIC packets: containers of frames.

Each packet carries a small public header (flags, connection ID, packet
number and — under multipath — the Path ID) and a payload of frames.
Packet numbers increase monotonically within one path's number space
and are never reused, even for retransmitted data (which removes the
retransmission ambiguity that plagues TCP RTT estimation; paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.quic import wire
from repro.quic.frames import Frame


@dataclass(frozen=True)
class Packet:
    """An outgoing or incoming QUIC packet."""

    path_id: int
    packet_number: int
    frames: Tuple[Frame, ...]
    connection_id: int = 0
    multipath: bool = False

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire (header + frames), sans UDP/IP."""
        return wire.public_header_size(self.multipath) + sum(
            frame.wire_size() for frame in self.frames
        )

    @property
    def is_ack_eliciting(self) -> bool:
        """True when the peer must acknowledge this packet.

        Packets containing only ACK frames are not themselves acked,
        preventing infinite ACK ping-pong.
        """
        return any(frame.retransmittable for frame in self.frames)

    def encode(self) -> bytes:
        """Serialize to bytes (see :mod:`repro.quic.wire`)."""
        return wire.encode_packet(self)

    @staticmethod
    def decode(buf: bytes) -> "Packet":
        """Parse bytes back into a packet."""
        return wire.decode_packet(buf)


#: Per-datagram overhead charged by the simulator: IPv4 (20) + UDP (8).
UDP_IP_OVERHEAD = 28
