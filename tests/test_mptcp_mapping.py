"""Unit tests for MPTCP DSS mapping bookkeeping and the path manager."""


from repro.core.path_manager import PathManager
from repro.mptcp.connection import _Mapping
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.core.connection import MultipathQuicConnection
from repro.quic.config import QuicConfig


class TestMapping:
    def test_lookup_inside_chunks(self):
        m = _Mapping()
        m.add(1, 0, 1000)      # subflow seq 1..1001 -> dsn 0..1000
        m.add(1001, 5000, 500)  # subflow seq 1001..1501 -> dsn 5000..5500
        assert m.lookup(1) == (1, 0, 1000)
        assert m.lookup(1000) == (1, 0, 1000)
        assert m.lookup(1001) == (1001, 5000, 500)
        assert m.lookup(1500) == (1001, 5000, 500)

    def test_lookup_outside_returns_none(self):
        m = _Mapping()
        m.add(100, 0, 50)
        assert m.lookup(99) is None
        assert m.lookup(150) is None

    def test_lookup_empty(self):
        assert _Mapping().lookup(5) is None

    def test_dsn_ranges_bound(self):
        m = _Mapping()
        m.add(1, 0, 10)
        m.add(11, 40, 5)
        assert m.dsn_ranges_bound() == [(0, 10), (40, 45)]

    def test_reinjected_chunk_creates_second_mapping(self):
        # The same DSN range can be bound twice (original + reinjection).
        m = _Mapping()
        m.add(1, 0, 10)
        m.add(11, 0, 10)  # reinjection of dsn [0, 10)
        assert m.lookup(1)[1] == 0
        assert m.lookup(11)[1] == 0


class TestPathManager:
    def make_connection(self, role="client"):
        sim = Simulator()
        topo = TwoPathTopology(
            sim,
            [PathConfig(10, 30, 50), PathConfig(10, 30, 50)],
            seed=1,
        )
        host = topo.client if role == "client" else topo.server
        return MultipathQuicConnection(sim, host, role, QuicConfig()), topo

    def test_client_path_ids_are_odd(self):
        conn, _ = self.make_connection("client")
        pm = conn.path_manager
        assert pm.next_path_id() == 1
        assert pm.next_path_id() == 3
        assert pm.next_path_id() == 5

    def test_server_path_ids_are_even(self):
        conn, _ = self.make_connection("server")
        pm = conn.path_manager
        assert pm.next_path_id() == 2
        assert pm.next_path_id() == 4

    def test_server_does_not_open_paths(self):
        conn, _ = self.make_connection("server")
        conn.path_manager.on_handshake_complete()
        assert conn.paths == {}

    def test_usable_interfaces_respect_up_flag(self):
        conn, topo = self.make_connection("client")
        topo.client.interfaces[1].up = False
        assert conn.path_manager.usable_interface_indices() == [0]
