"""Typed, qlog-style telemetry events and the :class:`Tracer`.

The event taxonomy mirrors the qlog schema the QUIC community settled
on (draft-ietf-quic-qlog-main-schema): every event belongs to a
*category* (``transport``, ``recovery``, ``cc``, ``scheduler``,
``path``, ``flowcontrol``) and carries a free-form ``data`` mapping.
A :class:`Tracer` is a strict superset of the legacy
:class:`repro.netsim.trace.PacketTrace`: the old tuple-based ``log()``
call keeps working (TCP/MPTCP call sites are untouched) and is
translated into a typed event on the fly, while the QUIC/MPQUIC layers
additionally emit rich events and per-path time series through the
cheap hooks described in ``docs/observability.md``.

Overhead design: every emission site in the transports is guarded by a
single ``is None`` check, so a run without an attached tracer pays one
attribute load per potential event.  A disabled tracer returns after
one boolean check.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.netsim.trace import PacketTrace, TraceRecord

# -- event taxonomy ---------------------------------------------------------

CAT_TRANSPORT = "transport"
CAT_RECOVERY = "recovery"
CAT_CC = "cc"
CAT_SCHEDULER = "scheduler"
CAT_PATH = "path"
CAT_FLOWCONTROL = "flowcontrol"
#: Simulated-network events (fault injection): link up/down, rate and
#: delay changes, loss steps, blackholing.  Emitted with ``host ==
#: "network"`` and ``path_id`` set to the mutated path, so a trace
#: shows the network timeline interleaved with the transport's
#: reaction (see ``repro.netsim.faults``).
CAT_NETWORK = "network"
#: Connection-lifetime events: close, idle timeout, handshake deadline,
#: loss of the last viable path.  Emitted with ``path_id == -1`` since
#: they concern the connection as a whole, not one path.
CAT_CONNECTION = "connection"
#: Performance-metrics events merged from :mod:`repro.obs.metrics`
#: (``metrics:counter``, ``metrics:wall_time``, ...).  Emitted with
#: ``path_id == -1``: metrics describe the runtime, not one path.
CAT_METRICS = "metrics"
#: Fluid-approximation engine events (``fluid:flow_started``,
#: ``fluid:share_update``, ``fluid:flow_completed``) from
#: :mod:`repro.netsim.fluid`.  Emitted with ``host == "network"`` and
#: ``path_id == -1``: fluid flows are background load, not paths.
CAT_FLUID = "fluid"
#: Open-loop workload harness events (``workload:flow_arrival``,
#: ``workload:flow_started``, ``workload:flow_completed``) from
#: :mod:`repro.experiments.workload`.  Emitted with ``host ==
#: "workload"`` and ``path_id == -1``: they describe the offered load,
#: not any one connection's paths.
CAT_WORKLOAD = "workload"

CATEGORIES = (
    CAT_TRANSPORT,
    CAT_RECOVERY,
    CAT_CC,
    CAT_SCHEDULER,
    CAT_PATH,
    CAT_FLOWCONTROL,
    CAT_NETWORK,
    CAT_CONNECTION,
    CAT_METRICS,
    CAT_FLUID,
    CAT_WORKLOAD,
)

#: Translation of the legacy ``PacketTrace`` event names used by the
#: TCP/MPTCP/QUIC call sites into (category, name) pairs, so old call
#: sites feed the typed stream without modification.
LEGACY_EVENTS: Dict[str, Tuple[str, str]] = {
    "send": (CAT_TRANSPORT, "packet_sent"),
    "recv": (CAT_TRANSPORT, "packet_received"),
    "lost": (CAT_TRANSPORT, "packet_lost"),
    "rto": (CAT_RECOVERY, "rto"),
    "tlp": (CAT_RECOVERY, "tail_loss_probe"),
    "dup": (CAT_SCHEDULER, "duplicated"),
    "migrate": (CAT_PATH, "migrated"),
    "rebind": (CAT_PATH, "rebind"),
    # TCP/MPTCP flows log per-subflow with these names; the subflow's
    # interface index plays the role of the path id.
    "tcp-send": (CAT_TRANSPORT, "packet_sent"),
    "tcp-recv": (CAT_TRANSPORT, "packet_received"),
    "tcp-rto": (CAT_RECOVERY, "rto"),
}

#: Metrics sampled into per-path time series by the QUIC layers.
SERIES_METRICS = (
    "cwnd",
    "ssthresh",
    "srtt",
    "bytes_in_flight",
    "goodput_bytes",
)


@dataclass(frozen=True)
class Event:
    """One structured telemetry event.

    ``path_id`` is ``-1`` for connection-level events (e.g. a
    flow-control block at the connection window).
    """

    time: float
    host: str
    category: str
    name: str
    path_id: int = -1
    data: Mapping[str, Any] = field(default_factory=dict)

    @property
    def type(self) -> str:
        """qlog-style ``category:name`` label."""
        return f"{self.category}:{self.name}"


class Tracer(PacketTrace):
    """Structured telemetry collector attached to one simulation.

    Strict superset of :class:`PacketTrace`:

    * ``log()`` (the legacy tuple API) still appends a
      :class:`TraceRecord` *and* mirrors it as a typed :class:`Event`;
    * ``emit()`` records typed events with arbitrary payloads;
    * ``sample()`` accumulates per-``(host, path, metric)`` time
      series, optionally throttled by ``sample_interval``;
    * ``sched_decision()`` maintains the scheduler-decision histogram
      alongside a ``scheduler:path_selected`` event stream.
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_interval: float = 0.0,
        capture_scheduler_events: bool = True,
    ) -> None:
        super().__init__(enabled)
        self.events: List[Event] = []
        #: (host, path_id, metric) -> [(time, value), ...]
        self.series: Dict[Tuple[str, int, str], List[Tuple[float, float]]] = {}
        #: (host, path_id) -> number of times the scheduler picked it.
        self.scheduler_decisions: Counter = Counter()
        #: Minimum spacing between two samples of the same series key
        #: (0 = record every sample).
        self.sample_interval = sample_interval
        self.capture_scheduler_events = capture_scheduler_events
        self._last_sample_time: Dict[Tuple[str, int, str], float] = {}

    # -- legacy compatibility ------------------------------------------------

    def log(
        self,
        time: float,
        host: str,
        event: str,
        path_id: int = 0,
        packet_number: int = -1,
        size: int = 0,
        detail: str = "",
    ) -> None:
        """Legacy tuple API; also mirrored into the typed event stream."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(time, host, event, path_id, packet_number, size, detail)
        )
        category, name = LEGACY_EVENTS.get(event, (CAT_TRANSPORT, event))
        data: Dict[str, Any] = {}
        if packet_number >= 0:
            data["packet_number"] = packet_number
        if size:
            data["size"] = size
        if detail:
            data["detail"] = detail
        self.events.append(Event(time, host, category, name, path_id, data))

    # -- typed API -----------------------------------------------------------

    def emit(
        self,
        time: float,
        host: str,
        category: str,
        name: str,
        path_id: int = -1,
        **data: Any,
    ) -> None:
        """Record one typed event (no-op when disabled)."""
        if not self.enabled:
            return
        self.events.append(Event(time, host, category, name, path_id, data))

    def sample(
        self, time: float, host: str, path_id: int, metric: str, value: float
    ) -> None:
        """Append one time-series point, honouring ``sample_interval``."""
        if not self.enabled:
            return
        key = (host, path_id, metric)
        if self.sample_interval > 0.0:
            last = self._last_sample_time.get(key)
            if last is not None and time - last < self.sample_interval:
                return
            self._last_sample_time[key] = time
        self.series.setdefault(key, []).append((time, value))

    def sched_decision(self, time: float, host: str, path_id: int) -> None:
        """Count (and optionally record) one scheduler path selection."""
        if not self.enabled:
            return
        self.scheduler_decisions[(host, path_id)] += 1
        if self.capture_scheduler_events:
            self.events.append(
                Event(time, host, CAT_SCHEDULER, "path_selected", path_id)
            )

    # -- queries -------------------------------------------------------------

    def events_of(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        host: Optional[str] = None,
        path_id: Optional[int] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[Event]:
        """Typed events matching all provided criteria."""
        out = []
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if name is not None and ev.name != name:
                continue
            if host is not None and ev.host != host:
                continue
            if path_id is not None and ev.path_id != path_id:
                continue
            if t_min is not None and ev.time < t_min:
                continue
            if t_max is not None and ev.time > t_max:
                continue
            out.append(ev)
        return out

    def series_of(
        self, host: str, path_id: int, metric: str
    ) -> List[Tuple[float, float]]:
        """One time series (empty list when never sampled)."""
        return self.series.get((host, path_id, metric), [])

    def iter_events(self) -> Iterator[Event]:
        return iter(self.events)
