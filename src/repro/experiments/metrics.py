"""Evaluation metrics.

The central one is the paper's *experimental aggregation benefit*
(§4.1, after Kaspar 2012 / Paasch 2013): instead of comparing against
nominal link capacities, it compares the multipath goodput with the
goodputs single-path protocols actually achieved on each path::

              Gm - Gmax_s
    EBen =  ----------------      if Gm >= Gmax_s
            (sum_i G_i) - Gmax_s

            Gm - Gmax_s
         =  -----------           otherwise
               Gmax_s

0 means "no better than the best single path", 1 means "the sum of the
paths", negative values mean multipath *hurt*.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def experimental_aggregation_benefit(
    multipath_goodput: float, single_path_goodputs: Sequence[float]
) -> float:
    """The paper's EBen(C) metric (see module docstring)."""
    if not single_path_goodputs:
        raise ValueError("at least one single-path goodput is required")
    g_max = max(single_path_goodputs)
    total = sum(single_path_goodputs)
    if g_max <= 0:
        raise ValueError("single-path goodputs must be positive")
    if multipath_goodput >= g_max:
        denominator = total - g_max
        if denominator <= 0:
            # Degenerate single-path case: no aggregation possible.
            return 0.0
        return (multipath_goodput - g_max) / denominator
    return (multipath_goodput - g_max) / g_max


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted ``(value, P[X <= value])`` pairs."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_greater_than(values: Iterable[float], threshold: float) -> float:
    """Share of values strictly above ``threshold``."""
    data = list(values)
    if not data:
        return 0.0
    return sum(1 for v in data if v > threshold) / len(data)


def median(values: Iterable[float]) -> float:
    """Median (interpolating midpoint for even counts)."""
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    n = len(data)
    mid = n // 2
    if n % 2 == 1:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def quartiles(values: Iterable[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) with linear interpolation."""
    data = sorted(values)
    if not data:
        raise ValueError("quartiles of empty sequence")

    def _q(p: float) -> float:
        idx = p * (len(data) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(data) - 1)
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    return _q(0.25), _q(0.5), _q(0.75)
