"""Whole-program index for the static analyzer.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time, which is exactly the blind spot cross-module determinism bugs
hide in: an unseeded RNG returned from a helper, module-level state
shared by ``ProcessPoolExecutor`` workers, a category constant that
drifted from the telemetry registry.  This module builds the project
structures the interprocedural rules (:mod:`repro.analysis.xrules`)
need:

* **module index** — every ``*.py`` under the analysis root, parsed
  once, with top-level symbol tables (functions, classes, assignments);
  discovery skips ``__pycache__`` directories and files that are not
  valid UTF-8 instead of aborting the whole pass;
* **import resolution** — absolute and relative imports, ``import …
  as`` aliasing, and re-export chains through package ``__init__``
  modules;
* **approximate call graph** — direct calls, module-attribute calls,
  ``self``/``cls`` method calls with inheritance and override
  (virtual-dispatch) edges, constructor-typed and annotation-typed
  receivers, and a bounded name-based fallback for everything else.
  Function *references* (callbacks passed to ``schedule()`` and
  friends) count as edges too, so dispatch-driven code is reachable;
* **reachability** — closure over the call graph from the sweep worker
  entry points (any function named ``run_cell``, plus the distributed
  executor's ``worker_loop``) and from the engine dispatch roots
  (every callback registered with ``schedule`` / ``schedule_at``);
* **constant resolution** — following module-level assignments and
  imports to literal values, used by the obs-schema rule to check
  category constants against the registry;
* **emit-site registry** — every ``.emit(...)`` call in the tree with
  its resolved category, literal event name and data fields.

The graph never imports the code under analysis — everything is AST —
so it is safe on broken or dependency-missing trees and fast enough
(< 5 s over the full repo, asserted in CI) to run in the lint job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Sentinel for constants that could not be resolved statically.
UNRESOLVED = object()

#: Maximum number of same-named methods the name-based call-resolution
#: fallback will fan out to.  Beyond this the method name is considered
#: too generic (``get``, ``close``, …) and no edge is added — an
#: unsound but deliberate trade: generic names would connect the whole
#: program and drown the reachability-scoped rules in false positives.
NAME_FALLBACK_LIMIT = 4

#: Import-chain / constant-chain resolution depth bound (cycle guard).
MAX_CHAIN = 16

#: Function names that root the sweep-worker reachability closure:
#: ``run_cell`` (pool workers) and ``worker_loop`` (the distributed
#: executor's claim/execute/commit loop) both run cells in worker
#: processes, so both anchor the sweep-purity contract.
SWEEP_WORKER_ENTRY_NAMES = ("run_cell", "worker_loop")


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for Name/Attribute chains (``a.b.c``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qname: str
    name: str
    module: str
    node: ast.ClassDef
    #: Base expressions as dotted strings (resolved lazily by the graph).
    base_names: Tuple[str, ...]
    #: method name -> function qname
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function or method definition (nested functions included)."""

    qname: str
    name: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Qualified name of the enclosing class, if this is a method.
    class_qname: Optional[str] = None
    #: Qualified name of the enclosing function, for nested defs.
    parent_qname: Optional[str] = None
    params: Tuple[str, ...] = ()
    lineno: int = 0
    #: Resolved call edges: (Call node, target qnames).
    calls: List[Tuple[ast.Call, Tuple[str, ...]]] = field(default_factory=list)
    #: Function references in non-call position (callbacks): qnames.
    refs: List[Tuple[ast.AST, str]] = field(default_factory=list)
    #: Project classes this function constructs (qnames).
    constructs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """Everything the graph knows about one source file."""

    name: str
    path: Path
    rel_path: str
    tree: ast.Module
    source_lines: Sequence[str]
    is_package: bool
    #: local alias -> fully qualified imported symbol (``from m import x``).
    symbol_imports: Dict[str, str] = field(default_factory=dict)
    #: local alias -> module dotted name (``import m [as a]``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: top-level name -> assigned value expression.
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    #: top-level function name -> qname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: top-level class name -> qname.
    classes: Dict[str, str] = field(default_factory=dict)


@dataclass
class EmitSite:
    """One ``tracer.emit(...)`` call site in the tree."""

    module: str
    rel_path: str
    path: str
    line: int
    node: ast.Call
    #: The category argument expression and its resolved value (or None).
    category_expr: Optional[ast.expr]
    category: Optional[str]
    #: Literal event name, when statically known.
    name: Optional[str]
    #: Data field names passed as keywords.
    fields: Tuple[str, ...]


class ProjectGraph:
    """Project-wide index over one analysis root.

    Build with :meth:`build`; the constructor only wires empty tables.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Files skipped during discovery: (path, reason).
        self.skipped: List[Tuple[Path, str]] = []
        #: method name -> [function qnames] (for the bounded fallback).
        self._methods_by_name: Dict[str, List[str]] = {}
        #: class qname -> direct subclass qnames.
        self._subclasses: Dict[str, List[str]] = {}
        self._callees: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, root: Path) -> "ProjectGraph":
        graph = cls(Path(root))
        graph._discover()
        graph._index_symbols()
        graph._resolve_hierarchy()
        graph._build_call_graph()
        return graph

    def _discover(self) -> None:
        root = self.root
        if root.is_file():
            files = [root]
            base = root.parent
        else:
            files = sorted(
                p for p in root.rglob("*.py")
                if "__pycache__" not in p.parts
            )
            base = root
        prefix = ""
        if (root / "__init__.py").exists():
            # The root itself is a package: modules are named from it.
            prefix = root.name
            base = root
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except (UnicodeDecodeError, OSError) as exc:
                self.skipped.append((path, type(exc).__name__))
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                self.skipped.append((path, f"SyntaxError: {exc.msg}"))
                continue
            rel = path.relative_to(base) if base in path.parents else path
            rel_posix = rel.as_posix()
            parts = list(rel.parts)
            is_package = parts[-1] == "__init__.py"
            if is_package:
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][: -len(".py")]
            dotted = ".".join(([prefix] if prefix else []) + parts)
            if not dotted:
                dotted = root.name
                is_package = True
            self.modules[dotted] = ModuleInfo(
                name=dotted,
                path=path,
                rel_path=rel_posix,
                tree=tree,
                source_lines=source.splitlines(),
                is_package=is_package,
            )

    def _index_symbols(self) -> None:
        for mod in self.modules.values():
            self._index_imports(mod)
            for node in mod.tree.body:
                self._index_toplevel(mod, node)

    def _index_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``.
                        head = alias.name.split(".")[0]
                        mod.module_aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.symbol_imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _resolve_from_base(
        self, mod: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk up from the module's package.
        parts = mod.name.split(".")
        if not mod.is_package:
            parts = parts[:-1]
        up = node.level - 1
        if up > len(parts):
            return None
        base_parts = parts[: len(parts) - up] if up else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _index_toplevel(self, mod: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{mod.name}.{node.name}"
            mod.functions[node.name] = qname
            self._add_function(mod, node, qname, None, None)
        elif isinstance(node, ast.ClassDef):
            qname = f"{mod.name}.{node.name}"
            mod.classes[node.name] = qname
            bases = tuple(
                b for b in (_attr_chain(base) for base in node.bases)
                if b is not None
            )
            info = ClassInfo(
                qname=qname, name=node.name, module=mod.name,
                node=node, base_names=bases,
            )
            self.classes[qname] = info
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    m_qname = f"{qname}.{sub.name}"
                    info.methods[sub.name] = m_qname
                    self._add_function(mod, sub, m_qname, qname, None)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                return
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    mod.assigns[target.id] = value

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        qname: str,
        class_qname: Optional[str],
        parent_qname: Optional[str],
    ) -> None:
        args = node.args  # type: ignore[attr-defined]
        params = tuple(
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        info = FunctionInfo(
            qname=qname,
            name=node.name,  # type: ignore[attr-defined]
            module=mod.name,
            node=node,
            class_qname=class_qname,
            parent_qname=parent_qname,
            params=params,
            lineno=getattr(node, "lineno", 0),
        )
        self.functions[qname] = info
        if class_qname is not None:
            self._methods_by_name.setdefault(info.name, []).append(qname)
        # Nested function definitions become their own FunctionInfo.
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if getattr(sub, "_repro_indexed", False):
                    continue
                sub._repro_indexed = True  # type: ignore[attr-defined]
                self._add_function(
                    mod, sub, f"{qname}.{sub.name}", class_qname, qname
                )

    def _resolve_hierarchy(self) -> None:
        for info in self.classes.values():
            mod = self.modules[info.module]
            for base_name in info.base_names:
                base_qname = self._resolve_class_name(mod, base_name)
                if base_qname is not None:
                    self._subclasses.setdefault(base_qname, []).append(
                        info.qname
                    )

    def _resolve_class_name(
        self, mod: ModuleInfo, dotted: str
    ) -> Optional[str]:
        kind, qname = self.resolve_symbol(mod, dotted)
        return qname if kind == "class" else None

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def resolve_symbol(
        self, mod: ModuleInfo, dotted: str
    ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve ``dotted`` as seen from ``mod``.

        Returns ``(kind, qname)`` where kind is ``"function"``,
        ``"class"``, ``"module"`` or ``"const"``; ``(None, None)`` when
        the name does not resolve to a project symbol.  Re-export
        chains through ``__init__`` modules are followed.
        """
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in mod.symbol_imports:
            target = mod.symbol_imports[head]
        elif head in mod.module_aliases:
            target = mod.module_aliases[head]
        elif head in mod.functions:
            target = mod.functions[head]
        elif head in mod.classes:
            target = mod.classes[head]
        elif head in mod.assigns:
            target = f"{mod.name}.{head}"
        else:
            return None, None
        qualified = f"{target}.{rest}" if rest else target
        return self._resolve_qualified(qualified)

    def _resolve_qualified(
        self, qualified: str, depth: int = 0
    ) -> Tuple[Optional[str], Optional[str]]:
        if depth > MAX_CHAIN:
            return None, None
        if qualified in self.functions:
            return "function", qualified
        if qualified in self.classes:
            return "class", qualified
        if qualified in self.modules:
            return "module", qualified
        # Split into the longest module prefix plus an attribute path.
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name not in self.modules:
                continue
            mod = self.modules[mod_name]
            attr = parts[cut]
            rest = ".".join(parts[cut + 1:])
            if attr in mod.functions and not rest:
                return "function", mod.functions[attr]
            if attr in mod.classes:
                cls_qname = mod.classes[attr]
                if not rest:
                    return "class", cls_qname
                info = self.classes.get(cls_qname)
                if info and rest in info.methods:
                    return "function", info.methods[rest]
                return None, None
            if attr in mod.symbol_imports:
                # Re-export chain (``from .engine import Simulator`` in
                # a package ``__init__``).
                chained = mod.symbol_imports[attr]
                full = f"{chained}.{rest}" if rest else chained
                return self._resolve_qualified(full, depth + 1)
            if attr in mod.module_aliases and rest:
                return self._resolve_qualified(
                    f"{mod.module_aliases[attr]}.{rest}", depth + 1
                )
            if attr in mod.assigns and not rest:
                return "const", f"{mod_name}.{attr}"
            return None, None
        return None, None

    # ------------------------------------------------------------------
    # Constant resolution
    # ------------------------------------------------------------------

    def resolve_constant(
        self, mod: ModuleInfo, expr: ast.expr, depth: int = 0
    ) -> Any:
        """Statically evaluate ``expr`` in ``mod``; UNRESOLVED on failure.

        Follows names through module-level assignments and imports
        (including re-export chains), resolving string/number constants
        and tuples thereof — enough for the telemetry taxonomy.
        """
        if depth > MAX_CHAIN:
            return UNRESOLVED
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Tuple):
            out = []
            for elt in expr.elts:
                value = self.resolve_constant(mod, elt, depth + 1)
                if value is UNRESOLVED:
                    return UNRESOLVED
                out.append(value)
            return tuple(out)
        dotted = _attr_chain(expr)
        if dotted is None:
            return UNRESOLVED
        return self.resolve_constant_name(mod, dotted, depth + 1)

    def resolve_constant_name(
        self, mod: ModuleInfo, dotted: str, depth: int = 0
    ) -> Any:
        if depth > MAX_CHAIN:
            return UNRESOLVED
        head, _, rest = dotted.partition(".")
        if not rest and head in mod.assigns:
            return self.resolve_constant(mod, mod.assigns[head], depth + 1)
        if head in mod.symbol_imports:
            qualified = mod.symbol_imports[head] + (f".{rest}" if rest else "")
            return self._resolve_constant_qualified(qualified, depth + 1)
        if head in mod.module_aliases:
            qualified = mod.module_aliases[head] + (f".{rest}" if rest else "")
            return self._resolve_constant_qualified(qualified, depth + 1)
        return UNRESOLVED

    def _resolve_constant_qualified(self, qualified: str, depth: int) -> Any:
        if depth > MAX_CHAIN:
            return UNRESOLVED
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            if mod_name not in self.modules:
                continue
            mod = self.modules[mod_name]
            attr = ".".join(parts[cut:])
            return self.resolve_constant_name(mod, attr, depth + 1)
        return UNRESOLVED

    def constant_owner(
        self, mod: ModuleInfo, expr: ast.expr
    ) -> Optional[Tuple[str, str]]:
        """The ``(module, name)`` whose assignment terminates ``expr``.

        Follows the same chains as :meth:`resolve_constant` but reports
        *where* the terminal literal lives — the obs-schema rule uses
        this to tell a registry constant from a drifted local copy.
        """
        dotted = _attr_chain(expr)
        if dotted is None:
            return None
        current_mod, current = mod, dotted
        for _ in range(MAX_CHAIN):
            head, _, rest = current.partition(".")
            if not rest and head in current_mod.assigns:
                value = current_mod.assigns[head]
                if isinstance(value, ast.Constant):
                    return current_mod.name, head
                chained = _attr_chain(value)
                if chained is None:
                    return current_mod.name, head
                current = chained
                continue
            if head in current_mod.symbol_imports:
                qualified = current_mod.symbol_imports[head] + (
                    f".{rest}" if rest else ""
                )
            elif head in current_mod.module_aliases:
                qualified = current_mod.module_aliases[head] + (
                    f".{rest}" if rest else ""
                )
            else:
                return None
            parts = qualified.split(".")
            found = False
            for cut in range(len(parts) - 1, 0, -1):
                mod_name = ".".join(parts[:cut])
                if mod_name in self.modules:
                    current_mod = self.modules[mod_name]
                    current = ".".join(parts[cut:])
                    found = True
                    break
            if not found:
                return None
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _build_call_graph(self) -> None:
        for info in self.functions.values():
            self._link_function(info)
        self._callees = {}
        for info in self.functions.values():
            succ: Set[str] = set()
            for _node, targets in info.calls:
                succ.update(targets)
            for _node, target in info.refs:
                succ.add(target)
            for cls_qname in info.constructs:
                cls = self.classes.get(cls_qname)
                if cls and "__init__" in cls.methods:
                    succ.add(cls.methods["__init__"])
            self._callees[info.qname] = succ

    def _own_body(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body, excluding nested function bodies."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield current
            stack.extend(ast.iter_child_nodes(current))

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """name -> class qname, from annotations and constructor calls."""
        mod = self.modules[info.module]
        types: Dict[str, str] = {}
        if info.class_qname is not None and info.params:
            first = info.params[0]
            if first in ("self", "cls"):
                types[first] = info.class_qname
        args = info.node.args  # type: ignore[attr-defined]
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ann = arg.annotation
            if ann is None:
                continue
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                # String annotation: parse the dotted name textually.
                dotted = ann.value.strip().strip('"')
                kind, qname = self.resolve_symbol(mod, dotted)
            else:
                dotted = _attr_chain(ann)
                if dotted is None:
                    continue
                kind, qname = self.resolve_symbol(mod, dotted)
            if kind == "class" and qname is not None:
                types[arg.arg] = qname
        for node in self._own_body(info.node):
            value: Optional[ast.expr] = None
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
            ):
                dotted = _attr_chain(value.func)
                if dotted is None:
                    continue
                kind, qname = self.resolve_symbol(mod, dotted)
                if kind == "class" and qname is not None:
                    types.setdefault(target.id, qname)
        return types

    def _method_candidates(
        self, cls_qname: str, method: str, virtual: bool = True
    ) -> List[str]:
        """Resolve ``method`` on ``cls_qname``: MRO walk + overrides."""
        out: List[str] = []
        seen: Set[str] = set()
        # Up the bases for the statically-known target.
        stack = [cls_qname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                out.append(info.methods[method])
                break
            mod = self.modules[info.module]
            for base in info.base_names:
                base_qname = self._resolve_class_name(mod, base)
                if base_qname:
                    stack.append(base_qname)
        if virtual:
            # Down the subclasses for overrides (virtual dispatch).
            stack = list(self._subclasses.get(cls_qname, ()))
            seen_sub: Set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen_sub:
                    continue
                seen_sub.add(current)
                info = self.classes.get(current)
                if info is not None and method in info.methods:
                    out.append(info.methods[method])
                stack.extend(self._subclasses.get(current, ()))
        return out

    def resolve_callable(
        self, info: FunctionInfo, expr: ast.expr
    ) -> List[str]:
        """Candidate function qnames for a call/callback expression."""
        mod = self.modules[info.module]
        if isinstance(expr, ast.Name):
            name = expr.id
            # Sibling or own nested function first.
            scope: Optional[FunctionInfo] = info
            while scope is not None:
                nested = f"{scope.qname}.{name}"
                if nested in self.functions:
                    return [nested]
                scope = (
                    self.functions.get(scope.parent_qname)
                    if scope.parent_qname
                    else None
                )
            kind, qname = self.resolve_symbol(mod, name)
            if kind == "function" and qname is not None:
                return [qname]
            if kind == "class" and qname is not None:
                info.constructs.add(qname)
                return []
            return []
        if isinstance(expr, ast.Attribute):
            receiver = expr.value
            method = expr.attr
            # self.m() / cls.m() / typed receivers.
            if isinstance(receiver, ast.Name):
                types = self._types_cache(info)
                if receiver.id in types:
                    return self._method_candidates(types[receiver.id], method)
            dotted = _attr_chain(expr)
            if dotted is not None:
                kind, qname = self.resolve_symbol(mod, dotted)
                if kind == "function" and qname is not None:
                    return [qname]
                if kind == "class" and qname is not None:
                    info.constructs.add(qname)
                    return []
            # Bounded name-based fallback for untyped receivers.
            candidates = self._methods_by_name.get(method, ())
            if 0 < len(candidates) <= NAME_FALLBACK_LIMIT:
                return list(candidates)
            return []
        return []

    def _types_cache(self, info: FunctionInfo) -> Dict[str, str]:
        cached = getattr(info, "_types", None)
        if cached is None:
            cached = self._local_types(info)
            info._types = cached  # type: ignore[attr-defined]
        return cached

    def _link_function(self, info: FunctionInfo) -> None:
        for node in self._own_body(info.node):
            if isinstance(node, ast.Call):
                targets = self.resolve_callable(info, node.func)
                info.calls.append((node, tuple(targets)))
                # Function references passed as arguments (callbacks).
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    self._note_ref(info, arg)
            elif isinstance(node, (ast.Assign, ast.Return)):
                value = node.value
                if value is not None:
                    self._note_ref(info, value)

    def _note_ref(self, info: FunctionInfo, expr: ast.expr) -> None:
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return
        if isinstance(expr, ast.Name):
            scope: Optional[FunctionInfo] = info
            while scope is not None:
                nested = f"{scope.qname}.{expr.id}"
                if nested in self.functions:
                    info.refs.append((expr, nested))
                    return
                scope = (
                    self.functions.get(scope.parent_qname)
                    if scope.parent_qname
                    else None
                )
        mod = self.modules[info.module]
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            types = self._types_cache(info)
            if expr.value.id in types:
                for qname in self._method_candidates(
                    types[expr.value.id], expr.attr
                ):
                    info.refs.append((expr, qname))
                return
        dotted = _attr_chain(expr)
        if dotted is None:
            return
        kind, qname = self.resolve_symbol(mod, dotted)
        if kind == "function" and qname is not None:
            info.refs.append((expr, qname))

    def callees(self, qname: str) -> Set[str]:
        return self._callees.get(qname, set())

    # ------------------------------------------------------------------
    # Reachability and entry points
    # ------------------------------------------------------------------

    def reachable_from(self, entries: Sequence[str]) -> Set[str]:
        """Transitive closure over call + reference edges."""
        seen: Set[str] = set()
        stack = [q for q in entries if q in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._callees.get(current, ()))
        return seen

    def run_cell_entries(self) -> List[str]:
        """Sweep worker entry points: every function named ``run_cell``."""
        return [
            q for q, f in self.functions.items()
            if f.name == "run_cell" and f.class_qname is None
        ]

    def sweep_worker_entries(self) -> List[str]:
        """All sweep worker roots: pool workers *and* distributed workers.

        The distributed executor's ``worker_loop`` runs cells in
        independent processes exactly like ``run_cell`` does under the
        pool, so everything reachable from it is subject to the same
        purity contract (no cache-key-invisible inputs).
        """
        return [
            q for q, f in self.functions.items()
            if f.name in SWEEP_WORKER_ENTRY_NAMES and f.class_qname is None
        ]

    def schedule_sites(
        self,
    ) -> List[Tuple[FunctionInfo, ast.Call, Optional[ast.expr], Tuple[str, ...]]]:
        """Every ``.schedule(…)`` / ``.schedule_at(…)`` call site.

        Returns ``(enclosing function, call, callback expr, callback
        qnames)``; the callback is argument 1 (after the delay/time).
        """
        out = []
        for info in self.functions.values():
            for node, _targets in info.calls:
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("schedule", "schedule_at")
                ):
                    continue
                cb_expr = node.args[1] if len(node.args) > 1 else None
                cb_targets: Tuple[str, ...] = ()
                if cb_expr is not None:
                    cb_targets = tuple(self.resolve_callable(info, cb_expr))
                out.append((info, node, cb_expr, cb_targets))
        return out

    def dispatch_entries(self) -> List[str]:
        """Callback functions registered with the engine's scheduler."""
        entries: List[str] = []
        for _info, _node, _expr, targets in self.schedule_sites():
            entries.extend(targets)
        return entries

    # ------------------------------------------------------------------
    # Telemetry registry
    # ------------------------------------------------------------------

    def emit_sites(self) -> List[EmitSite]:
        """Every ``.emit(...)`` call with resolved category metadata."""
        sites: List[EmitSite] = []
        for mod in self.modules.values():
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                ):
                    continue
                category_expr: Optional[ast.expr] = None
                name_expr: Optional[ast.expr] = None
                if len(node.args) >= 3:
                    category_expr = node.args[2]
                if len(node.args) >= 4:
                    name_expr = node.args[3]
                for kw in node.keywords:
                    if kw.arg == "category":
                        category_expr = kw.value
                    elif kw.arg == "name":
                        name_expr = kw.value
                category: Optional[str] = None
                if category_expr is not None:
                    value = self.resolve_constant(mod, category_expr)
                    if isinstance(value, str):
                        category = value
                name: Optional[str] = None
                if isinstance(name_expr, ast.Constant) and isinstance(
                    name_expr.value, str
                ):
                    name = name_expr.value
                fields = tuple(
                    sorted(
                        kw.arg
                        for kw in node.keywords
                        if kw.arg not in (None, "category", "name", "path_id")
                    )
                )
                sites.append(
                    EmitSite(
                        module=mod.name,
                        rel_path=mod.rel_path,
                        path=str(mod.path),
                        line=node.lineno,
                        node=node,
                        category_expr=category_expr,
                        category=category,
                        name=name,
                        fields=fields,
                    )
                )
        return sites

    def find_module(self, suffix: str) -> Optional[ModuleInfo]:
        """The unique module whose dotted name ends with ``suffix``."""
        matches = [
            m for name, m in self.modules.items()
            if name == suffix or name.endswith("." + suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        return None
