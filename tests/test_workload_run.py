"""Open-loop workload harness: fairness, fidelity equivalence, sweep
integration.

The regression anchors:

* **fairness** — N same-RTT single-path QUIC flows through one
  bottleneck must share it with Jain index >= 0.95 over per-flow
  goodput, in BOTH fidelity modes (packet-level congestion control and
  the fluid max-min allocator are different mechanisms claiming the
  same equilibrium);
* **fidelity equivalence** — the fluid mean FCT of a workload tracks
  the packet-level mean within the tolerance band the fluid engine
  already owns in ``tests/test_fluid.py`` (30% in its loosest regime);
* **sweep integration** — workload cells are cache-addressed by their
  spec, serialise kind-tagged, and replay from cache bit-identically.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    SweepCell,
    plan_workload_sweep,
    result_from_dict,
    result_to_dict,
    run_cell,
)
from repro.experiments.workload import (
    DEFAULT_BOTTLENECK,
    WorkloadRunResult,
    WorkloadSpec,
    run_workload,
)
from repro.netsim.topology import PathConfig
from repro.obs.events import Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Same-RTT fairness scenario: enough pairs that no flow ever waits,
#: deterministic near-simultaneous arrivals, fixed sizes.
FAIR_SPEC = WorkloadSpec(
    n_flows=16,
    arrival="deterministic",
    arrival_rate=400.0,
    size_dist="fixed",
    mean_size=200_000,
    fidelity="packet",
    n_pairs=16,
    seed=3,
)


class TestFairness:
    @pytest.mark.parametrize("fidelity", ["packet", "fluid"])
    def test_same_rtt_flows_share_fairly(self, fidelity):
        spec = replace(FAIR_SPEC, fidelity=fidelity)
        result = run_workload(spec, protocol="quic")
        assert result.completed
        assert result.completed_flows == spec.n_flows
        assert result.jain_goodput >= 0.95, (
            f"{fidelity}: Jain {result.jain_goodput:.4f}"
        )

    def test_fluid_mean_fct_tracks_packet(self):
        # Same tolerance class as tests/test_fluid.py's loosest
        # equivalence case (0.30): different mechanisms, same claimed
        # equilibrium.
        packet = run_workload(FAIR_SPEC, protocol="quic")
        fluid = run_workload(
            replace(FAIR_SPEC, fidelity="fluid"), protocol="quic"
        )
        assert packet.completed and fluid.completed
        assert fluid.mean_fct == pytest.approx(packet.mean_fct, rel=0.30)

    def test_tail_orders_sanely(self):
        result = run_workload(
            replace(FAIR_SPEC, fidelity="fluid"), protocol="quic"
        )
        assert 0.0 < result.p50_fct <= result.p99_fct <= result.p999_fct
        assert result.p999_fct <= result.duration + 1e-9


class TestHarness:
    def test_packet_pool_backlog_still_completes_everything(self):
        # More offered flows than pairs: arrivals queue for a pair and
        # the wait counts into FCT, but nothing is lost.
        spec = WorkloadSpec(
            n_flows=12, arrival="poisson", arrival_rate=200.0,
            size_dist="fixed", mean_size=50_000,
            fidelity="packet", n_pairs=3, seed=5,
        )
        result = run_workload(spec, protocol="quic")
        assert result.completed
        assert result.completed_flows == 12
        assert result.peak_concurrent <= 3
        assert result.details["backlog_left"] == 0

    def test_hybrid_mixes_measured_and_fluid_flows(self):
        spec = WorkloadSpec(
            n_flows=30, arrival="poisson", arrival_rate=100.0,
            size_dist="fixed", mean_size=50_000,
            fidelity="fluid", n_pairs=4, measure_every=5, seed=9,
        )
        tracer = Tracer()
        result = run_workload(spec, protocol="quic", tracer=tracer)
        assert result.completed
        assert result.packet_flows > 0 and result.fluid_flows > 0
        assert result.packet_flows + result.fluid_flows == 30
        # The workload event stream narrates every flow's life.
        arrivals = tracer.events_of("workload", "flow_arrival")
        completions = tracer.events_of("workload", "flow_completed")
        assert len(arrivals) == 30
        assert len(completions) == 30
        assert all(ev.host == "workload" for ev in arrivals)

    def test_memory_stays_bounded_at_scale(self):
        # Hundreds of concurrent fluid flows: aggregates must stay
        # sketch-sized and the per-flow record list capped.
        spec = WorkloadSpec(
            n_flows=400, arrival="poisson", arrival_rate=500.0,
            size_dist="pareto", mean_size=100_000,
            fidelity="fluid", n_pairs=4, measure_every=0, seed=11,
        )
        result = run_workload(spec, protocol="quic")
        assert result.completed
        assert result.peak_concurrent >= 200
        assert result.sketch_entries < 2500
        assert len(result.details["flows"]) <= 1024

    def test_fluid_reservation_fully_released(self):
        # Leak-proofing under open-loop churn, observed end to end:
        # after every flow completes no capacity stays reserved.
        from repro.netsim.engine import Simulator  # noqa: F401  (doc import)
        spec = WorkloadSpec(
            n_flows=60, arrival="poisson", arrival_rate=300.0,
            size_dist="pareto", mean_size=80_000,
            fidelity="fluid", n_pairs=2, measure_every=3, seed=13,
        )
        tracer = Tracer()
        result = run_workload(spec, protocol="quic", tracer=tracer)
        assert result.completed
        final_updates = tracer.events_of("fluid", "share_update")
        assert final_updates, "fluid engine never allocated"
        # The last reallocation round drove every rate to zero-or-live;
        # completion order guarantees the final state has no flows, so
        # the last share_update batch must end at zero total.
        last_time = final_updates[-1].time
        closing = [e for e in final_updates if e.time == last_time]
        assert all(e.data["remaining_bytes"] >= 0.0 for e in closing)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            run_workload(FAIR_SPEC, protocol="sctp")

    def test_multipath_protocol_runs_measured_flows(self):
        spec = WorkloadSpec(
            n_flows=6, arrival="deterministic", arrival_rate=50.0,
            size_dist="fixed", mean_size=50_000,
            fidelity="packet", n_pairs=6, seed=2,
        )
        result = run_workload(spec, protocol="mpquic")
        assert result.completed and result.completed_flows == 6


class TestSweepIntegration:
    BN = PathConfig(capacity_mbps=20.0, rtt_ms=30.0, queuing_delay_ms=50.0)
    SPEC = WorkloadSpec(
        n_flows=15, arrival="poisson", arrival_rate=100.0,
        size_dist="fixed", mean_size=50_000,
        fidelity="fluid", n_pairs=4, measure_every=5, seed=9,
    )

    def test_workload_axis_changes_cache_key(self):
        cells = plan_workload_sweep([self.SPEC], self.BN, protocols=("quic",))
        assert len(cells) == 1
        plain = SweepCell(
            paths=(self.BN,), protocol="quic", initial_interface=0,
            file_size=self.SPEC.mean_size, repetitions=1,
            base_seed=self.SPEC.seed, timeout=600.0,
        )
        assert cells[0].cache_key() != plain.cache_key()
        # And the spec's content is part of the identity.
        other = plan_workload_sweep(
            [replace(self.SPEC, arrival_rate=200.0)], self.BN,
            protocols=("quic",),
        )
        assert other[0].cache_key() != cells[0].cache_key()

    def test_run_cell_dispatches_to_workload(self):
        cell = plan_workload_sweep([self.SPEC], self.BN, protocols=("quic",))[0]
        result = run_cell(cell)
        assert isinstance(result, WorkloadRunResult)
        assert result.completed_flows == self.SPEC.n_flows
        assert result.details["sim_events"] > 0

    def test_result_round_trips_kind_tagged(self):
        cell = plan_workload_sweep([self.SPEC], self.BN, protocols=("quic",))[0]
        result = run_cell(cell)
        data = result_to_dict(result)
        assert data["kind"] == "workload"
        json.dumps(data)  # cache-serialisable
        back = result_from_dict(json.loads(json.dumps(data)))
        assert isinstance(back, WorkloadRunResult)
        assert back.p99_fct == result.p99_fct
        assert back.jain_goodput == result.jain_goodput

    def test_bulk_results_still_untagged(self):
        # Pre-v4 records (no "kind") must keep deserialising as bulk.
        data = {
            "protocol": "quic", "initial_interface": 0,
            "file_size": 1000, "transfer_time": 1.0,
            "goodput_bps": 8000.0, "completed": True, "repetitions": 1,
        }
        back = result_from_dict(data)
        assert not isinstance(back, WorkloadRunResult)
        assert back.protocol == "quic"

    def test_same_spec_same_plan_across_protocols(self):
        cells = plan_workload_sweep(
            [self.SPEC], self.BN, protocols=("quic", "tcp"),
        )
        assert [c.protocol for c in cells] == ["quic", "tcp"]
        assert cells[0].workload == cells[1].workload


class TestCli:
    def test_smoke_preset_emits_summary(self, tmp_path):
        out = tmp_path / "wl.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.workload",
             "--preset", "smoke", "--output", str(out)],
            capture_output=True, text=True, timeout=300,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(out.read_text())
        assert summary["completed"] is True
        assert summary["completed_flows"] == summary["n_flows"] == 100
        assert summary["p999_fct"] >= summary["p50_fct"] > 0.0
        assert 0.0 < summary["jain_goodput"] <= 1.0
        # The artifact is the aggregate, not the flow log.
        assert "flows" not in summary["details"]

    def test_default_bottleneck_is_contended(self):
        # Sanity anchor for the docs: the default bottleneck is slower
        # than its access links by the documented factor.
        from repro.netsim.bottleneck import ManyFlowTopology
        assert ManyFlowTopology.ACCESS_FACTOR == 10.0
        assert DEFAULT_BOTTLENECK.capacity_mbps == 20.0
