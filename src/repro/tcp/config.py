"""TCP/MPTCP endpoint configuration."""

from __future__ import annotations

from dataclasses import dataclass

#: TLS 1.2 handshake flight sizes in stream bytes (client hello; server
#: hello + certificate chain; client key exchange + finished; server
#: change-cipher-spec + finished).  Two full round trips on top of the
#: TCP handshake, as in the paper's HTTPS baseline (§4.2).
TLS_MESSAGE_SIZES = {
    "client_hello": 250,
    "server_hello": 3000,
    "client_finished": 350,
    "server_finished": 300,
}

#: TLS 1.3 collapses the exchange into one round trip: ClientHello with
#: key share; ServerHello + EncryptedExtensions + Certificate +
#: Finished; client Finished.  (The §4.2 "emerging TLS 1.3" case.)
TLS13_MESSAGE_SIZES = {
    "client_hello": 300,
    "server_flight": 3000,
    "client_finished": 100,
}


@dataclass
class TcpConfig:
    """Configuration of a TCP or MPTCP endpoint.

    Defaults mirror the paper's baseline: Linux 4.x TCP with CUBIC,
    SACK, a 16 MB maximum receive window, and (for MPTCP) the
    default lowest-RTT scheduler with OLIA coupling.
    """

    #: Maximum segment payload size.
    mss: int = 1400

    #: Congestion control for single-path TCP.
    cc_algorithm: str = "cubic"
    #: Coupled controller for MPTCP.
    multipath_cc: str = "olia"

    #: Initial / maximum receive window (connection level).
    initial_receive_window: int = 3 * 16 * 1024
    max_receive_window: int = 16 * 1024 * 1024
    window_autotune: bool = True

    #: Maximum SACK blocks per ACK (the TCP option space limit the
    #: paper contrasts with QUIC's 256 ACK ranges).
    max_sack_blocks: int = 3

    #: Model the TLS exchange before app data.
    use_tls: bool = True
    #: TLS version: "1.2" costs 2 RTTs, "1.3" costs 1 RTT (the paper's
    #: §4.2 notes the emerging TLS 1.3 would shrink the handshake gap).
    tls_version: str = "1.2"
    #: TCP Fast Open (RFC 7413): carry the first client flight on the
    #: SYN, removing the 3WHS round trip for repeat connections.
    fast_open: bool = False

    #: Loss detection / timers.
    dupack_threshold: int = 3
    min_rto: float = 0.2
    max_rto: float = 60.0
    #: Linux initial RTO (RFC 6298).
    initial_rto: float = 1.0
    #: Delayed-ACK interval.
    delayed_ack: float = 0.025

    #: MPTCP: opportunistic retransmission and penalisation (ORP).
    enable_orp: bool = True
    #: MPTCP: reinject a failed subflow's outstanding data elsewhere.
    reinject_on_rto: bool = True
    #: MPTCP scheduler name ('lowest_rtt' or 'round_robin').
    scheduler: str = "lowest_rtt"
