"""Planted obs-schema defects: taxonomy drift at emit sites."""

from . import events

# A drifted local copy of a registry value: a registry rename would
# silently leave this behind.
CAT_LOCAL = "link"  # corpus: expect[obs-schema]


class Probe:
    def ping(self, tracer, now):
        # Free-form category never registered in CATEGORIES.
        tracer.emit(now, "h1", "mystery", "ping")  # corpus: expect[obs-schema]
        # In-registry *value* but re-declared constant (flagged above,
        # at the declaration).
        tracer.emit(now, "h1", CAT_LOCAL, "ping")
        # The correct spelling: the registry's own constant.
        tracer.emit(now, "h1", events.CAT_FLOW, "ping")
        # Off-registry series metric.
        tracer.sample(now, "h1", 0, "goodput", 1.0)  # corpus: expect[obs-schema]
