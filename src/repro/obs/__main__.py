"""CLI for trace inspection: ``python -m repro.obs report <trace.jsonl>``."""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import read_jsonl
from repro.obs.summary import format_report, summarize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect exported telemetry traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="print a per-path summary of a JSONL trace"
    )
    report.add_argument("trace", help="path to a trace exported via write_jsonl")
    args = parser.parse_args(argv)
    if args.command == "report":
        try:
            tracer = read_jsonl(args.trace)
        except OSError as exc:
            parser.error(f"cannot read trace: {exc}")
        except ValueError as exc:
            parser.error(f"{args.trace} is not a JSONL trace: {exc}")
        try:
            print(format_report(summarize(tracer)))
        except BrokenPipeError:
            # Output piped into e.g. `head`; not an error.
            sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
