"""Stream send/receive state.

STREAM frames carry ``(stream id, offset, data)``, which is all a
receiver needs to reorder data arriving over *different paths* — the
property that lets MPQUIC spread one stream across paths without any
extra sequence-number space (paper §3, *Reliable Data Transmission*).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.quic.frames import StreamFrame
from repro.util.ranges import RangeSet
from repro.util.reassembly import Reassembler


class SendStream:
    """Outgoing half of a stream.

    Holds the application data, hands out STREAM frames (new data or
    retransmissions), and tracks acknowledged byte ranges so lost
    frames whose bytes were meanwhile acked via a duplicate copy on
    another path are not retransmitted again.
    """

    __slots__ = (
        "stream_id", "_buffer", "fin_offset", "_next_new_offset",
        "_retransmit", "_acked", "_fin_sent", "_fin_acked",
    )

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._buffer = bytearray()
        self.fin_offset: Optional[int] = None
        self._next_new_offset = 0
        self._retransmit = RangeSet()
        self._acked = RangeSet()
        self._fin_sent = False
        self._fin_acked = False

    def write(self, data: bytes, fin: bool = False) -> None:
        """Append application data; ``fin`` closes the stream."""
        if self.fin_offset is not None:
            raise ValueError("stream already finished")
        self._buffer += data
        if fin:
            self.fin_offset = len(self._buffer)

    @property
    def buffered_bytes(self) -> int:
        """Total bytes the application has written."""
        return len(self._buffer)

    def has_data_to_send(self, flow_budget: int) -> bool:
        """True when a useful frame can be produced now.

        ``flow_budget`` limits *new* data only; retransmissions are
        always allowed (their offsets were within past limits).
        """
        # Peeks RangeSet internals / inlines _fin_pending: this is the
        # per-packet "anything left?" probe on every send opportunity.
        if self._retransmit._bounds:
            return True
        next_new = self._next_new_offset
        if next_new < len(self._buffer) and flow_budget > 0:
            return True
        fin_offset = self.fin_offset
        return (
            fin_offset is not None
            and not self._fin_sent
            and next_new >= fin_offset
        )

    def _fin_pending(self) -> bool:
        return (
            self.fin_offset is not None
            and not self._fin_sent
            and self._next_new_offset >= self.fin_offset
        )

    def next_frame(self, max_bytes: int, flow_budget: int) -> Optional[Tuple[StreamFrame, int]]:
        """Produce the next STREAM frame.

        Returns ``(frame, new_data_len)`` where ``new_data_len`` is the
        number of never-before-sent bytes (what counts against flow
        control), or None if nothing can be sent.  Retransmissions are
        served first, as in quic-go.
        """
        if max_bytes <= 0:
            return None
        if self._retransmit._bounds:
            start, stop = next(iter(self._retransmit))
            stop = min(stop, start + max_bytes)
            self._retransmit.remove(start, stop)
            data = bytes(self._buffer[start:stop])
            fin = self.fin_offset is not None and stop == self.fin_offset
            return StreamFrame.acquire(self.stream_id, start, data, fin), 0
        available = len(self._buffer) - self._next_new_offset
        if available > 0 and flow_budget > 0:
            length = min(available, max_bytes, flow_budget)
            start = self._next_new_offset
            data = bytes(self._buffer[start:start + length])
            self._next_new_offset += length
            fin = self._fin_pending()
            if fin:
                self._fin_sent = True
            return StreamFrame.acquire(self.stream_id, start, data, fin), length
        if self._fin_pending():
            self._fin_sent = True
            return StreamFrame.acquire(
                self.stream_id, self._next_new_offset, b"", True
            ), 0
        return None

    def on_frame_acked(self, frame: StreamFrame) -> None:
        """Mark a frame's byte range (and FIN) as delivered."""
        if frame.data:
            self._acked.add(frame.offset, frame.offset + len(frame.data))
            # A range acked while queued for retransmission need not go out.
            self._retransmit.remove(frame.offset, frame.offset + len(frame.data))
        if frame.fin:
            self._fin_acked = True

    def on_frame_lost(self, frame: StreamFrame) -> None:
        """Queue a lost frame's un-acked bytes for retransmission."""
        if frame.data:
            start, stop = frame.offset, frame.offset + len(frame.data)
            cursor = start
            while cursor < stop:
                gap = self._acked.first_gap_after(cursor)
                if gap >= stop:
                    break
                gap_end = stop
                for astart, _astop in self._acked:
                    if astart > gap:
                        gap_end = min(gap_end, astart)
                        break
                if gap < gap_end:
                    self._retransmit.add(gap, gap_end)
                cursor = gap_end
        if frame.fin and not self._fin_acked:
            self._fin_sent = False  # resend the FIN marker

    @property
    def all_acked(self) -> bool:
        """True when every written byte (and FIN, if any) is delivered."""
        if self.fin_offset is None:
            return False
        if not self._fin_acked:
            return False
        if self.fin_offset == 0:
            return True
        return self._acked.contains_range(0, self.fin_offset)

    @property
    def bytes_acked(self) -> int:
        return self._acked.total


class RecvStream:
    """Incoming half of a stream: reassembly plus consumption tracking."""

    __slots__ = ("stream_id", "reassembler", "fin_received")

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.reassembler = Reassembler()
        self.fin_received = False

    def on_frame(self, frame: StreamFrame) -> bytes:
        """Absorb a STREAM frame; returns newly in-order data."""
        if frame.fin:
            self.reassembler.set_final_size(frame.offset + len(frame.data))
            self.fin_received = True
        if frame.data:
            self.reassembler.insert(frame.offset, frame.data)
        return self.reassembler.pop_ready()

    @property
    def highest_offset(self) -> int:
        return self.reassembler.highest_offset

    @property
    def is_complete(self) -> bool:
        return self.reassembler.is_complete()
