"""Near-miss fixture package: correct spellings of the defect shapes."""
