"""Trace aggregation: per-path counters, histograms, handover timeline.

Turns a :class:`~repro.obs.events.Tracer` (live or reloaded from JSONL)
into the summary the paper's analysis sections keep reaching for:
which path carried how much, what was lost or retransmitted where,
how the scheduler split its decisions, and the ordered path-lifecycle
timeline around a handover (Fig. 11's `potentially failed` moment).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.events import (
    CAT_METRICS,
    CAT_PATH,
    CAT_RECOVERY,
    CAT_SCHEDULER,
    CAT_TRANSPORT,
    Event,
    Tracer,
)

#: path lifecycle events, in the order they appear in the timeline.
_LIFECYCLE = (
    "new",
    "validated",
    "potentially_failed",
    "probing",
    "recovered",
    "abandoned",
    "migrated",
    "rebind",
)


@dataclass
class PathSummary:
    """Counters for one (host, path) pair."""

    host: str
    path_id: int
    packets_sent: int = 0
    bytes_sent: int = 0
    packets_received: int = 0
    bytes_received: int = 0
    packets_lost: int = 0
    retransmitted_bytes: int = 0
    duplicated_packets: int = 0
    rtos: int = 0
    scheduler_selections: int = 0
    #: Every event attributed to this (host, path), whatever its kind.
    events: int = 0


@dataclass
class TraceSummary:
    """Aggregated view of one trace."""

    paths: Dict[Tuple[str, int], PathSummary] = field(default_factory=dict)
    #: host -> Counter(path_id -> scheduler decisions)
    scheduler_histogram: Dict[str, Counter] = field(default_factory=dict)
    #: ordered (time, host, path_id, lifecycle-event) tuples
    handover_timeline: List[Tuple[float, str, int, str]] = field(
        default_factory=list
    )
    total_events: int = 0
    #: category -> event count over the whole trace.
    events_by_category: Counter = field(default_factory=Counter)
    #: runtime counters merged from ``metrics:counter`` events.
    metrics_counters: Dict[str, float] = field(default_factory=dict)
    #: subsystem -> exclusive wall seconds, from ``metrics:wall_time``.
    wall_time_seconds: Dict[str, float] = field(default_factory=dict)
    #: total instrumented wall time, from the ``metrics:snapshot``.
    wall_time_total_seconds: float = 0.0

    def path(self, host: str, path_id: int) -> PathSummary:
        key = (host, path_id)
        if key not in self.paths:
            self.paths[key] = PathSummary(host, path_id)
        return self.paths[key]


def summarize(tracer: Tracer) -> TraceSummary:
    """Fold the event stream into a :class:`TraceSummary`."""
    out = TraceSummary()
    for ev in tracer.events:
        out.total_events += 1
        out.events_by_category[ev.category] += 1
        path = out.path(ev.host, ev.path_id)
        path.events += 1
        if ev.category == CAT_TRANSPORT:
            size = int(ev.data.get("size", 0))
            if ev.name == "packet_sent":
                path.packets_sent += 1
                path.bytes_sent += size
            elif ev.name == "packet_received":
                path.packets_received += 1
                path.bytes_received += size
            elif ev.name == "packet_lost":
                path.packets_lost += 1
        elif ev.category == CAT_RECOVERY:
            if ev.name == "rto":
                path.rtos += 1
            elif ev.name == "retransmit":
                path.retransmitted_bytes += int(ev.data.get("bytes", 0))
        elif ev.category == CAT_SCHEDULER:
            if ev.name == "duplicated":
                path.duplicated_packets += 1
        elif ev.category == CAT_PATH and ev.name in _LIFECYCLE:
            out.handover_timeline.append((ev.time, ev.host, ev.path_id, ev.name))
        elif ev.category == CAT_METRICS:
            if ev.name == "counter":
                out.metrics_counters[str(ev.data.get("metric"))] = float(
                    ev.data.get("value", 0)
                )
            elif ev.name == "wall_time":
                out.wall_time_seconds[str(ev.data.get("subsystem"))] = float(
                    ev.data.get("seconds", 0.0)
                )
            elif ev.name == "snapshot":
                out.wall_time_total_seconds = float(
                    ev.data.get("wall_time_total_seconds", 0.0)
                )
    for (host, path_id), count in tracer.scheduler_decisions.items():
        out.path(host, path_id).scheduler_selections = count
        out.scheduler_histogram.setdefault(host, Counter())[path_id] = count
    out.handover_timeline.sort(key=lambda item: item[0])
    return out


def first_event_time(
    tracer: Tracer, category: str, name: str, host: str = None
) -> float:
    """Time of the first matching event (+inf when absent)."""
    for ev in tracer.events:
        if ev.category == category and ev.name == name:
            if host is None or ev.host == host:
                return ev.time
    return float("inf")


# -- rendering ---------------------------------------------------------------

_COLUMNS = (
    ("path", "{host}/{path_id}"),
    ("pkts_sent", "{packets_sent}"),
    ("bytes_sent", "{bytes_sent}"),
    ("pkts_recv", "{packets_received}"),
    ("lost", "{packets_lost}"),
    ("rexmit_B", "{retransmitted_bytes}"),
    ("dup", "{duplicated_packets}"),
    ("rtos", "{rtos}"),
    ("sched", "{scheduler_selections}"),
    ("events", "{events}"),
)


def format_report(summary: TraceSummary) -> str:
    """Render the per-path summary table plus histogram and timeline."""
    lines: List[str] = [f"trace summary ({summary.total_events} events)"]
    if summary.events_by_category:
        parts = ", ".join(
            f"{category}={count}"
            for category, count in sorted(summary.events_by_category.items())
        )
        lines.append(f"by category: {parts}")
    lines.append("")
    header = [name for name, _ in _COLUMNS]
    rows = [header]
    for (host, path_id) in sorted(summary.paths):
        ps = summary.paths[(host, path_id)]
        rows.append(
            [fmt.format(**vars(ps)) for _, fmt in _COLUMNS]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    if summary.scheduler_histogram:
        lines.append("")
        lines.append("scheduler decisions:")
        for host in sorted(summary.scheduler_histogram):
            histogram = summary.scheduler_histogram[host]
            total = sum(histogram.values()) or 1
            for path_id in sorted(histogram):
                count = histogram[path_id]
                lines.append(
                    f"  {host} path {path_id}: {count}"
                    f" ({100.0 * count / total:.1f}%)"
                )
    if summary.handover_timeline:
        lines.append("")
        lines.append("path lifecycle timeline:")
        for time, host, path_id, name in summary.handover_timeline:
            lines.append(f"  {time:10.4f}s  {host:<8s} path {path_id}: {name}")
    if summary.metrics_counters or summary.wall_time_seconds:
        lines.append("")
        lines.append("runtime metrics (REPRO_METRICS):")
        for name in sorted(summary.metrics_counters):
            lines.append(
                f"  {name}: {summary.metrics_counters[name]:.0f}"
            )
        if summary.wall_time_seconds:
            total = summary.wall_time_total_seconds or sum(
                summary.wall_time_seconds.values()
            )
            lines.append(f"  wall time: {total:.4f}s")
            for subsystem, seconds in sorted(
                summary.wall_time_seconds.items(),
                key=lambda item: -item[1],
            ):
                share = 100.0 * seconds / total if total else 0.0
                lines.append(
                    f"    {subsystem:<10s} {seconds:8.4f}s ({share:.1f}%)"
                )
    return "\n".join(lines)
