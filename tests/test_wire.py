"""Wire-format tests: varints, frame and packet codecs.

The key invariant: ``wire_size()`` must equal the length of the actual
encoding, so the simulator's bandwidth accounting is honest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quic import wire
from repro.quic.frames import (
    AckFrame,
    AddAddressFrame,
    ConnectionCloseFrame,
    HandshakeFrame,
    MAX_ACK_RANGES,
    PathInfo,
    PathsFrame,
    PingFrame,
    StreamFrame,
    WindowUpdateFrame,
)
from repro.quic.packet import Packet


class TestVarint:
    @pytest.mark.parametrize(
        "value,size",
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), (2**30 - 1, 4),
         (2**30, 8), (2**62 - 1, 8)],
    )
    def test_sizes(self, value, size):
        assert wire.varint_size(value) == size
        assert len(wire.encode_varint(value)) == size

    @given(st.integers(min_value=0, max_value=2**62 - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        buf = wire.encode_varint(value)
        decoded, pos = wire.decode_varint(buf, 0)
        assert decoded == value
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire.varint_size(-1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            wire.varint_size(2**62)


FRAME_EXAMPLES = [
    StreamFrame(stream_id=1, offset=0, data=b"hello", fin=False),
    StreamFrame(stream_id=5, offset=123456, data=b"", fin=True),
    StreamFrame(stream_id=2**20, offset=2**35, data=b"x" * 1000, fin=True),
    AckFrame(path_id=0, largest_acked=10, ack_delay=0.0008,
             ranges=((8, 11), (0, 5))),
    AckFrame(path_id=3, largest_acked=2**30, ack_delay=0.02,
             ranges=((2**30, 2**30 + 1),)),
    WindowUpdateFrame(stream_id=0, byte_offset=16 * 1024 * 1024),
    WindowUpdateFrame(stream_id=7, byte_offset=2**40),
    PingFrame(),
    HandshakeFrame("CHLO", 730),
    HandshakeFrame("SHLO", 100),
    ConnectionCloseFrame(error_code=7, reason="bye"),
    AddAddressFrame("10.1.0.2"),
    PathsFrame(active=(PathInfo(0, 25000), PathInfo(1, 48000)), failed=(2,)),
    PathsFrame(active=(), failed=()),
]


class TestFrameCodec:
    @pytest.mark.parametrize("frame", FRAME_EXAMPLES, ids=lambda f: type(f).__name__)
    def test_roundtrip(self, frame):
        buf = wire.encode_frame(frame)
        decoded, pos = wire.decode_frame(buf, 0)
        assert pos == len(buf)
        if isinstance(frame, AckFrame):
            # Ack delay is quantised on the wire (3-bit shift of us).
            assert decoded.path_id == frame.path_id
            assert decoded.largest_acked == frame.largest_acked
            assert decoded.ranges == frame.ranges
            assert decoded.ack_delay == pytest.approx(frame.ack_delay, abs=1e-5)
        else:
            assert decoded == frame

    @pytest.mark.parametrize("frame", FRAME_EXAMPLES, ids=lambda f: type(f).__name__)
    def test_wire_size_matches_encoding(self, frame):
        assert frame.wire_size() == len(wire.encode_frame(frame))

    def test_ack_range_cap_enforced(self):
        ranges = tuple((i * 3, i * 3 + 1) for i in range(MAX_ACK_RANGES + 1))
        with pytest.raises(ValueError):
            AckFrame(path_id=0, largest_acked=10**6, ack_delay=0.0, ranges=ranges)

    def test_ack_at_cap_allowed(self):
        ranges = tuple(
            (i * 3, i * 3 + 1) for i in range(MAX_ACK_RANGES - 1, -1, -1)
        )
        frame = AckFrame(0, ranges[0][1] - 1, 0.0, ranges)
        assert frame.acked_packet_count() == MAX_ACK_RANGES

    @given(
        st.integers(0, 2**30),
        st.integers(0, 2**40),
        st.binary(max_size=1200),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_stream_frame_roundtrip_property(self, sid, offset, data, fin):
        frame = StreamFrame(sid, offset, data, fin)
        decoded, _ = wire.decode_frame(wire.encode_frame(frame), 0)
        assert decoded == frame
        assert frame.wire_size() == len(wire.encode_frame(frame))


class TestPacketCodec:
    def test_roundtrip_singlepath(self):
        pkt = Packet(
            path_id=0, packet_number=42,
            frames=(StreamFrame(1, 0, b"data", True),),
            connection_id=0xDEADBEEF, multipath=False,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded == pkt

    def test_roundtrip_multipath_path_id(self):
        pkt = Packet(
            path_id=3, packet_number=7,
            frames=(PingFrame(), WindowUpdateFrame(0, 1000)),
            connection_id=1, multipath=True,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded.path_id == 3
        assert decoded == pkt

    def test_singlepath_header_has_no_path_byte(self):
        single = Packet(0, 1, (PingFrame(),), multipath=False)
        multi = Packet(0, 1, (PingFrame(),), multipath=True)
        assert multi.wire_size == single.wire_size + 1

    def test_wire_size_matches_encoding(self):
        pkt = Packet(
            path_id=1, packet_number=99,
            frames=(
                AckFrame(1, 50, 0.001, ((40, 51), (0, 30))),
                StreamFrame(3, 1000, b"y" * 500, False),
            ),
            multipath=True,
        )
        assert pkt.wire_size == len(pkt.encode())

    def test_ack_eliciting(self):
        ack_only = Packet(0, 1, (AckFrame(0, 1, 0.0, ((0, 2),)),))
        data = Packet(0, 2, (StreamFrame(1, 0, b"x", False),))
        assert not ack_only.is_ack_eliciting
        assert data.is_ack_eliciting

    def test_multiframe_roundtrip_with_handshake(self):
        pkt = Packet(
            path_id=0, packet_number=0,
            frames=(HandshakeFrame("CHLO", 730), PingFrame()),
            multipath=False,
        )
        decoded = Packet.decode(pkt.encode())
        assert decoded == pkt

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_frame(b"\x7e", 0)
