"""Structured telemetry (qlog-style) for the whole transport stack.

* :mod:`repro.obs.events` — event taxonomy and the :class:`Tracer`
  (a strict superset of the legacy ``PacketTrace``);
* :mod:`repro.obs.export` — qlog JSON / JSONL / CSV exporters;
* :mod:`repro.obs.summary` — per-path counters, scheduler histogram
  and handover timeline, plus the plain-text report renderer.

``python -m repro.obs report trace.jsonl`` prints the per-path summary
of an exported trace.
"""

from repro.obs.events import (
    CAT_CC,
    CAT_FLOWCONTROL,
    CAT_METRICS,
    CAT_PATH,
    CAT_RECOVERY,
    CAT_SCHEDULER,
    CAT_TRANSPORT,
    Event,
    Tracer,
)
from repro.obs.export import (
    read_jsonl,
    to_qlog,
    write_csv_series,
    write_jsonl,
    write_qlog_json,
)
from repro.obs.summary import TraceSummary, format_report, summarize

__all__ = [
    "CAT_CC",
    "CAT_FLOWCONTROL",
    "CAT_METRICS",
    "CAT_PATH",
    "CAT_RECOVERY",
    "CAT_SCHEDULER",
    "CAT_TRANSPORT",
    "Event",
    "Tracer",
    "TraceSummary",
    "format_report",
    "read_jsonl",
    "summarize",
    "to_qlog",
    "write_csv_series",
    "write_jsonl",
    "write_qlog_json",
]
