"""Fluid-approximation flow engine (hybrid-fidelity simulation).

Packet-level simulation costs two events per datagram; a 2 MB
background transfer is ~3000 events that exist only to keep a
bottleneck busy.  This module models such flows *analytically*: a
:class:`FluidFlow` is a remaining-byte counter drained at a rate set
by max-min bandwidth sharing, and the only simulator events it needs
are the instants where rates change — a flow joining or leaving, a
slow-start doubling, or a predicted completion.  Thousands of packet
events collapse into a handful of rate updates (the classic fluid /
hybrid approach of Liu et al., "Fluid models and solutions for
large-scale IP networks").

The two fidelities compose: each :class:`~repro.netsim.link.Link`
carries a ``fluid_reserved_bps`` aggregate that shrinks the
serialization capacity packet-level traffic sees, while the share
computation counts the packet connections crossing a link
(``set_packet_load``) so fluid flows only take their fair fraction.
Measured connections stay packet-level — with full loss detection,
scheduling and flow control — while background cross-traffic runs
fluid, selected via ``QuicConfig.fidelity`` (see
:func:`background_transfer`).

Model summary, per flow:

* **steady state** — max-min fair share of every traversed link's
  fluid capacity (progressive filling, per-flow rate caps honoured);
* **slow start** — the rate ramps from ``INITIAL_WINDOW`` segments per
  RTT, doubling every RTT until it reaches the fair share (per-RTT
  analytic update);
* **random loss** — a Mathis-style ceiling ``mss/rtt * C/sqrt(p)``
  caps the steady-state rate on lossy routes;
* **completion** — predicted from ``remaining / rate`` and
  re-scheduled whenever any share changes (predictive event
  regeneration).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.engine import Simulator, Timer
from repro.netsim.link import Link
from repro.obs.events import CAT_FLUID, Tracer

if TYPE_CHECKING:  # layering: netsim must not import the quic package
    from repro.quic.config import QuicConfig

#: Slow-start ramp starts at this many segments per RTT (mirrors the
#: packet-level initial congestion window).
INITIAL_WINDOW_SEGMENTS = 10

#: Mathis constant for the loss-limited throughput ceiling
#: ``mss/rtt * C/sqrt(p)`` (C = sqrt(3/2) for delayed-ACK-free Reno).
MATHIS_C = 1.22

#: Empirically calibrated constant for the repo's default congestion
#: controller ("cubic2", CUBIC with 2-connection emulation): the
#: emulation is markedly more aggressive than Reno under random loss,
#: and sqrt(2) * MATHIS_C matches the packet simulator's loss-limited
#: goodput within ~10% over the 0.5-2% loss range (the idealized
#: 2-Reno aggregate bound, 2 * MATHIS_C, overshoots because the link
#: share clips the emulation's window peaks).
MATHIS_C_CUBIC2 = MATHIS_C * math.sqrt(2.0)

#: Ignore rate/deadline changes smaller than this relative amount when
#: deciding whether to regenerate a completion event.
_REL_EPS = 1e-9


class FluidFlow:
    """One analytically modelled flow over a fixed route of links."""

    __slots__ = (
        "name", "route", "size_bytes", "rtt", "mss", "loss_rate",
        "mathis_c", "start_time", "started", "remaining_bytes",
        "rate_bps", "ramp_bps", "ramping", "completed", "completion_time",
        "on_complete", "_last_settle", "_completion_timer", "_ramp_timer",
    )

    def __init__(
        self,
        name: str,
        route: Tuple[Link, ...],
        size_bytes: int,
        rtt: float,
        mss: int,
        loss_rate: float,
        mathis_c: float = MATHIS_C,
    ) -> None:
        self.name = name
        self.route = route
        self.size_bytes = size_bytes
        self.rtt = rtt
        self.mss = mss
        #: End-to-end random-loss probability of the route (drives the
        #: Mathis ceiling; 0 = no loss cap).
        self.loss_rate = loss_rate
        #: Constant of the loss-limited ceiling; pick the value matching
        #: the congestion controller the flow stands in for.
        self.mathis_c = mathis_c
        self.start_time = 0.0
        self.started = False
        self.remaining_bytes = float(size_bytes)
        #: Current drain rate (what the link reservation sees).
        self.rate_bps = 0.0
        #: Slow-start ceiling; doubles every RTT while ``ramping``.
        self.ramp_bps = 0.0
        self.ramping = True
        self.completed = False
        self.completion_time: Optional[float] = None
        self.on_complete: Optional[Callable[["FluidFlow"], None]] = None
        self._last_settle = 0.0
        self._completion_timer: Optional[Timer] = None
        self._ramp_timer: Optional[Timer] = None

    @property
    def transferred_bytes(self) -> float:
        """Bytes drained so far (settled state only)."""
        return self.size_bytes - self.remaining_bytes

    def steady_cap_bps(self) -> float:
        """Loss-model (Mathis) ceiling, ignoring the slow-start ramp."""
        if self.loss_rate > 0.0:
            return (
                self.mss * 8.0 / self.rtt
                * self.mathis_c / math.sqrt(self.loss_rate)
            )
        return math.inf

    def rate_cap_bps(self) -> float:
        """Per-flow ceiling from slow start and the loss model."""
        cap = self.steady_cap_bps()
        if self.ramping and self.ramp_bps < cap:
            cap = self.ramp_bps
        return cap

    def fct(self) -> float:
        """Flow completion time (seconds from start to last byte)."""
        if self.completion_time is None:
            raise RuntimeError(f"flow {self.name!r} has not completed")
        return self.completion_time - self.start_time


class FluidNetwork:
    """Coordinates fluid flows and their link-capacity accounting.

    One instance per simulation; flows are added with :meth:`add_flow`
    and everything else — share updates, slow-start ramping, completion
    events, ``Link.fluid_reserved_bps`` maintenance — is event-driven.
    """

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.tracer = tracer
        self.flows: List[FluidFlow] = []
        #: Started-but-not-completed flows, maintained incrementally so
        #: reallocation cost scales with the *concurrent* flow count,
        #: not with every flow the network ever carried (open-loop
        #: workloads add thousands of short flows over a run).
        self._active: List[FluidFlow] = []
        #: Number of packet-level connections crossing each link; a
        #: link with P packet connections and F fluid flows yields only
        #: ``F/(F+P)`` of its rate to the fluid side, leaving the rest
        #: to the packet simulation (which enforces its own share via
        #: real queueing).
        self._packet_load: Dict[Link, int] = {}
        #: Links currently carrying a reservation (cleared on drain).
        self._reserved_links: List[Link] = []
        self.reallocations = 0

    # -- configuration -----------------------------------------------------

    def set_packet_load(self, link: Link, connections: int) -> None:
        """Declare how many packet-level connections cross ``link``.

        Reallocates immediately when the load actually changed and
        fluid flows are active: under open-loop churn, packet flows
        join and leave between fluid events, and a stale packet count
        would leave the fluid side holding a reservation it is no
        longer entitled to (or starving itself) until the next
        unrelated reallocation.
        """
        if connections < 0:
            raise ValueError("connections must be non-negative")
        if self._packet_load.get(link, 0) == connections:
            return
        self._packet_load[link] = connections
        if self._active:
            self._reallocate()

    # -- flow lifecycle ----------------------------------------------------

    def add_flow(
        self,
        name: str,
        route: Sequence[Link],
        size_bytes: int,
        rtt: float,
        mss: int = 1300,
        start_in: float = 0.0,
        on_complete: Optional[Callable[[FluidFlow], None]] = None,
        mathis_c: float = MATHIS_C,
    ) -> FluidFlow:
        """Create a flow; it starts ``start_in`` seconds from now.

        ``rtt`` is the flow's base round-trip time (drives the
        slow-start ramp and the loss ceiling).  The route's end-to-end
        loss probability is derived from the links' ``loss_rate``.
        """
        if not route:
            raise ValueError("a fluid flow needs at least one link")
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        survive = 1.0
        for link in route:
            survive *= 1.0 - link.loss_rate
        flow = FluidFlow(
            name, tuple(route), size_bytes, rtt, mss,
            loss_rate=1.0 - survive, mathis_c=mathis_c,
        )
        flow.on_complete = on_complete
        self.flows.append(flow)
        if start_in <= 0.0:
            self._start_flow(flow)
        else:
            self.sim.schedule(start_in, self._start_flow, flow)
        return flow

    def _start_flow(self, flow: FluidFlow) -> None:
        now = self.sim.now
        flow.started = True
        flow.start_time = now
        flow._last_settle = now
        self._active.append(flow)
        flow.ramp_bps = INITIAL_WINDOW_SEGMENTS * flow.mss * 8.0 / flow.rtt
        if self.tracer is not None:
            self.tracer.emit(
                now, "network", CAT_FLUID, "flow_started", -1,
                flow=flow.name, size_bytes=flow.size_bytes, rtt=flow.rtt,
            )
        self._reallocate()

    # -- share computation -------------------------------------------------

    def _active_flows(self) -> List[FluidFlow]:
        return self._active

    def _fluid_capacity(self, link: Link, n_fluid: int) -> float:
        """Capacity the fluid side may take on ``link``.

        With P packet connections sharing the link, F fluid flows take
        the fraction F/(F+P) — their aggregate fair share under the
        equal-split assumption the packet side's congestion control
        also converges to.
        """
        packet = self._packet_load.get(link, 0)
        if packet <= 0:
            return link.rate_bps
        return link.rate_bps * n_fluid / (n_fluid + packet)

    def _settle(self, now: float) -> None:
        """Account bytes drained since the last rate change."""
        for flow in self._active_flows():
            dt = now - flow._last_settle
            if dt > 0.0 and flow.rate_bps > 0.0:
                flow.remaining_bytes -= flow.rate_bps / 8.0 * dt
                if flow.remaining_bytes < 0.0:
                    flow.remaining_bytes = 0.0
            flow._last_settle = now

    def _water_fill(
        self,
        flows: List[FluidFlow],
        caps: Dict[Link, float],
    ) -> Dict[FluidFlow, float]:
        """Max-min progressive filling of ``flows`` into ``caps``."""
        alloc: Dict[FluidFlow, float] = {}
        unallocated = list(flows)
        while unallocated:
            # The tightest link bounds this round's equal share.
            best_share = math.inf
            best_link: Optional[Link] = None
            for link, cap in caps.items():
                users = sum(1 for f in unallocated if link in f.route)
                if users == 0:
                    continue
                share = cap / users
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                # No remaining flow crosses a capacitated link.
                for f in unallocated:
                    alloc[f] = 0.0
                break
            # Settle every flow over the tightest link in one pass;
            # rebuilding the survivor list keeps a round linear in the
            # flow count (list.remove() per settled flow was quadratic
            # and dominated high-concurrency open-loop runs).
            survivors: List[FluidFlow] = []
            for f in unallocated:
                if best_link in f.route:
                    alloc[f] = best_share
                    for link in f.route:
                        caps[link] = max(0.0, caps[link] - best_share)
                else:
                    survivors.append(f)
            unallocated = survivors
        return alloc

    def _reallocate(self) -> None:
        """Recompute every flow's rate; regenerate predicted events.

        This is the fluid engine's single update point, run whenever
        the share structure changes (flow started, completed, ramp
        doubled, or an explicit :meth:`invalidate`).
        """
        now = self.sim.now
        self._settle(now)
        active = self._active_flows()
        self.reallocations += 1

        caps: Dict[Link, float] = {}
        n_active = len(active)
        for flow in active:
            for link in flow.route:
                if link not in caps:
                    caps[link] = self._fluid_capacity(link, n_active)

        # Steady-state entitlement (loss cap only) decides whether a
        # flow is still ramping: once the ramp ceiling reaches what the
        # flow could sustain anyway, slow start is over for good
        # (shares only shrink as flows join; if they grow later the
        # ramp is already past the old bound).
        steady = self._capped_fill(active, caps, FluidFlow.steady_cap_bps)
        for flow in active:
            if flow.ramping and flow.ramp_bps >= steady.get(flow, 0.0) * (1.0 - 1e-6):
                flow.ramping = False
                timer = flow._ramp_timer
                if timer is not None:
                    timer.cancel()
                    flow._ramp_timer = None

        # Actual rates honour the ramp ceilings too; slack from capped
        # flows redistributes to the rest.
        rates = self._capped_fill(active, caps, FluidFlow.rate_cap_bps)
        self._apply_rates(active, rates, now)

    def _capped_fill(
        self,
        active: List[FluidFlow],
        caps: Dict[Link, float],
        cap_fn: Callable[[FluidFlow], float],
    ) -> Dict[FluidFlow, float]:
        """Max-min filling with per-flow ceilings from ``cap_fn``.

        Flows capped below their fair share release the slack to the
        rest (iterative water-filling; terminates because every pass
        fixes at least one capped flow).

        The single-bottleneck shape — every flow crossing one and the
        same capacitated link — is the workload harness's hot case with
        hundreds of concurrent flows, so it takes an O(n log n) sorted
        fill instead of the generic iteration (which is quadratic when
        per-flow ceilings are heterogeneous, as they are during slow
        start).
        """
        if len(caps) == 1 and all(len(f.route) == 1 for f in active):
            (capacity,) = caps.values()
            return self._capped_fill_single(active, capacity, cap_fn)
        working = dict(caps)
        rates: Dict[FluidFlow, float] = {}
        remaining = list(active)
        while remaining:
            alloc = self._water_fill(remaining, dict(working))
            capped = [
                f for f in remaining
                if cap_fn(f) < alloc.get(f, 0.0) * (1.0 - _REL_EPS)
            ]
            if not capped:
                rates.update(alloc)
                break
            capped_ids = {id(f) for f in capped}
            for f in capped:
                rate = cap_fn(f)
                rates[f] = rate
                for link in f.route:
                    working[link] = max(0.0, working[link] - rate)
            remaining = [f for f in remaining if id(f) not in capped_ids]
        return rates

    @staticmethod
    def _capped_fill_single(
        active: List[FluidFlow],
        capacity: float,
        cap_fn: Callable[[FluidFlow], float],
    ) -> Dict[FluidFlow, float]:
        """Capped max-min on ONE shared link: sorted progressive fill.

        Visiting flows by ascending ceiling, a flow whose ceiling is
        below the equal share of the still-unserved set is capped there
        and its slack stays in the pool; the rest split the remainder
        evenly.  Identical to the generic fixed-point, in one pass.
        """
        order = sorted(
            ((cap_fn(f), i, f) for i, f in enumerate(active)),
            key=lambda item: (item[0], item[1]),
        )
        rates: Dict[FluidFlow, float] = {}
        remaining = capacity
        left = len(order)
        for ceiling, _i, flow in order:
            share = remaining / left
            rate = ceiling if ceiling < share * (1.0 - _REL_EPS) else share
            rates[flow] = rate
            remaining = max(0.0, remaining - rate)
            left -= 1
        return rates

    def _apply_rates(
        self,
        active: List[FluidFlow],
        rates: Dict[FluidFlow, float],
        now: float,
    ) -> None:
        # Update per-link reservations (packet traffic sees the rest).
        for link in self._reserved_links:
            link.fluid_reserved_bps = 0.0
        reserved: List[Link] = []
        seen = set()
        for flow in active:
            rate = rates.get(flow, 0.0)
            flow.rate_bps = rate
            for link in flow.route:
                link_id = id(link)
                if link_id not in seen:
                    seen.add(link_id)
                    reserved.append(link)
                link.fluid_reserved_bps += rate
        self._reserved_links = reserved

        tracer = self.tracer
        for flow in active:
            rate = flow.rate_bps
            if tracer is not None:
                tracer.emit(
                    now, "network", CAT_FLUID, "share_update", -1,
                    flow=flow.name, rate_bps=rate,
                    remaining_bytes=flow.remaining_bytes,
                    ramping=flow.ramping,
                )
            # Predictive completion regeneration.
            timer = flow._completion_timer
            if rate > 0.0:
                deadline = now + flow.remaining_bytes * 8.0 / rate
                if (
                    timer is None
                    or timer.cancelled
                    or abs(timer.time - deadline) > _REL_EPS * max(1.0, deadline)
                ):
                    if timer is not None:
                        timer.cancel()
                    flow._completion_timer = self.sim.schedule_at(
                        deadline, self._on_flow_complete, flow
                    )
            elif timer is not None:
                timer.cancel()
                flow._completion_timer = None
            # Slow-start doubling: one pending per-RTT event per flow.
            if flow.ramping and (
                flow._ramp_timer is None or flow._ramp_timer.cancelled
            ):
                flow._ramp_timer = self.sim.schedule(
                    flow.rtt, self._on_ramp, flow
                )

    # -- event handlers ----------------------------------------------------

    def _on_ramp(self, flow: FluidFlow) -> None:
        flow._ramp_timer = None
        if flow.completed or not flow.ramping:
            return
        flow.ramp_bps *= 2.0
        self._reallocate()

    def _on_flow_complete(self, flow: FluidFlow) -> None:
        flow._completion_timer = None
        if flow.completed:
            return
        now = self.sim.now
        self._settle(now)
        # Guard against a stale prediction (shares changed since).
        if flow.remaining_bytes > max(1.0, flow.size_bytes * 1e-12):
            self._reallocate()
            return
        flow.remaining_bytes = 0.0
        flow.completed = True
        flow.completion_time = now
        flow.rate_bps = 0.0
        self._active.remove(flow)
        timer = flow._ramp_timer
        if timer is not None:
            timer.cancel()
            flow._ramp_timer = None
        if self.tracer is not None:
            self.tracer.emit(
                now, "network", CAT_FLUID, "flow_completed", -1,
                flow=flow.name, fct=flow.fct(),
            )
        if flow.on_complete is not None:
            flow.on_complete(flow)
        self._reallocate()

    def invalidate(self) -> None:
        """Re-derive shares after an external change (e.g. link rate)."""
        self._reallocate()


# -- convenience -----------------------------------------------------------


class FluidTransferResult:
    """Outcome of :func:`simulate_fluid_transfer`."""

    __slots__ = ("transfer_time", "goodput_bps", "sim_events")

    def __init__(self, transfer_time: float, goodput_bps: float, sim_events: int) -> None:
        self.transfer_time = transfer_time
        self.goodput_bps = goodput_bps
        self.sim_events = sim_events


def simulate_fluid_transfer(
    rate_bps: float,
    rtt: float,
    file_size: int,
    loss_rate: float = 0.0,
    mss: int = 1300,
    mathis_c: float = MATHIS_C_CUBIC2,
) -> FluidTransferResult:
    """Model one bulk download analytically; mirror of ``run_bulk``.

    The reported time matches the packet-level definition (first
    handshake packet to last delivered byte): the server starts
    sending ~1.5 RTT after the client's CHLO (handshake + request),
    and the final byte needs another half RTT to propagate.  The
    default ``mathis_c`` matches ``run_bulk``'s default controller
    (cubic2).
    """
    sim = Simulator()
    link = Link(sim, rate_bps, rtt / 2.0, 10 * 1500, loss_rate=loss_rate)
    network = FluidNetwork(sim)
    flow = network.add_flow(
        "bulk", [link], file_size, rtt, mss=mss, start_in=1.5 * rtt,
        mathis_c=mathis_c,
    )
    sim.run()
    if not flow.completed:
        raise RuntimeError("fluid transfer never completed")
    transfer_time = flow.completion_time + 0.5 * rtt  # type: ignore[operator]
    return FluidTransferResult(
        transfer_time=transfer_time,
        goodput_bps=file_size * 8.0 / transfer_time,
        sim_events=sim.events_processed,
    )


def background_transfer(
    network: FluidNetwork,
    name: str,
    route: Sequence[Link],
    size_bytes: int,
    rtt: float,
    config: Optional["QuicConfig"] = None,
    start_in: float = 0.0,
) -> FluidFlow:
    """Start one background transfer at the fidelity the config asks.

    The dispatch point for ``QuicConfig.fidelity``: with ``"fluid"``
    (or no config) the transfer becomes a :class:`FluidFlow`; with
    ``"packet"`` the caller should build real endpoints instead, and
    this raises to catch the mismatch early.
    """
    if config is not None and config.fidelity != "fluid":
        raise ValueError(
            "background_transfer models fluid flows only; "
            f"config.fidelity={config.fidelity!r} wants packet-level endpoints"
        )
    mss = config.mss if config is not None else 1300
    # Match the loss model to the controller the flow stands in for.
    cc = config.cc_algorithm if config is not None else "cubic2"
    mathis_c = MATHIS_C_CUBIC2 if cc == "cubic2" else MATHIS_C
    return network.add_flow(
        name, route, size_bytes, rtt, mss=mss, start_in=start_in,
        mathis_c=mathis_c,
    )
