"""Value semantics of the ``__slots__`` frame classes.

The frames used to be frozen dataclasses; the hot-path rewrite turned
them into ``__slots__`` classes with an object pool for the two
high-churn types.  The wire round-trip corpora (hypothesis) and the
reassembly layer compare and hash frames, so these tests pin the
frozen-dataclass contract the rewrite promised to preserve:

* equality is by-value over the declared fields, never identity;
* instances of different frame classes never compare equal;
* equal frames hash equal (dict/set membership keeps working);
* ``repr`` shows every declared field, round-trip-eval style;
* pooling cannot resurrect or alias a frame that is still observable.
"""

from __future__ import annotations

import pytest

from repro.quic.frames import (
    AckFrame,
    AddAddressFrame,
    ConnectionCloseFrame,
    Frame,
    HandshakeFrame,
    PathChallengeFrame,
    PathInfo,
    PathResponseFrame,
    PathsFrame,
    PingFrame,
    StreamFrame,
    WindowUpdateFrame,
)

#: (factory, same-value factory, different-value factory) per class.
CASES = [
    (
        lambda: StreamFrame(4, 100, b"abc", fin=True),
        lambda: StreamFrame(4, 100, b"abc", fin=True),
        lambda: StreamFrame(4, 101, b"abc", fin=True),
    ),
    (
        lambda: AckFrame(1, 9, 0.01, ((8, 10), (3, 5))),
        lambda: AckFrame(1, 9, 0.01, ((8, 10), (3, 5))),
        lambda: AckFrame(1, 9, 0.02, ((8, 10), (3, 5))),
    ),
    (
        lambda: WindowUpdateFrame(0, 65536),
        lambda: WindowUpdateFrame(0, 65536),
        lambda: WindowUpdateFrame(4, 65536),
    ),
    (
        lambda: PathsFrame((PathInfo(0, 30000),), (1,)),
        lambda: PathsFrame((PathInfo(0, 30000),), (1,)),
        lambda: PathsFrame((PathInfo(0, 30001),), (1,)),
    ),
    (
        lambda: AddAddressFrame("10.0.0.1"),
        lambda: AddAddressFrame("10.0.0.1"),
        lambda: AddAddressFrame("10.0.0.2"),
    ),
    (
        lambda: PathChallengeFrame(b"12345678"),
        lambda: PathChallengeFrame(b"12345678"),
        lambda: PathChallengeFrame(b"87654321"),
    ),
    (
        lambda: PathResponseFrame(b"12345678"),
        lambda: PathResponseFrame(b"12345678"),
        lambda: PathResponseFrame(b"87654321"),
    ),
    (
        lambda: HandshakeFrame("CHLO", 730),
        lambda: HandshakeFrame("CHLO", 730),
        lambda: HandshakeFrame("SHLO", 730),
    ),
    (
        lambda: ConnectionCloseFrame(1, "bye"),
        lambda: ConnectionCloseFrame(1, "bye"),
        lambda: ConnectionCloseFrame(2, "bye"),
    ),
]
IDS = [case[0]().__class__.__name__ for case in CASES]


class TestValueSemantics:
    @pytest.mark.parametrize("make,same,different", CASES, ids=IDS)
    def test_equality_is_by_value(self, make, same, different):
        a, b = make(), same()
        assert a is not b
        assert a == b
        assert make() != different()

    @pytest.mark.parametrize("make,same,different", CASES, ids=IDS)
    def test_equal_frames_hash_equal(self, make, same, different):
        assert hash(make()) == hash(same())
        # Set/dict membership — what the reassembly layer relies on.
        assert same() in {make()}
        assert different() not in {make()}

    @pytest.mark.parametrize("make,same,different", CASES, ids=IDS)
    def test_repr_names_class_and_fields(self, make, same, different):
        frame = make()
        text = repr(frame)
        assert text.startswith(frame.__class__.__name__ + "(")
        for name in frame._fields:
            assert f"{name}=" in text

    def test_different_classes_never_equal(self):
        # Same field values, different type: must not compare equal.
        assert PathChallengeFrame(b"12345678") != PathResponseFrame(b"12345678")
        assert PingFrame() != object()
        assert PingFrame() == PingFrame()

    def test_stream_frame_len_and_wire_size(self):
        frame = StreamFrame(4, 0, b"hello")
        assert len(frame) == 5
        assert frame.wire_size() > 5

    def test_mutation_changes_equality(self):
        # __slots__ classes are mutable; the transport treats frames as
        # immutable by convention, but equality must track field values
        # (no caching of the hashable tuple).
        a, b = StreamFrame(4, 0, b"x"), StreamFrame(4, 0, b"x")
        assert a == b
        a.offset = 1
        assert a != b


class TestPoolSafety:
    def test_release_recycles_and_acquire_reuses(self):
        frame = StreamFrame.acquire(8, 0, b"payload")
        frame.retain()
        frame.release()
        reused = StreamFrame.acquire(12, 50, b"other")
        assert reused is frame  # LIFO free list
        assert reused.stream_id == 12
        assert reused.offset == 50
        assert reused.data == b"other"
        # Drain what this test parked so later tests see a clean pool.
        reused.retain()
        reused.release()
        StreamFrame._free.clear()

    def test_release_without_retain_is_a_no_op(self):
        # Frames built directly by tests (or by the wire decoder for
        # externally held corpora) are never pooled by an unbalanced
        # release: use-after-recycle is the bug class this prevents.
        frame = StreamFrame(4, 0, b"external")
        frame.release()
        assert frame.pool_refs == 0
        assert StreamFrame.acquire(5, 1, b"new") is not frame
        StreamFrame._free.clear()

    def test_outstanding_observer_blocks_recycling(self):
        frame = AckFrame.acquire(0, 7, 0.0, ((6, 8),))
        frame.retain()  # recovery registration
        frame.retain()  # in-flight datagram
        frame.release()
        # One observer left: the frame must not be on the free list.
        assert AckFrame.acquire(0, 9, 0.0, ((8, 10),)) is not frame
        assert frame.ranges == ((6, 8),)  # payload untouched
        frame.release()
        AckFrame._free.clear()

    def test_recycle_drops_payload_references(self):
        frame = StreamFrame.acquire(4, 0, b"big payload")
        frame.retain()
        frame.release()
        assert frame.data == b""  # parked frames hold no byte buffers
        StreamFrame._free.clear()

    def test_pooled_frames_keep_value_semantics(self):
        # A recycled-and-reinitialized frame is indistinguishable from
        # a freshly constructed one.
        frame = StreamFrame.acquire(4, 0, b"first")
        frame.retain()
        frame.release()
        reused = StreamFrame.acquire(4, 100, b"abc", fin=True)
        assert reused == StreamFrame(4, 100, b"abc", fin=True)
        assert hash(reused) == hash(StreamFrame(4, 100, b"abc", fin=True))
        reused.retain()
        reused.release()
        StreamFrame._free.clear()

    def test_unpooled_frames_pooling_is_noop(self):
        frame = WindowUpdateFrame(0, 1024)
        assert not frame.poolable
        frame.retain()
        frame.release()  # no refcount, no free list, no error
        assert frame == WindowUpdateFrame(0, 1024)
