"""Tests for the streaming (paced media) application."""

import pytest

from repro.apps.streaming import StreamingApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig


def run_stream(
    protocol="mpquic",
    paths=None,
    bitrate=4e6,
    duration=6.0,
    kill_path_at=None,
    quic_config=None,
    seed=1,
):
    sim = Simulator()
    topo = TwoPathTopology(
        sim,
        paths or [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
        seed=seed,
    )
    client, server = make_client_server(
        protocol, sim, topo, quic_config=quic_config
    )
    app = StreamingApp(
        sim, client, server, bitrate_bps=bitrate, duration=duration
    )
    if kill_path_at is not None:
        sim.schedule_at(kill_path_at, topo.set_path_loss, 0, 100.0)
    ok = app.run(timeout=duration * 6 + 30)
    return app, ok


class TestSmoothPlayback:
    def test_clean_network_never_rebuffers(self):
        app, ok = run_stream()
        assert ok
        assert app.rebuffer_count == 0
        assert app.playback_position >= app.total_bytes

    def test_startup_delay_is_buffering_plus_rtt(self):
        app, ok = run_stream()
        assert ok
        # 1 RTT handshake + ~2 chunks of media at 4 Mbps over 10 Mbps.
        assert 0.03 < app.startup_delay < 0.6

    def test_finishes_roughly_at_media_duration(self):
        app, ok = run_stream(duration=5.0)
        assert ok
        assert app.finished_at == pytest.approx(
            5.0 + app.startup_delay, abs=1.0
        )

    def test_underprovisioned_link_rebuffers(self):
        # 4 Mbps media over a 2 Mbps path must stall repeatedly.
        app, ok = run_stream(
            protocol="quic",
            paths=[PathConfig(2, 30, 60), PathConfig(2, 30, 60)],
            duration=4.0,
        )
        assert ok
        assert app.rebuffer_count >= 1
        assert app.rebuffer_time > 0.5


class TestStreamingThroughFailure:
    KILL_AT = 2.0

    def test_mpquic_recovers_quickly(self):
        app, ok = run_stream(kill_path_at=self.KILL_AT, duration=6.0)
        assert ok
        # At most a brief stall around the failure.
        assert app.rebuffer_time < 1.5

    def test_redundant_scheduler_streams_through_failure(self):
        app, ok = run_stream(
            kill_path_at=self.KILL_AT, duration=6.0,
            quic_config=QuicConfig(scheduler="redundant"),
        )
        assert ok
        assert app.rebuffer_count == 0

    def test_single_path_quic_stalls_without_second_path(self):
        app, ok = run_stream(
            protocol="quic",
            kill_path_at=self.KILL_AT,
            duration=6.0,
            quic_config=QuicConfig(),  # no migration configured
        )
        # Playback can never complete: the only path is dead.
        assert not ok
        assert app.playback_position < app.total_bytes

    def test_migration_saves_single_path_quic(self):
        app, ok = run_stream(
            protocol="quic",
            kill_path_at=self.KILL_AT,
            duration=6.0,
            quic_config=QuicConfig(
                migrate_on_failure=True, keepalive_interval=0.2
            ),
        )
        assert ok
        assert app.rebuffer_time < 3.0
