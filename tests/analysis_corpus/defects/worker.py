"""Planted sweep-purity defects on the worker (run_cell) path.

Everything flagged here is an input or effect the result-cache key
cannot see: module-level mutable state (own and cross-module) and the
process environment.
"""

import os

from . import state

_fallback_plan = {"cells": 0}

_last_result = None


def _bump_counter():
    # Cross-module mutation of shared dict state (read + write).
    state.cell_counter["runs"] = state.cell_counter.get("runs", 0) + 1  # corpus: expect[sweep-purity]


def _record(result):
    global _last_result
    _last_result = result  # corpus: expect[sweep-purity]


def simulate(cell, plan, mode):
    result = {"cell": cell, "cells": plan["cells"], "mode": mode}
    _record(result)
    return result


def run_cell(cell):
    _bump_counter()
    plan = _fallback_plan  # corpus: expect[sweep-purity]
    mode = os.environ.get("REPRO_MODE", "fast")  # corpus: expect[sweep-purity]
    return simulate(cell, plan, mode)
