"""Opt-in runtime performance metrics (``REPRO_METRICS=1``).

Where :mod:`repro.obs.events` answers *what the protocol did*
(simulated time), this registry answers *where the runtime went*
(wall-clock time and event churn): engine events processed and
cancelled-timer churn, packets serialized/parsed, scheduler decisions,
reassembly operations, congestion-controller state transitions — plus
per-subsystem wall-time attribution, so "profile and flatten the hot
path" starts from numbers instead of guesses.

The hooks are no-ops by default.  Every instrumented call site is
guarded as::

    if _metrics.METRICS:
        _metrics.REGISTRY.inc("engine.events_processed")

so a production run pays one module-attribute load and a falsy branch
per site — the exact wiring discipline of ``repro.util.sanitize``
(``tests/test_obs_metrics.py`` pins it, and ``benchmarks/
bench_engine.py`` measures it).  Enable via the environment (read once
at import)::

    REPRO_METRICS=1 python -m pytest tests/test_handover_repro.py

or programmatically/with a scope in tests::

    from repro.obs import metrics
    with metrics.enabled():
        run_simulation()
    print(json.dumps(metrics.REGISTRY.snapshot(), indent=2))

Wall-time attribution uses *exclusive* scoped timers: entering a scope
pauses its parent, so the per-subsystem seconds sum exactly to the
outermost scope's elapsed wall time.  The simulator opens an
``engine`` scope around its run loop and re-scopes each callback to
the subsystem owning the callback's module; transport entry points
(e.g. ``QuicConnection.datagram_received``) open nested scopes so work
is attributed to the layer doing it, not the layer that scheduled it.

Set ``REPRO_METRICS_FILE=<path>`` to atomically write the registry
snapshot as JSON at interpreter exit (how CI captures the artifact).

This module deliberately imports nothing from ``repro`` at module
level — hot-path modules (``netsim.engine``, ``quic.wire``) import it,
so it must sit at the very bottom of the dependency graph.  The one
exception is a call-time import of the telemetry category constant in
:func:`emit_into` (a cold path), so snapshot events carry
``repro.obs.events.CAT_METRICS`` itself rather than a local copy that
could drift.  It is also the **only**
module in ``src/`` allowed to touch ``time.perf_counter`` — the
``perf-timing`` analyzer rule routes every other timing need through
:data:`clock` / :func:`timed` so no measurement escapes the registry.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "METRICS",
    "REGISTRY",
    "MetricsRegistry",
    "clock",
    "emit_into",
    "enabled",
    "subsystem_of",
    "timed",
    "write_snapshot",
]

#: The sanctioned wall-clock handle.  Harness code (benchmarks, the
#: sweep executor) reads wall time through this name instead of calling
#: ``time.perf_counter`` directly, so the ``perf-timing`` analyzer rule
#: can prove that no timing bypasses the observability layer.
clock: Callable[[], float] = time.perf_counter  # repro: allow[wall-clock,perf-timing] the one sanctioned clock


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


#: Global switch.  Call sites must read it as ``metrics.METRICS`` (an
#: attribute access, not a from-import) so :func:`enabled` can flip it
#: for everyone at once.
METRICS: bool = _env_enabled()


#: ``module name -> subsystem`` attribution for engine callbacks:
#: ``repro.quic.connection`` -> ``quic``.  Anything outside ``repro``
#: (lambdas defined in tests, functools partials of stdlib functions)
#: lands in ``other``.
_SUBSYSTEM_CACHE: Dict[str, str] = {}


def subsystem_of(module: Optional[str]) -> str:
    """Map a module name to its owning subsystem (cached)."""
    if module is None:
        return "other"
    cached = _SUBSYSTEM_CACHE.get(module)
    if cached is not None:
        return cached
    parts = module.split(".")
    sub = parts[1] if len(parts) >= 2 and parts[0] == "repro" else "other"
    _SUBSYSTEM_CACHE[module] = sub
    return sub


class Histogram:
    """Streaming summary of a value distribution (no sample storage).

    Tracks count / sum / min / max plus power-of-two bucket counts, so
    a million observations cost four scalars and a small dict — cheap
    enough for per-packet sizes and per-callback durations.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: bucket exponent -> count; observation ``v`` lands in bucket
        #: ``v.bit_length()`` for ints (0 for zero/negatives).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": (self.total / self.count) if self.count else None,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Process-global store of counters, gauges, histograms and timers.

    One registry instance (:data:`REGISTRY`) serves the whole process;
    :func:`enabled` resets it by default so scoped measurements start
    clean.  All methods are plain dict operations — no locks, because
    the simulator is single-threaded and worker processes each carry
    their own registry.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: subsystem -> exclusive wall seconds (scope stack output).
        self.wall: Dict[str, float] = {}
        #: Open scopes as ``[subsystem, slice_start]`` pairs; entering a
        #: nested scope banks the parent's running slice first, so each
        #: subsystem accumulates *exclusive* time.
        self._stack: List[List[Any]] = []

    # -- counters / gauges / histograms ---------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- scoped wall-time attribution ------------------------------------

    def enter(self, subsystem: str) -> None:
        """Open a scope: pause the parent, start timing ``subsystem``."""
        now = clock()
        stack = self._stack
        if stack:
            top = stack[-1]
            wall = self.wall
            wall[top[0]] = wall.get(top[0], 0.0) + (now - top[1])
            top[1] = now
        stack.append([subsystem, now])

    def exit(self) -> None:
        """Close the innermost scope and resume its parent."""
        now = clock()
        sub, start = self._stack.pop()
        wall = self.wall
        wall[sub] = wall.get(sub, 0.0) + (now - start)
        if self._stack:
            self._stack[-1][1] = now

    # -- export ----------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.wall.clear()
        self._stack.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable view of everything accumulated so far."""
        wall = dict(self.wall)
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
            "wall_time_seconds": wall,
            "wall_time_total_seconds": sum(wall.values()),
        }


#: The process-global registry every instrumented call site feeds.
REGISTRY = MetricsRegistry()


@contextmanager
def enabled(value: bool = True, fresh: bool = True) -> Iterator[MetricsRegistry]:
    """Scoped enable (or disable) of metrics collection, for tests.

    ``fresh`` (default) resets :data:`REGISTRY` on entry so the scope
    measures only its own work; pass ``False`` to accumulate.
    """
    global METRICS
    previous = METRICS
    if fresh:
        REGISTRY.reset()
    METRICS = value
    try:
        yield REGISTRY
    finally:
        METRICS = previous


@contextmanager
def timed(subsystem: str) -> Iterator[None]:
    """Scoped wall-time attribution to ``subsystem`` (no-op when off).

    The coarse-grained companion of the engine's per-callback scopes:
    wrap harness phases (cache probe, result write-back) so their cost
    shows up next to the simulation subsystems.
    """
    if not METRICS:
        yield
        return
    REGISTRY.enter(subsystem)
    try:
        yield
    finally:
        REGISTRY.exit()


def emit_into(tracer: Any, now: float = 0.0, host: str = "runtime") -> int:
    """Merge the registry snapshot into a tracer as ``metrics:*`` events.

    Emits one ``metrics:counter`` / ``metrics:gauge`` /
    ``metrics:histogram`` / ``metrics:wall_time`` event per entry (at
    simulated time ``now``, since wall-clock instants have no meaning
    on the simulated timeline) plus a closing ``metrics:snapshot``
    carrying the totals.  Returns the number of events emitted.
    """
    # Imported at call time: this module must not import
    # ``repro.obs.events`` at module level (events -> netsim.trace ->
    # netsim.engine -> obs.metrics would be a cycle), but the category
    # must still be the registry's constant, not a drifted local copy.
    from repro.obs.events import CAT_METRICS

    snap = REGISTRY.snapshot()
    emitted = 0
    # The payload key is ``metric`` (not ``name``): the tracer's event
    # name is already "counter"/"gauge"/"histogram".
    for name, value in sorted(snap["counters"].items()):
        tracer.emit(now, host, CAT_METRICS, "counter", metric=name, value=value)
        emitted += 1
    for name, value in sorted(snap["gauges"].items()):
        tracer.emit(now, host, CAT_METRICS, "gauge", metric=name, value=value)
        emitted += 1
    for name, hist in snap["histograms"].items():
        tracer.emit(now, host, CAT_METRICS, "histogram", metric=name, **hist)
        emitted += 1
    for subsystem, seconds in sorted(snap["wall_time_seconds"].items()):
        tracer.emit(
            now, host, CAT_METRICS, "wall_time",
            subsystem=subsystem, seconds=seconds,
        )
        emitted += 1
    tracer.emit(
        now, host, CAT_METRICS, "snapshot",
        wall_time_total_seconds=snap["wall_time_total_seconds"],
        counters=len(snap["counters"]),
    )
    return emitted + 1


def write_snapshot(path: "os.PathLike[str] | str") -> None:
    """Atomically write the registry snapshot as JSON to ``path``."""
    import pathlib

    target = pathlib.Path(path)
    if str(target.parent) not in ("", "."):
        target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent or None, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(REGISTRY.snapshot(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _install_exit_dump() -> Optional[str]:
    """Register the ``REPRO_METRICS_FILE`` exit hook (import-time)."""
    path = os.environ.get("REPRO_METRICS_FILE", "").strip()
    if not path:
        return None
    atexit.register(write_snapshot, path)
    return path


_install_exit_dump()


# -- canonical instrumented metric names -------------------------------------
#
# Kept in one place so dashboards, tests and docs agree on spelling.
# Instrumented call sites use the literals directly (a module-constant
# lookup per event would double the hot-path cost for no benefit);
# ``tests/test_obs_metrics.py`` asserts the live names match this list.

INSTRUMENTED_COUNTERS: Tuple[str, ...] = (
    "engine.events_processed",
    "engine.timers_scheduled",
    "engine.timers_cancelled",
    "engine.heap_compactions",
    "wire.packets_encoded",
    "wire.packets_decoded",
    "quic.packets_sent",
    "quic.packets_received",
    "scheduler.decisions",
    "reassembly.chunks_inserted",
    "reassembly.deliveries",
    "cc.state_transitions",
)
