"""Lightweight packet/event tracing.

Endpoints may attach a :class:`PacketTrace`; records are plain tuples so
tracing stays cheap and tests/examples can assert on protocol behaviour
(e.g. which path carried which packet number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    host: str
    event: str
    path_id: int
    packet_number: int
    size: int
    detail: str = ""


class PacketTrace:
    """Accumulates :class:`TraceRecord` entries during a simulation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def log(
        self,
        time: float,
        host: str,
        event: str,
        path_id: int = 0,
        packet_number: int = -1,
        size: int = 0,
        detail: str = "",
    ) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        self.records.append(
            TraceRecord(time, host, event, path_id, packet_number, size, detail)
        )

    def filter(
        self,
        event: Optional[str] = None,
        host: Optional[str] = None,
        path_id: Optional[int] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching all provided criteria.

        ``t_min``/``t_max`` bound the record time (inclusive), so a
        ``(t_min, t_max)`` pair selects one time window of the run.
        """
        out = []
        for rec in self.records:
            if event is not None and rec.event != event:
                continue
            if host is not None and rec.host != host:
                continue
            if path_id is not None and rec.path_id != path_id:
                continue
            if t_min is not None and rec.time < t_min:
                continue
            if t_max is not None and rec.time > t_max:
                continue
            out.append(rec)
        return out

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
