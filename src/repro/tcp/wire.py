"""Byte-level encoding of TCP segments.

Like :mod:`repro.quic.wire`, this codec exists to keep the simulator's
size accounting honest — ``Segment.wire_size`` must equal the length of
the actual encoding — and to make the option layouts (timestamps, SACK,
MPTCP DSS) concrete and testable.

Layout: 20-byte IPv4 header, 20-byte TCP header, then options in a
fixed order (timestamps; SACK; DSS), padded as real stacks do via the
option length fields themselves (we count exact sizes; alignment NOPs
are folded into the per-option constants of :mod:`repro.tcp.segment`).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.tcp.segment import (
    BASE_HEADER,
    DSS_OPTION,
    SACK_BASE,
    SACK_BLOCK_SIZE,
    Segment,
    TIMESTAMP_OPTION,
)

_FLAG_SYN = 0x02
_FLAG_FIN = 0x01
_FLAG_DATA_FIN = 0x04
_FLAG_RETRANSMISSION = 0x08
_FLAG_HAS_DSS = 0x10

_FIXED = struct.Struct(">IIQB B H")  # seq, ack, window_edge, flags, nsack, datalen


def encode_segment(segment: Segment) -> bytes:
    """Serialize a segment (a compact stand-in for the real layouts)."""
    flags = 0
    if segment.syn:
        flags |= _FLAG_SYN
    if segment.fin:
        flags |= _FLAG_FIN
    if segment.data_fin:
        flags |= _FLAG_DATA_FIN
    if segment.retransmission:
        flags |= _FLAG_RETRANSMISSION
    has_dss = segment.dsn is not None or segment.data_ack is not None
    if has_dss:
        flags |= _FLAG_HAS_DSS
    out = bytearray()
    out += _FIXED.pack(
        segment.seq, segment.ack, segment.window_edge, flags,
        len(segment.sack_blocks), len(segment.data),
    )
    # Pad the fixed part up to IP+TCP+timestamps.
    fixed_target = BASE_HEADER + TIMESTAMP_OPTION
    out += b"\x00" * (fixed_target - len(out))
    for start, stop in segment.sack_blocks:
        out += struct.pack(">II", start, stop)
    if segment.sack_blocks:
        out += b"\x00" * SACK_BASE
    if has_dss:
        out += struct.pack(
            ">QQHBB",
            segment.dsn if segment.dsn is not None else 0,
            segment.data_ack if segment.data_ack is not None else 0,
            0,
            1 if segment.dsn is not None else 0,
            1 if segment.data_ack is not None else 0,
        )
    out += segment.data
    return bytes(out)


def decode_segment(buf: bytes) -> Segment:
    """Parse bytes produced by :func:`encode_segment`."""
    seq, ack, window_edge, flags, n_sack, data_len = _FIXED.unpack_from(buf, 0)
    pos = BASE_HEADER + TIMESTAMP_OPTION
    sack_blocks: List[Tuple[int, int]] = []
    for _ in range(n_sack):
        start, stop = struct.unpack_from(">II", buf, pos)
        sack_blocks.append((start, stop))
        pos += SACK_BLOCK_SIZE
    if n_sack:
        pos += SACK_BASE
    dsn = None
    data_ack = None
    if flags & _FLAG_HAS_DSS:
        raw_dsn, raw_dack, _res, has_dsn, has_dack = struct.unpack_from(
            ">QQHBB", buf, pos
        )
        pos += DSS_OPTION
        dsn = raw_dsn if has_dsn else None
        data_ack = raw_dack if has_dack else None
    data = buf[pos:pos + data_len]
    return Segment(
        seq=seq,
        ack=ack,
        data=data,
        syn=bool(flags & _FLAG_SYN),
        fin=bool(flags & _FLAG_FIN),
        window_edge=window_edge,
        sack_blocks=tuple(sack_blocks),
        dsn=dsn,
        data_ack=data_ack,
        data_fin=bool(flags & _FLAG_DATA_FIN),
        retransmission=bool(flags & _FLAG_RETRANSMISSION),
    )
