"""Request/response workload for the network-handover study (§4.3).

A client sends a fixed-size request every ``interval`` seconds; the
server echoes a response of the same size immediately.  The app records
the delay from each request's trigger to its response — the series
plotted in the paper's Fig. 11.

Requests and responses are length-prefix framed so they survive byte-
stream coalescing on TCP-family transports.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.apps.transport import TransportEndpoint
from repro.netsim.engine import Simulator

_HEADER = struct.Struct(">IQ")  # payload length, message id


class RequestResponseApp:
    """Periodic request/response exchange measuring per-request delay."""

    def __init__(
        self,
        sim: Simulator,
        client: TransportEndpoint,
        server: TransportEndpoint,
        message_size: int = 750,
        interval: float = 0.4,
        total_requests: int = 35,
        initial_interface: int = 0,
    ) -> None:
        if message_size < _HEADER.size:
            raise ValueError("message_size must cover the framing header")
        self.sim = sim
        self.client = client
        self.server = server
        self.message_size = message_size
        self.interval = interval
        self.total_requests = total_requests
        self.initial_interface = initial_interface
        self.request_times: Dict[int, float] = {}
        #: ``(request id, sent time, response delay)`` per completed pair.
        self.samples: List[Tuple[int, float, float]] = []
        self._next_id = 0
        self._client_buf = b""
        self._server_buf = b""
        client.on_established = self._schedule_next
        client.on_data = self._client_data
        server.on_data = self._server_data

    def start(self) -> None:
        self.client.connect(initial_interface=self.initial_interface)

    # -- client side -------------------------------------------------------

    def _schedule_next(self) -> None:
        if self._next_id >= self.total_requests:
            return
        self._send_request()

    def _send_request(self) -> None:
        msg_id = self._next_id
        self._next_id += 1
        self.request_times[msg_id] = self.sim.now
        payload = _HEADER.pack(self.message_size - _HEADER.size, msg_id)
        payload += b"q" * (self.message_size - len(payload))
        self.client.send(payload)
        if self._next_id < self.total_requests:
            self.sim.schedule(self.interval, self._send_request)

    def _client_data(self, data: bytes, fin: bool) -> None:
        self._client_buf += data
        for msg_id in _drain_messages(self):
            sent = self.request_times.get(msg_id)
            if sent is not None:
                self.samples.append((msg_id, sent, self.sim.now - sent))

    # -- server side -------------------------------------------------------

    def _server_data(self, data: bytes, fin: bool) -> None:
        self._server_buf += data
        while len(self._server_buf) >= _HEADER.size:
            length, msg_id = _HEADER.unpack_from(self._server_buf)
            total = _HEADER.size + length
            if len(self._server_buf) < total:
                break
            self._server_buf = self._server_buf[total:]
            reply = _HEADER.pack(self.message_size - _HEADER.size, msg_id)
            reply += b"r" * (self.message_size - len(reply))
            self.server.send(reply)

    # -- results -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        return len(self.samples) >= self.total_requests

    def delays(self) -> List[Tuple[float, float]]:
        """``(request sent time, delay)`` pairs sorted by send time."""
        return sorted((sent, delay) for _mid, sent, delay in self.samples)

    def run(self, timeout: float = 60.0, max_events: int = 50_000_000) -> bool:
        self.start()
        return self.sim.run_until(
            lambda: self.complete, timeout=timeout, max_events=max_events
        )


def _drain_messages(app: RequestResponseApp):
    """Yield completed message ids from the client buffer."""
    while len(app._client_buf) >= _HEADER.size:
        length, msg_id = _HEADER.unpack_from(app._client_buf)
        total = _HEADER.size + length
        if len(app._client_buf) < total:
            return
        app._client_buf = app._client_buf[total:]
        yield msg_id
