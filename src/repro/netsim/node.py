"""Hosts, interfaces and datagrams.

A :class:`Host` owns one interface per attached network path.  Protocol
endpoints register a datagram handler and transmit via an interface
index, mirroring how the paper's multihomed Mininet hosts expose one IP
address per (disjoint) path.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.link import Link


class Datagram:
    """A UDP-datagram-like unit travelling over a link.

    ``payload`` is an opaque protocol object (a QUIC packet or a TCP
    segment); ``size`` is its wire size in bytes including all headers.

    One is allocated per transmitted packet, so this is a ``__slots__``
    class rather than a dataclass.
    """

    __slots__ = ("payload", "size", "src_addr", "dst_addr")

    def __init__(
        self,
        payload: Any,
        size: int,
        src_addr: str = "",
        dst_addr: str = "",
    ) -> None:
        self.payload = payload
        self.size = size
        self.src_addr = src_addr
        self.dst_addr = dst_addr

    def __repr__(self) -> str:
        return (
            f"Datagram(payload={self.payload!r}, size={self.size!r}, "
            f"src_addr={self.src_addr!r}, dst_addr={self.dst_addr!r})"
        )


class Interface:
    """A host network interface bound to the TX side of a link."""

    def __init__(self, host: "Host", index: int, address: str) -> None:
        self.host = host
        self.index = index
        self.address = address
        self.link: Optional["Link"] = None
        self.up = True

    def attach(self, link: "Link") -> None:
        """Bind the interface to its outgoing link."""
        self.link = link

    def send(self, datagram: Datagram) -> bool:
        """Transmit a datagram; returns False if dropped at the NIC."""
        if not self.up or self.link is None:
            return False
        datagram.src_addr = datagram.src_addr or self.address
        return self.link.send(datagram)


DatagramHandler = Callable[[Datagram, int], None]


class Host:
    """A (possibly multihomed) end host."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.interfaces: List[Interface] = []
        self._handler: Optional[DatagramHandler] = None

    def add_interface(self, address: str) -> Interface:
        """Create a new interface with the given address."""
        iface = Interface(self, len(self.interfaces), address)
        self.interfaces.append(iface)
        return iface

    def set_datagram_handler(self, handler: DatagramHandler) -> None:
        """Register the protocol endpoint receiving inbound datagrams."""
        self._handler = handler

    def send(self, datagram: Datagram, interface_index: int) -> bool:
        """Send a datagram out of a specific interface."""
        return self.interfaces[interface_index].send(datagram)

    def deliver(self, datagram: Datagram, interface_index: int) -> None:
        """Called by the RX link when a datagram arrives at this host."""
        if not self.interfaces[interface_index].up:
            return
        if self._handler is not None:
            self._handler(datagram, interface_index)

    @property
    def addresses(self) -> List[str]:
        """All interface addresses owned by the host."""
        return [iface.address for iface in self.interfaces]
