"""TCP + TLS 1.2 baseline (the paper's HTTPS-over-TCP comparator).

Models the Linux TCP properties the paper's analysis leans on:

* a 3-RTT connection setup (3-way handshake plus a 2-RTT TLS 1.2
  exchange) versus QUIC's single round trip (§4.2);
* SACK limited to at most 3 blocks per ACK versus QUIC's 256 ACK
  ranges, making early retransmission less effective under random
  loss (§4.1, low-BDP-losses);
* Karn's algorithm: no RTT samples from retransmitted segments and no
  ack-delay correction, yielding the noisy estimates that mislead the
  MPTCP scheduler (§4.1);
* CUBIC congestion control and receive-window auto-tuning up to 16 MB.
"""

from repro.tcp.config import TcpConfig, TLS_MESSAGE_SIZES
from repro.tcp.connection import TcpConnection
from repro.tcp.flow import TcpFlow
from repro.tcp.segment import Segment

__all__ = ["TcpConfig", "TcpConnection", "TcpFlow", "Segment", "TLS_MESSAGE_SIZES"]
