"""Congestion controllers.

The paper uses CUBIC for single-path TCP and QUIC, and OLIA for both
Multipath TCP and Multipath QUIC (there being no multipath variant of
CUBIC).  NewReno is included as a simple reference and for ablations.
"""

from repro.cc.base import CongestionController, CcState
from repro.cc.newreno import NewReno
from repro.cc.cubic import Cubic
from repro.cc.olia import OliaCoordinator, OliaPath

__all__ = [
    "CongestionController",
    "CcState",
    "NewReno",
    "Cubic",
    "OliaCoordinator",
    "OliaPath",
    "make_controller",
]


def make_controller(name: str, mss: int = 1400) -> CongestionController:
    """Factory for single-path controllers by name.

    Supported names: 'cubic' (RFC 8312), 'cubic2' (Chromium/quic-go
    CUBIC with 2-connection emulation) and 'newreno'.
    """
    name = name.lower()
    if name == "cubic":
        return Cubic(mss=mss)
    if name == "cubic2":
        return Cubic(mss=mss, num_connections=2)
    if name == "newreno":
        return NewReno(mss=mss)
    raise ValueError(f"unknown congestion controller: {name}")
