"""The paper's Table 1 parameter space and environment classes.

Each scenario describes two disjoint paths; per path the WSP design
draws a capacity, a round-trip-time and a maximum queuing delay (plus a
random loss percentage in the lossy classes), exactly the factors of
Table 1 (after Paasch et al. CoNEXT'13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.expdesign.wsp import wsp_select
from repro.netsim.topology import PathConfig


@dataclass(frozen=True)
class EnvClass:
    """One of the paper's four environment classes (Table 1)."""

    name: str
    capacity_range: Tuple[float, float]
    rtt_range: Tuple[float, float]
    queuing_range: Tuple[float, float]
    loss_range: Tuple[float, float]

    @property
    def lossy(self) -> bool:
        return self.loss_range[1] > 0.0

    @property
    def dims_per_path(self) -> int:
        return 4 if self.lossy else 3


#: Table 1 of the paper.  Low-BDP: RTT 0-50 ms, queuing 0-100 ms;
#: high-BDP: RTT 0-400 ms, queuing 0-2000 ms; capacity always
#: 0.1-100 Mbps and random loss 0-2.5 % in the lossy classes.
ENV_CLASSES: Dict[str, EnvClass] = {
    "low-bdp-no-loss": EnvClass(
        "low-bdp-no-loss", (0.1, 100.0), (0.0, 50.0), (0.0, 100.0), (0.0, 0.0)
    ),
    "low-bdp-losses": EnvClass(
        "low-bdp-losses", (0.1, 100.0), (0.0, 50.0), (0.0, 100.0), (0.0, 2.5)
    ),
    "high-bdp-no-loss": EnvClass(
        "high-bdp-no-loss", (0.1, 100.0), (0.0, 400.0), (0.0, 2000.0), (0.0, 0.0)
    ),
    "high-bdp-losses": EnvClass(
        "high-bdp-losses", (0.1, 100.0), (0.0, 400.0), (0.0, 2000.0), (0.0, 2.5)
    ),
}

#: Scenarios per class in the paper's evaluation.
PAPER_SCENARIOS_PER_CLASS = 253


@dataclass(frozen=True)
class Scenario:
    """A two-path network drawn from an environment class."""

    env_class: str
    index: int
    paths: Tuple[PathConfig, PathConfig]

    @property
    def best_path(self) -> int:
        return 0 if _path_rank(self.paths[0]) >= _path_rank(self.paths[1]) else 1

    @property
    def worst_path(self) -> int:
        return 1 - self.best_path


def _path_rank(path: PathConfig) -> float:
    """Crude path quality: capacity dominates, RTT breaks ties."""
    return path.capacity_mbps - path.rtt_ms * 1e-6


def _scale(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    return lo + values * (hi - lo)


def generate_scenarios(
    env_class: str,
    count: int = PAPER_SCENARIOS_PER_CLASS,
    seed: int = 42,
    min_capacity_mbps: float = 0.1,
) -> List[Scenario]:
    """Draw ``count`` scenarios for an environment class via WSP.

    The design space has one (capacity, RTT, queuing delay[, loss])
    tuple per path — 6 dimensions for loss-free classes, 8 otherwise.
    """
    env = ENV_CLASSES[env_class]
    dims = 2 * env.dims_per_path
    points = wsp_select(count, dims, seed=seed)
    scenarios: List[Scenario] = []
    for i, point in enumerate(points):
        paths = []
        for p in range(2):
            base = p * env.dims_per_path
            capacity = max(
                _scale(point[base + 0], *env.capacity_range), min_capacity_mbps
            )
            rtt = _scale(point[base + 1], *env.rtt_range)
            queuing = _scale(point[base + 2], *env.queuing_range)
            loss = (
                _scale(point[base + 3], *env.loss_range) if env.lossy else 0.0
            )
            paths.append(
                PathConfig(
                    capacity_mbps=float(capacity),
                    rtt_ms=float(rtt),
                    queuing_delay_ms=float(queuing),
                    loss_percent=float(loss),
                )
            )
        scenarios.append(Scenario(env_class, i, (paths[0], paths[1])))
    return scenarios
