"""E4 / Fig. 6 — low-BDP-losses: aggregation benefit under random loss.

Paper shape: multipath can still help QUIC in lossy environments,
though measured goodput varies much more than without losses.
"""

import statistics

from repro.experiments.figures import fig6
from repro.experiments.metrics import median

from benchmarks.common import BENCH_CONFIG, run_once


def _both(buckets):
    return buckets["best_first"] + buckets["worst_first"]


def test_fig6_lossy_aggregation(benchmark):
    data = run_once(benchmark, lambda: fig6(BENCH_CONFIG))
    mpquic = _both(data["mpquic_vs_quic"])
    # Wide variance is the paper's observation; multipath never fails
    # outright (EBen = -1 means no data transferred at all).
    assert min(mpquic) > -1.0
    assert statistics.pstdev(mpquic) > 0.05
    # Coupled OLIA under random loss is conservative: the multipath run
    # must still stay within reach of the best single path.
    assert median(mpquic) > -0.8
