"""Shared helpers for integration tests: one-call transfer runners,
seeded scenario/fault builders and canonical path sets."""

from __future__ import annotations

from typing import Optional, Sequence


from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.faults import (
    Blackhole,
    FaultEvent,
    FaultTimeline,
    LinkDown,
    LossChange,
)
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.obs import Tracer
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig


class TransferResult:
    """Everything a test may want to inspect after a bulk transfer."""

    def __init__(self, app, client, server, sim, topo, ok, trace=None):
        self.app = app
        self.client = client
        self.server = server
        self.sim = sim
        self.topology = topo
        self.ok = ok
        self.trace = trace

    @property
    def transfer_time(self):
        return self.app.transfer_time


def run_transfer(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int = 500_000,
    initial_interface: int = 0,
    seed: int = 1,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    timeout: float = 2000.0,
    timeline: Optional[FaultTimeline] = None,
    trace: Optional[Tracer] = None,
) -> TransferResult:
    """Run a bulk download and return the full context for assertions.

    ``timeline`` injects network dynamics (see ``repro.netsim.faults``);
    ``trace`` attaches a :class:`repro.obs.Tracer` so assertions can
    inspect the typed event stream (fault firings included).
    """
    sim = Simulator()
    topo = TwoPathTopology(sim, list(paths), seed=seed)
    if timeline is not None:
        timeline.install(sim, topo, trace=trace)
    client, server = make_client_server(
        protocol, sim, topo,
        initial_interface=initial_interface,
        trace=trace,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = BulkTransferApp(sim, client, server, file_size, initial_interface)
    ok = app.run(timeout=timeout)
    return TransferResult(app, client, server, sim, topo, ok, trace=trace)


# ----------------------------------------------------------------------
# Seeded fault/scenario builders
# ----------------------------------------------------------------------

def failure_timeline(
    time: float, path: int = 0, mode: str = "blackhole"
) -> FaultTimeline:
    """One-event timeline killing ``path`` at ``time``.

    Modes mirror ``repro.experiments.scenarios.FAILURE_MODES``:
    ``blackhole`` (serialize then silently drop), ``down`` (NIC rejects
    sends, queue flushed), ``lossy`` (100 % Bernoulli loss).
    """
    if mode == "blackhole":
        mutation = Blackhole()
    elif mode == "down":
        mutation = LinkDown()
    elif mode == "lossy":
        mutation = LossChange(100.0)
    else:
        raise ValueError(f"unknown failure mode {mode!r}")
    return FaultTimeline((FaultEvent(time, path, mutation),))


#: A clean symmetric two-path network used by many tests.
TWO_CLEAN_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0),
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0),
]

#: Heterogeneous paths (fast/low-delay + slow/high-delay).
HETEROGENEOUS_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=20.0, queuing_delay_ms=50.0),
    PathConfig(capacity_mbps=2.0, rtt_ms=100.0, queuing_delay_ms=100.0),
]

#: Symmetric paths with random loss.
LOSSY_PATHS = [
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0,
               loss_percent=1.5),
    PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0,
               loss_percent=1.5),
]
