"""Static analysis enforcing the simulator's determinism contract.

``python -m repro.analysis src/repro`` runs two passes and exits
non-zero on findings:

* a **per-module** AST pass with the determinism and
  protocol-invariant rules (wall clocks, unseeded RNGs, hash-order
  iteration, telemetry taxonomy, ...);
* a **whole-program** pass over each directory argument: the
  :class:`~repro.analysis.graph.ProjectGraph` index (symbol tables,
  import resolution, approximate call graph, reachability) feeds the
  interprocedural rules — cross-call seed taint, same-timestamp event
  ordering, sweep-worker purity, and obs-schema conformance.

Line-scoped waivers use ``# repro: allow[rule-id]`` for both kinds of
rule; see ``docs/static-analysis.md``.
"""

from repro.analysis.core import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    analyze_paths,
    analyze_project,
    analyze_source,
    register,
    register_project,
    suppressed_rules,
)
from repro.analysis.graph import ProjectGraph
from repro.analysis.report import (
    REPORT_VERSION,
    findings_from_json,
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectGraph",
    "ProjectRule",
    "REPORT_VERSION",
    "Rule",
    "all_project_rules",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "findings_from_json",
    "register",
    "register_project",
    "render_json",
    "render_rule_list",
    "render_sarif",
    "render_text",
    "suppressed_rules",
]
