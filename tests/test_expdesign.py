"""Tests for the WSP experimental design and scenario generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expdesign.parameters import (
    ENV_CLASSES,
    PAPER_SCENARIOS_PER_CLASS,
    generate_scenarios,
)
from repro.expdesign.wsp import wsp_select


class TestWsp:
    def test_returns_requested_count_and_shape(self):
        pts = wsp_select(50, 4, seed=1)
        assert pts.shape == (50, 4)

    def test_points_in_unit_cube(self):
        pts = wsp_select(40, 6, seed=2)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_deterministic_per_seed(self):
        a = wsp_select(30, 3, seed=7)
        b = wsp_select(30, 3, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = wsp_select(30, 3, seed=1)
        b = wsp_select(30, 3, seed=2)
        assert not np.array_equal(a, b)

    def test_space_filling_beats_random_prefix(self):
        """WSP's minimum pairwise distance should far exceed that of an
        equally sized random sample."""
        n, d = 60, 4
        pts = wsp_select(n, d, seed=3)
        rng = np.random.default_rng(3)
        rand = rng.random((n, d))

        def min_dist(x):
            diffs = x[:, None, :] - x[None, :, :]
            dist = np.sqrt((diffs ** 2).sum(-1))
            np.fill_diagonal(dist, np.inf)
            return dist.min()

        assert min_dist(pts) > min_dist(rand) * 1.5

    def test_single_point(self):
        assert wsp_select(1, 5, seed=0).shape == (1, 5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            wsp_select(0, 3)
        with pytest.raises(ValueError):
            wsp_select(10, 0)

    @given(st.integers(2, 80), st.integers(1, 8), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_always_full_size_property(self, n, d, seed):
        pts = wsp_select(n, d, seed=seed)
        assert pts.shape == (n, d)
        assert (pts >= 0).all() and (pts < 1).all()


class TestEnvClasses:
    def test_four_classes_match_table1(self):
        assert set(ENV_CLASSES) == {
            "low-bdp-no-loss", "low-bdp-losses",
            "high-bdp-no-loss", "high-bdp-losses",
        }
        low = ENV_CLASSES["low-bdp-no-loss"]
        assert low.capacity_range == (0.1, 100.0)
        assert low.rtt_range == (0.0, 50.0)
        assert low.queuing_range == (0.0, 100.0)
        assert not low.lossy
        high = ENV_CLASSES["high-bdp-losses"]
        assert high.rtt_range == (0.0, 400.0)
        assert high.queuing_range == (0.0, 2000.0)
        assert high.loss_range == (0.0, 2.5)

    def test_paper_scenario_count(self):
        assert PAPER_SCENARIOS_PER_CLASS == 253


class TestScenarioGeneration:
    def test_count_and_ranges(self):
        scenarios = generate_scenarios("low-bdp-losses", count=40, seed=5)
        assert len(scenarios) == 40
        env = ENV_CLASSES["low-bdp-losses"]
        for s in scenarios:
            for p in s.paths:
                assert env.capacity_range[0] <= p.capacity_mbps <= env.capacity_range[1]
                assert env.rtt_range[0] <= p.rtt_ms <= env.rtt_range[1]
                assert env.queuing_range[0] <= p.queuing_delay_ms <= env.queuing_range[1]
                assert env.loss_range[0] <= p.loss_percent <= env.loss_range[1]

    def test_no_loss_class_is_loss_free(self):
        for s in generate_scenarios("high-bdp-no-loss", count=10):
            assert all(p.loss_percent == 0.0 for p in s.paths)

    def test_best_worst_path_classification(self):
        for s in generate_scenarios("low-bdp-no-loss", count=20):
            best = s.paths[s.best_path]
            worst = s.paths[s.worst_path]
            assert best.capacity_mbps >= worst.capacity_mbps
            assert s.best_path != s.worst_path

    def test_deterministic(self):
        a = generate_scenarios("low-bdp-no-loss", count=15, seed=9)
        b = generate_scenarios("low-bdp-no-loss", count=15, seed=9)
        assert a == b

    def test_paths_are_heterogeneous_across_scenarios(self):
        scenarios = generate_scenarios("low-bdp-no-loss", count=30)
        capacities = {round(s.paths[0].capacity_mbps, 3) for s in scenarios}
        assert len(capacities) > 25  # WSP spreads the space
