"""Fluid-approximation engine: equivalence vs packet level + invariants.

Two kinds of guarantees:

* **equivalence** — ``simulate_fluid_transfer`` reproduces the packet
  simulator's transfer time / goodput within a documented per-scenario
  tolerance, in the three regimes the model claims to cover (no-loss
  low-BDP, link-limited-with-loss, loss-limited steady state);
* **invariants** — property-based: however flows join and leave, the
  fluid side never reserves more than a link's capacity, never emits a
  negative rate, and every flow completes with its bytes conserved.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.hybrid import run_background_traffic
from repro.experiments.runner import run_bulk
from repro.netsim.engine import Simulator
from repro.netsim.fluid import (
    FluidNetwork,
    background_transfer,
    simulate_fluid_transfer,
)
from repro.netsim.link import Link
from repro.netsim.topology import PathConfig
from repro.obs.events import Tracer
from repro.quic.config import QuicConfig

# -- equivalence vs the packet-level simulator ------------------------------

#: (id, path, file size, packet repetitions, relative FCT tolerance).
#: Tolerances are calibrated, not aspirational: no-loss and
#: link-limited runs agree within ~8%, the loss-limited regime wobbles
#: with the seed and the calibrated cubic2 Mathis constant.
EQUIVALENCE_CASES = [
    ("no_loss_low_bdp", PathConfig(8, 30, 60), 1_000_000, 1, 0.15),
    ("no_loss_small", PathConfig(4, 20, 60), 500_000, 1, 0.15),
    (
        "lossy_link_limited",
        PathConfig(3, 30, 60, loss_percent=0.5),
        1_000_000,
        5,
        0.15,
    ),
    (
        "lossy_loss_limited",
        PathConfig(10, 40, 60, loss_percent=1.0),
        4_000_000,
        5,
        0.30,
    ),
    (
        "lossy_loss_limited_heavy",
        PathConfig(10, 40, 60, loss_percent=2.0),
        4_000_000,
        5,
        0.30,
    ),
]


class TestEquivalence:
    @pytest.mark.parametrize(
        "path,size,reps,tol",
        [c[1:] for c in EQUIVALENCE_CASES],
        ids=[c[0] for c in EQUIVALENCE_CASES],
    )
    def test_transfer_time_and_goodput(self, path, size, reps, tol):
        packet = run_bulk("quic", [path], size, repetitions=reps)
        assert packet.completed
        fluid = simulate_fluid_transfer(
            path.rate_bps, path.rtt_ms / 1e3, size, loss_rate=path.loss_rate
        )
        rel = abs(fluid.transfer_time - packet.transfer_time)
        rel /= packet.transfer_time
        assert rel <= tol, (
            f"fluid FCT {fluid.transfer_time:.3f}s vs packet "
            f"{packet.transfer_time:.3f}s: {rel:.1%} > {tol:.0%}"
        )
        grel = abs(fluid.goodput_bps - packet.goodput_bps)
        grel /= packet.goodput_bps
        assert grel <= tol

    def test_fluid_uses_orders_of_magnitude_fewer_events(self):
        path = PathConfig(8, 30, 60)
        packet = run_bulk("quic", [path], 1_000_000)
        fluid = simulate_fluid_transfer(path.rate_bps, 0.030, 1_000_000)
        assert fluid.sim_events * 100 < packet.details["sim_events"]


class TestHybridScenario:
    def test_measured_share_comparable_across_fidelities(self):
        """The measured MPQUIC connection sees a similar bottleneck
        under analytic background as under real packet competitors.

        Loose by design: OLIA-vs-CUBIC aggressiveness differs from the
        fluid model's equal-split assumption, so we only pin the
        fidelities to within a factor of two of each other.
        """
        fluid = run_background_traffic("fluid", n_background=4)
        packet = run_background_traffic("packet", n_background=4)
        assert fluid.completed and packet.completed
        ratio = fluid.measured_transfer_time / packet.measured_transfer_time
        assert 0.5 <= ratio <= 2.0, f"transfer-time ratio {ratio:.2f}"
        # The whole point: the hybrid run collapses the event count.
        assert fluid.sim_events * 5 < packet.sim_events

    def test_background_transfer_rejects_packet_fidelity(self):
        sim = Simulator()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim)
        with pytest.raises(ValueError, match="fidelity"):
            background_transfer(
                network, "bg", [link], 1_000_000, 0.03,
                config=QuicConfig(fidelity="packet"),
            )

    def test_run_background_traffic_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            run_background_traffic("magic")


class TestFluidMechanics:
    def test_two_flows_split_capacity_equally(self):
        sim = Simulator()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim)
        a = network.add_flow("a", [link], 2_000_000, 0.030)
        b = network.add_flow("b", [link], 2_000_000, 0.030)
        sim.run()
        assert a.completed and b.completed
        assert a.completion_time == pytest.approx(b.completion_time)
        # 2 MB at a 5 Mbps share is 3.2 s plus the slow-start ramp.
        assert a.fct() == pytest.approx(3.2, rel=0.05)

    def test_late_flow_speeds_up_after_first_completes(self):
        sim = Simulator()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim)
        big = network.add_flow("big", [link], 5_000_000, 0.030)
        small = network.add_flow("small", [link], 1_000_000, 0.030, start_in=1.0)
        sim.run()
        assert big.completed and small.completed
        # Alone before t=1 and after the small flow leaves, the big
        # flow finishes well before a permanent half-share would allow.
        solo = simulate_fluid_transfer(10e6, 0.030, 5_000_000).transfer_time
        half_share_time = 5_000_000 * 8.0 / 5e6
        assert solo < big.fct() < half_share_time

    def test_lossy_flow_respects_mathis_ceiling(self):
        sim = Simulator()
        link = Link(sim, 100e6, 0.025, 150_000, loss_rate=0.01)
        network = FluidNetwork(sim)
        flow = network.add_flow("lossy", [link], 2_000_000, 0.050)
        cap = flow.steady_cap_bps()
        assert cap < 100e6
        sim.run()
        assert flow.completed
        # Goodput cannot beat the ceiling (ramp makes it lower still).
        assert flow.size_bytes * 8.0 / flow.fct() <= cap * 1.001

    def test_packet_load_halves_the_fluid_share(self):
        sim = Simulator()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim)
        network.set_packet_load(link, 1)
        network.add_flow("bg", [link], 5_000_000, 0.030)
        # Past the ramp the single fluid flow may reserve only 1/2 of
        # the link (one fluid flow + one packet connection).
        sim.run(until=2.0)
        assert link.fluid_reserved_bps == pytest.approx(5e6)
        assert link.effective_rate_bps() == pytest.approx(5e6)

    def test_add_flow_validation(self):
        sim = Simulator()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim)
        with pytest.raises(ValueError):
            network.add_flow("x", [], 1000, 0.03)
        with pytest.raises(ValueError):
            network.add_flow("x", [link], 0, 0.03)
        with pytest.raises(ValueError):
            network.add_flow("x", [link], 1000, 0.0)
        with pytest.raises(ValueError):
            network.set_packet_load(link, -1)

    def test_emits_fluid_events(self):
        sim = Simulator()
        tracer = Tracer()
        link = Link(sim, 10e6, 0.015, 150_000)
        network = FluidNetwork(sim, tracer=tracer)
        network.add_flow("bg", [link], 1_000_000, 0.030)
        sim.run()
        assert tracer.events_of("fluid", "flow_started")
        assert tracer.events_of("fluid", "share_update")
        done = tracer.events_of("fluid", "flow_completed")
        assert len(done) == 1 and done[0].data["fct"] > 0.0


# -- property-based invariants ----------------------------------------------

CAPACITY = 10e6

flow_specs = st.lists(
    st.tuples(
        st.integers(min_value=10_000, max_value=3_000_000),  # size
        st.floats(min_value=0.0, max_value=2.0),  # start offset
        st.floats(min_value=0.01, max_value=0.1),  # rtt
    ),
    min_size=1,
    max_size=6,
)


class TestFluidInvariants:
    @settings(max_examples=60, deadline=None)
    @given(specs=flow_specs)
    def test_capacity_conserved_under_churn(self, specs):
        sim = Simulator()
        tracer = Tracer()
        link = Link(sim, CAPACITY, 0.010, 150_000)
        network = FluidNetwork(sim, tracer=tracer)
        flows = [
            network.add_flow(f"f{i}", [link], size, rtt, start_in=start)
            for i, (size, start, rtt) in enumerate(specs)
        ]
        # Probe the authoritative reservation between events; probes sit
        # at off-grid times so they observe settled allocations.
        probes = []

        def probe():
            probes.append(link.fluid_reserved_bps)
            for f in flows:
                assert f.rate_bps >= 0.0

        t = 0.0333
        while t < 6.0:
            sim.schedule(t, probe)
            t += 0.0333
        sim.run()

        for f in flows:
            assert f.completed, f"{f.name} never completed"
            assert f.remaining_bytes == pytest.approx(0.0, abs=1.0)
            assert f.completion_time >= f.start_time
        for reserved in probes:
            assert -1e-6 <= reserved <= CAPACITY * (1.0 + 1e-6)
        # Once everything drained, the reservation is fully released.
        assert link.fluid_reserved_bps == 0.0
        # Rates in the event stream are never negative and never exceed
        # the link capacity on their own.
        for ev in tracer.events_of("fluid", "share_update"):
            assert 0.0 <= ev.data["rate_bps"] <= CAPACITY * (1.0 + 1e-6)

    #: Open-loop churn: flows arriving over time, packet-side load
    #: flapping between events, and completions spawning follow-up
    #: flows (the workload harness's exact access pattern).
    open_loop_specs = st.lists(
        st.tuples(
            st.integers(min_value=5_000, max_value=1_000_000),  # size
            st.floats(min_value=0.0, max_value=1.5),  # start offset
            st.floats(min_value=0.01, max_value=0.08),  # rtt
            st.booleans(),  # spawn a follow-up flow on completion
        ),
        min_size=1,
        max_size=8,
    )
    packet_churn = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=3.0),  # when
            st.integers(min_value=0, max_value=5),  # packet connections
        ),
        min_size=0,
        max_size=6,
    )

    @settings(max_examples=40, deadline=None)
    @given(specs=open_loop_specs, churn=packet_churn)
    def test_reservation_released_under_open_loop_churn(self, specs, churn):
        """``fluid_reserved_bps`` returns to exactly 0 after arbitrary
        arrival/completion interleavings with packet-load flapping —
        the leak the open-loop workload harness would hit first."""
        sim = Simulator()
        link = Link(sim, CAPACITY, 0.010, 150_000)
        network = FluidNetwork(sim)
        completed = []

        def make_on_complete(i, size, rtt, spawn):
            def on_complete(flow):
                completed.append(flow)
                if spawn:
                    follow = network.add_flow(
                        f"spawn{i}", [link], max(5_000, size // 2), rtt
                    )
                    follow.on_complete = completed.append
            return on_complete

        for i, (size, start, rtt, spawn) in enumerate(specs):
            network.add_flow(
                f"open{i}", [link], size, rtt, start_in=start,
                on_complete=make_on_complete(i, size, rtt, spawn),
            )
        for when, load in churn:
            sim.schedule(when, network.set_packet_load, link, load)

        probes = []

        def probe():
            probes.append(link.fluid_reserved_bps)

        t = 0.0317
        while t < 8.0:
            sim.schedule(t, probe)
            t += 0.0317
        sim.run()

        expected = len(specs) + sum(1 for (_, _, _, s) in specs if s)
        assert len(completed) == expected
        for flow in completed:
            assert flow.completed
            assert flow.remaining_bytes == pytest.approx(0.0, abs=1.0)
        # The invariant under churn: never over capacity in flight...
        for reserved in probes:
            assert -1e-6 <= reserved <= CAPACITY * (1.0 + 1e-6)
        # ...and exactly zero once the open-loop run drains.
        assert link.fluid_reserved_bps == 0.0
