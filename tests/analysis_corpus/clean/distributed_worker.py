"""A pure distributed worker: config flows in as arguments only.

Near-miss mirror of ``defects/distributed_worker.py`` — the same
shape (claim bookkeeping, runner selection, TTL) with every input
either a parameter, a local, or an ALL-CAPS declared constant, so the
sweep-purity rule must stay silent.
"""

DEFAULT_TTL = 15.0


def _execute(key, runner, ttl):
    return {"key": key, "runner": runner, "ttl": ttl}


def worker_loop(spool, runner="simulation", ttl=DEFAULT_TTL):
    claim_history = []
    results = []
    for key in spool:
        claim_history.append(key)
        results.append(_execute(key, runner, ttl))
    return results
