"""The bench regression gate and the committed benchmark baselines."""

import json
from pathlib import Path

import pytest

from repro.experiments.parallel import RESULTS_FORMAT_VERSION
from repro.obs import bench_compare

REPO_ROOT = Path(__file__).resolve().parent.parent


def _record(eps, **extra):
    return {"benchmark": "engine", "events_per_second": eps, **extra}


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


class TestExtraction:
    def test_top_level_events_per_second(self):
        assert bench_compare.extract_events_per_second(
            {"events_per_second": 1000}
        ) == 1000.0

    def test_sweep_record_fallback(self):
        record = {"serial": {"events_per_second": 35219}}
        assert bench_compare.extract_events_per_second(record) == 35219.0

    def test_engine_loop_fallback(self):
        record = {"event_loop": {"events_per_second": 42}}
        assert bench_compare.extract_events_per_second(record) == 42.0

    def test_missing_or_invalid(self):
        assert bench_compare.extract_events_per_second({}) is None
        assert bench_compare.extract_events_per_second(
            {"events_per_second": 0}
        ) is None
        assert bench_compare.extract_events_per_second(
            {"events_per_second": "fast"}
        ) is None


class TestCompare:
    def test_within_threshold(self):
        result = bench_compare.compare(_record(1000), _record(800))
        assert result["change"] == pytest.approx(-0.2)
        assert not result["regression"]

    def test_regression_past_threshold(self):
        result = bench_compare.compare(_record(1000), _record(600))
        assert result["regression"]

    def test_faster_is_never_a_regression(self):
        result = bench_compare.compare(_record(1000), _record(5000))
        assert not result["regression"]

    def test_custom_threshold(self):
        result = bench_compare.compare(
            _record(1000), _record(899), threshold=0.10
        )
        assert result["regression"]

    def test_missing_numbers_raise(self):
        with pytest.raises(ValueError, match="baseline"):
            bench_compare.compare({}, _record(1))
        with pytest.raises(ValueError, match="candidate"):
            bench_compare.compare(_record(1), {})

    def test_metric_selects_sub_benchmark(self):
        base = {"events_per_second": 1, "timer_churn": {"events_per_second": 1000}}
        cand = {"events_per_second": 1, "timer_churn": {"events_per_second": 500}}
        result = bench_compare.compare(base, cand, metric="timer_churn")
        assert result["regression"]
        # The headline comparison would have seen no change at all.
        assert not bench_compare.compare(base, cand)["regression"]

    def test_metric_missing_raises(self):
        with pytest.raises(ValueError, match="event_loop"):
            bench_compare.compare(
                _record(1000), _record(1000), metric="event_loop"
            )

    def test_parallel_metric_skipped_on_single_core_host(self):
        # A 1-core host's "parallel speedup" times pool overhead; the
        # gate must refuse to do regression math on it.
        base = {
            "host": {"cpu_count": 1},
            "parallel": {"events_per_second": 1000},
        }
        cand = {
            "host": {"cpu_count": 4},
            "parallel": {"events_per_second": 100},
        }
        result = bench_compare.compare(base, cand, metric="parallel")
        assert "skipped" in result
        assert not result["regression"]
        # Multi-core on both sides: the comparison proceeds normally.
        base["host"]["cpu_count"] = 4
        result = bench_compare.compare(base, cand, metric="parallel")
        assert "skipped" not in result
        assert result["regression"]


class TestCli:
    def test_ok_exit_zero(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record(1000))
        cand = _write(tmp_path, "cand.json", _record(950))
        assert bench_compare.main([base, cand]) == 0
        assert "OK: within threshold" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record(1000))
        cand = _write(tmp_path, "cand.json", _record(100))
        assert bench_compare.main([base, cand]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_warn_only_exit_zero(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _record(1000))
        cand = _write(tmp_path, "cand.json", _record(100))
        assert bench_compare.main([base, cand, "--warn-only"]) == 0
        assert "REGRESSION" in capsys.readouterr().err

    def test_unreadable_exit_two(self, tmp_path, capsys):
        cand = _write(tmp_path, "cand.json", _record(100))
        assert bench_compare.main(
            [str(tmp_path / "missing.json"), cand]
        ) == 2

    def test_garbage_json_exit_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        cand = _write(tmp_path, "cand.json", _record(100))
        assert bench_compare.main([str(bad), cand]) == 2
        assert bench_compare.main([cand, str(bad)]) == 2

    def test_metric_flag(self, tmp_path, capsys):
        base = _write(
            tmp_path, "base.json",
            {"event_loop": {"events_per_second": 1000}},
        )
        cand = _write(
            tmp_path, "cand.json",
            {"event_loop": {"events_per_second": 100}},
        )
        assert bench_compare.main([base, cand, "--metric", "event_loop"]) == 1
        assert "event_loop" in capsys.readouterr().out

    def test_parallel_skip_exits_zero(self, tmp_path, capsys):
        record = {
            "host": {"cpu_count": 1},
            "parallel": {"events_per_second": 1000},
        }
        base = _write(tmp_path, "base.json", record)
        cand = _write(tmp_path, "cand.json", record)
        assert bench_compare.main([base, cand, "--metric", "parallel"]) == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_non_object_record_exit_two(self, tmp_path):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2, 3]")
        cand = _write(tmp_path, "cand.json", _record(100))
        assert bench_compare.main([str(arr), cand]) == 2


class TestCommittedBaselines:
    """The checked-in BENCH_*.json files must match the code they gate."""

    def test_bench_sweep_format_version_is_current(self):
        record = json.loads((REPO_ROOT / "BENCH_sweep.json").read_text())
        assert record["results_format_version"] == RESULTS_FORMAT_VERSION

    def test_bench_engine_carries_headline_throughput(self):
        record = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        assert bench_compare.extract_events_per_second(record) > 0
        # The gate must also parse the sweep baseline (its documented
        # fallback path), so a sweep-vs-sweep comparison works.
        sweep = json.loads((REPO_ROOT / "BENCH_sweep.json").read_text())
        assert bench_compare.extract_events_per_second(sweep) > 0

    def test_baselines_compare_clean_against_themselves(self):
        path = str(REPO_ROOT / "BENCH_engine.json")
        assert bench_compare.main([path, path]) == 0
