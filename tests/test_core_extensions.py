"""Tests for MPQUIC extensions: redundant scheduling, PATHS exchange."""


from repro.core.connection import MultipathQuicConnection
from repro.core.scheduler import RedundantScheduler, make_scheduler
from repro.experiments.runner import run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO
from repro.netsim.engine import Simulator
from repro.netsim.topology import TwoPathTopology
from repro.quic.config import QuicConfig

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


class TestRedundantScheduler:
    def test_factory(self):
        sched = make_scheduler("redundant")
        assert isinstance(sched, RedundantScheduler)
        assert sched.duplicate_everywhere

    def test_transfer_completes(self):
        cfg = QuicConfig(scheduler="redundant")
        result = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=300_000, quic_config=cfg
        )
        assert result.ok

    def test_all_paths_carry_roughly_everything(self):
        cfg = QuicConfig(scheduler="redundant")
        result = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=300_000, quic_config=cfg
        )
        sent = result.server.connection.bytes_sent_per_path()
        # Each path carries on the order of the full file (duplication).
        assert min(sent.values()) > 150_000

    def test_handover_spike_vanishes(self):
        delays = run_handover(
            HANDOVER_SCENARIO, protocol="mpquic",
            quic_config=QuicConfig(scheduler="redundant"),
        )
        fail = HANDOVER_SCENARIO.failure_time
        spike = max(d for t, d in delays if t >= fail - 0.1)
        # With every request on both paths, failure costs nothing: the
        # copy on the surviving 25 ms path answers.
        assert spike < 0.04

    def test_redundancy_costs_goodput(self):
        normal = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=1_000_000)
        redundant = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=1_000_000,
            quic_config=QuicConfig(scheduler="redundant"),
        )
        assert redundant.transfer_time > normal.transfer_time


class TestPathsExchange:
    def make_pair(self, interval=0.2):
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
        client = MultipathQuicConnection(
            sim, topo.client, "client", QuicConfig(paths_frame_interval=interval)
        )
        server = MultipathQuicConnection(
            sim, topo.server, "server", QuicConfig(paths_frame_interval=interval)
        )
        return sim, topo, client, server

    def test_periodic_paths_frames_share_rtt_view(self):
        sim, topo, client, server = self.make_pair()
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"x" * 50_000, fin=True
        )
        client.connect()
        sim.run(until=2.0)
        assert server.remote_path_info  # server learnt client's view
        assert client.remote_path_info
        for rtt in server.remote_path_info.values():
            assert 0.0 < rtt < 1.0

    def test_disabled_by_default(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
        client = MultipathQuicConnection(sim, topo.client, "client", QuicConfig())
        server = MultipathQuicConnection(sim, topo.server, "server", QuicConfig())
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"x", fin=True
        )
        client.connect()
        sim.run(until=2.0)
        assert not server.remote_path_info

    def test_manual_send_paths_frame(self):
        sim, topo, client, server = self.make_pair(interval=0.0)
        client.connect()
        sim.run(until=1.0)
        client.send_paths_frame()
        sim.run(until=2.0)
        assert server.remote_path_info
