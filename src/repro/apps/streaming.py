"""Paced media streaming with a playout buffer (live-video workload).

The paper motivates multipath with smartphone experience; beyond bulk
downloads, the canonical latency-sensitive workload is streaming: a
server paces media at the source bitrate and the client plays it out,
stalling ("rebuffering") whenever the transport falls behind.  The
metrics — startup delay, rebuffer count/time — expose path failures and
scheduling quality in a way total transfer time cannot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.transport import TransportEndpoint
from repro.netsim.engine import Simulator


class StreamingApp:
    """One live stream: paced sender, buffered player.

    The server sends ``chunk_bytes`` every ``chunk_bytes*8/bitrate``
    seconds for ``duration`` seconds of media.  The client starts
    playback once ``startup_chunks`` chunks are buffered and consumes
    at the media bitrate; if the buffer empties, playback pauses until
    the startup threshold is reached again (a rebuffering event).
    """

    def __init__(
        self,
        sim: Simulator,
        client: TransportEndpoint,
        server: TransportEndpoint,
        bitrate_bps: float = 4e6,
        duration: float = 10.0,
        chunk_bytes: int = 50_000,
        startup_chunks: int = 2,
        initial_interface: int = 0,
    ) -> None:
        self.sim = sim
        self.client = client
        self.server = server
        self.bitrate_bps = bitrate_bps
        self.duration = duration
        self.chunk_bytes = chunk_bytes
        self.startup_chunks = startup_chunks
        self.initial_interface = initial_interface
        self.total_bytes = int(bitrate_bps / 8 * duration)

        self.bytes_received = 0
        self.playback_position = 0  # bytes of media already played
        self.playing = False
        self.playback_started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: ``(stall start, stall end)`` intervals.
        self.rebuffer_events: List[Tuple[float, float]] = []
        self._stall_started: Optional[float] = None
        self._bytes_sent = 0
        self._request_seen = False

        client.on_established = self._client_established
        client.on_data = self._client_data
        server.on_data = self._server_data

    # -- server side -------------------------------------------------------

    def _server_data(self, data: bytes, fin: bool) -> None:
        if self._request_seen or not data:
            return
        self._request_seen = True
        self._send_next_chunk()

    def _send_next_chunk(self) -> None:
        remaining = self.total_bytes - self._bytes_sent
        if remaining <= 0:
            return
        size = min(self.chunk_bytes, remaining)
        self._bytes_sent += size
        last = self._bytes_sent >= self.total_bytes
        self.server.send(b"m" * size, fin=last)
        if not last:
            self.sim.schedule(
                self.chunk_bytes * 8 / self.bitrate_bps, self._send_next_chunk
            )

    # -- client side -------------------------------------------------------

    def _client_established(self) -> None:
        self.client.send(b"PLAY /stream")

    def _client_data(self, data: bytes, fin: bool) -> None:
        self.bytes_received += len(data)
        if not self.playing and self._buffered() >= self._refill_target():
            self._start_playing()

    def _buffered(self) -> int:
        return self.bytes_received - self.playback_position

    def _refill_target(self) -> int:
        """Bytes needed before (re)starting playback.

        Near the end of the stream less media remains than the startup
        threshold; require only what is left so the tail still plays.
        """
        return max(
            1,
            min(
                self.startup_chunks * self.chunk_bytes,
                self.total_bytes - self.playback_position,
            ),
        )

    def _start_playing(self) -> None:
        self.playing = True
        if self.playback_started_at is None:
            self.playback_started_at = self.sim.now
        if self._stall_started is not None:
            self.rebuffer_events.append((self._stall_started, self.sim.now))
            self._stall_started = None
        self._playback_tick()

    def _playback_tick(self) -> None:
        """Consume one playback quantum (10 ms of media)."""
        if self.finished_at is not None:
            return
        quantum_bytes = int(self.bitrate_bps / 8 * 0.01)
        if self._buffered() >= quantum_bytes:
            self.playback_position += quantum_bytes
            if self.playback_position >= self.total_bytes:
                self.finished_at = self.sim.now
                return
            self.sim.schedule(0.01, self._playback_tick)
        else:
            # Underrun: stall until the startup threshold refills.
            self.playing = False
            self._stall_started = self.sim.now

    # -- results -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    @property
    def startup_delay(self) -> float:
        if self.playback_started_at is None:
            raise RuntimeError("playback never started")
        return self.playback_started_at

    @property
    def rebuffer_count(self) -> int:
        return len(self.rebuffer_events)

    @property
    def rebuffer_time(self) -> float:
        return sum(end - start for start, end in self.rebuffer_events)

    def run(self, timeout: float = 600.0, max_events: int = 50_000_000) -> bool:
        self.client.connect(initial_interface=self.initial_interface)
        return self.sim.run_until(
            lambda: self.complete, timeout=timeout, max_events=max_events
        )
