"""Single-path TCP connection with a TLS 1.2 handshake model (HTTPS).

The paper's baseline is HTTPS over TCP: a 3-way handshake followed by
a 2-RTT TLS 1.2 exchange, so the client's request leaves 3 RTTs after
the SYN — versus 1 RTT for QUIC (§4.2).  TLS flights are modelled as
ordinary stream bytes, so they are congestion-controlled, loss-
recovered and delivered in order exactly like the real thing.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.cc import make_controller
from repro.netsim.engine import Simulator
from repro.netsim.node import Datagram, Host
from repro.netsim.trace import PacketTrace
from repro.quic.flowcontrol import ReceiveWindow
from repro.tcp.config import TcpConfig, TLS13_MESSAGE_SIZES, TLS_MESSAGE_SIZES
from repro.tcp.flow import FlowOwner, TcpFlow
from repro.tcp.segment import Segment


class TlsState(enum.Enum):
    """Simplified TLS handshake state machine (1.2 and 1.3 flights)."""

    IDLE = "idle"
    WAIT_CLIENT_HELLO = "wait_client_hello"
    WAIT_SERVER_HELLO = "wait_server_hello"
    WAIT_CLIENT_FINISHED = "wait_client_finished"
    WAIT_SERVER_FINISHED = "wait_server_finished"
    # TLS 1.3 states.
    WAIT_CLIENT_HELLO_13 = "wait_client_hello_13"
    WAIT_SERVER_FLIGHT_13 = "wait_server_flight_13"
    WAIT_CLIENT_FINISHED_13 = "wait_client_finished_13"
    DONE = "done"


class TcpConnection(FlowOwner):
    """One endpoint of a TCP (TLS) connection over a single path."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        role: str,
        config: Optional[TcpConfig] = None,
        trace: Optional[PacketTrace] = None,
        interface_index: int = 0,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        self.sim = sim
        self.host = host
        self.role = role
        self.config = config or TcpConfig()
        self.trace = trace
        cc = make_controller(self.config.cc_algorithm, mss=self.config.mss)
        self.flow = TcpFlow(
            sim, host, interface_index, role, self.config, cc, owner=self,
            mapped_delivery=False, trace=trace, name=f"tcp-{role}",
        )
        host.set_datagram_handler(self._datagram_received)
        self._recv_window = ReceiveWindow(
            self.config.initial_receive_window,
            self.config.max_receive_window,
            autotune=self.config.window_autotune,
        )
        self._last_advertised_edge = 0
        # TLS bookkeeping: bytes of handshake data still expected.  The
        # server expects the ClientHello from the start so TFO data
        # arriving on the SYN is consumed correctly.
        self._tls_state = TlsState.IDLE
        self._tls_bytes_expected = 0
        if role == "server" and self.config.use_tls:
            if self.config.tls_version == "1.3":
                self._tls_state = TlsState.WAIT_CLIENT_HELLO_13
                self._tls_bytes_expected = TLS13_MESSAGE_SIZES["client_hello"]
            else:
                self._tls_state = TlsState.WAIT_CLIENT_HELLO
                self._tls_bytes_expected = TLS_MESSAGE_SIZES["client_hello"]
        self.secure_established = False
        self.established_at: Optional[float] = None
        # App interface.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_app_data: Optional[Callable[[bytes, bool], None]] = None
        self.app_bytes_received = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def connect(self) -> None:
        """Client: start the TCP (and then TLS) handshake.

        With TCP Fast Open the ClientHello is written first so it rides
        the SYN, shaving the 3-way-handshake round trip.
        """
        if self.config.fast_open and self.config.use_tls:
            self._client_send_hello()
        self.flow.connect()

    def send_app_data(self, data: bytes, fin: bool = False) -> None:
        """Write application bytes (only once the TLS handshake is done)."""
        if not self.secure_established:
            raise RuntimeError("connection not yet established")
        self.flow.write(data, fin)

    def all_sent_data_acked(self) -> bool:
        return self.flow.all_data_acked()

    @property
    def smoothed_rtt(self) -> float:
        return self.flow.rtt.smoothed

    # ------------------------------------------------------------------
    # FlowOwner hooks
    # ------------------------------------------------------------------

    def flow_established(self, flow: TcpFlow) -> None:
        if not self.config.use_tls:
            self._secure_done()
            return
        if self.role == "client" and self._tls_state is TlsState.IDLE:
            self._client_send_hello()

    def _client_send_hello(self) -> None:
        if self.config.tls_version == "1.3":
            self._tls_state = TlsState.WAIT_SERVER_FLIGHT_13
            self._tls_bytes_expected = TLS13_MESSAGE_SIZES["server_flight"]
            self.flow.write(b"\x16" * TLS13_MESSAGE_SIZES["client_hello"])
        else:
            self._tls_state = TlsState.WAIT_SERVER_HELLO
            self._tls_bytes_expected = TLS_MESSAGE_SIZES["server_hello"]
            self.flow.write(b"\x16" * TLS_MESSAGE_SIZES["client_hello"])

    def flow_delivered(self, flow: TcpFlow, data: bytes, fin: bool) -> None:
        data = self._consume_tls(data)
        if data or fin:
            self.app_bytes_received += len(data)
            self._account_consumption(len(data))
            if self.on_app_data:
                self.on_app_data(data, fin)

    def _consume_tls(self, data: bytes) -> bytes:
        """Feed stream bytes through the TLS handshake state machine."""
        while data and self._tls_bytes_expected > 0:
            take = min(len(data), self._tls_bytes_expected)
            self._tls_bytes_expected -= take
            self._account_consumption(take)
            data = data[take:]
            if self._tls_bytes_expected == 0:
                self._advance_tls()
        return data

    def _advance_tls(self) -> None:
        sizes = TLS_MESSAGE_SIZES
        if self._tls_state is TlsState.WAIT_CLIENT_HELLO:
            # Server read the ClientHello: answer with hello+certificate.
            self.flow.write(b"\x16" * sizes["server_hello"])
            self._tls_bytes_expected = sizes["client_finished"]
            self._tls_state = TlsState.WAIT_CLIENT_FINISHED
        elif self._tls_state is TlsState.WAIT_CLIENT_FINISHED:
            # Server read the client key exchange + Finished.
            self.flow.write(b"\x16" * sizes["server_finished"])
            self._secure_done()
        elif self._tls_state is TlsState.WAIT_SERVER_HELLO:
            # Client read ServerHello+certificate: send key exchange.
            self.flow.write(b"\x16" * sizes["client_finished"])
            self._tls_bytes_expected = sizes["server_finished"]
            self._tls_state = TlsState.WAIT_SERVER_FINISHED
        elif self._tls_state is TlsState.WAIT_SERVER_FINISHED:
            self._secure_done()
        # -- TLS 1.3 (one round trip) --
        elif self._tls_state is TlsState.WAIT_CLIENT_HELLO_13:
            # Server read the ClientHello: send its whole flight and be
            # ready for application data right away (0.5-RTT send).
            self.flow.write(b"\x16" * TLS13_MESSAGE_SIZES["server_flight"])
            self._tls_bytes_expected = TLS13_MESSAGE_SIZES["client_finished"]
            self._tls_state = TlsState.WAIT_CLIENT_FINISHED_13
            self._secure_done()
        elif self._tls_state is TlsState.WAIT_CLIENT_FINISHED_13:
            pass  # server consumed the client Finished; already secure
        elif self._tls_state is TlsState.WAIT_SERVER_FLIGHT_13:
            # Client read the server flight: send Finished, done.
            self.flow.write(b"\x16" * TLS13_MESSAGE_SIZES["client_finished"])
            self._secure_done()

    def _secure_done(self) -> None:
        if self._tls_state is not TlsState.WAIT_CLIENT_FINISHED_13:
            self._tls_state = TlsState.DONE
        if self.secure_established:
            return
        self.secure_established = True
        self.established_at = self.sim.now
        if self.on_established:
            self.on_established()

    def flow_window_edge(self, flow: TcpFlow) -> int:
        edge = TcpFlow.SEQ_BASE + self._recv_window.advertised_limit
        self._last_advertised_edge = edge
        return edge

    def flow_on_ack(self, flow: TcpFlow, data_ack: Optional[int]) -> None:
        pass

    def flow_on_rto(self, flow: TcpFlow) -> None:
        pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _account_consumption(self, n: int) -> None:
        if n <= 0:
            return
        window = self._recv_window
        window.on_data_consumed(n)
        new_limit = window.maybe_update(self.sim.now, self.flow.rtt.smoothed)
        if new_limit is not None:
            # Advertise the wider window with a pure ACK (a window
            # update), as Linux does when the application drains the
            # receive queue.
            self.flow.send_ack()

    def _datagram_received(self, datagram: Datagram, interface_index: int) -> None:
        segment: Segment = datagram.payload
        if interface_index != self.flow.interface_index:
            return  # single-path TCP ignores other interfaces
        self.flow.segment_received(segment)

    def close_timers(self) -> None:
        self.flow.close_timers()
