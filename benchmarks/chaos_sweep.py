"""Chaos drill for the sweep engine: crash recovery under fault timelines.

Runs one class sweep — every cell carrying a seeded random fault
timeline (network dynamics *inside* the simulations) — through three
stages of harness-level abuse:

1. **clean** — serial, no cache: the reference matrix;
2. **crash-once** — a designated victim cell kills its worker process
   (``os._exit``) on first execution; the pool is rebuilt, the cell
   retried, and the final matrix must be bit-identical to stage 1;
3. **crash-always + resume** — the victim dies on every attempt and is
   quarantined (reported to the ``--report`` artifact); a rerun with
   the chaos hook disarmed then resumes from the on-disk cache,
   re-executing *only* the victim, and must again match stage 1.

Exit status is non-zero on any mismatch; CI uploads the quarantine
report as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/chaos_sweep.py \
        --scenarios 2 --file-size 150000 --jobs 4 \
        --report CHAOS_quarantine.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.expdesign.parameters import generate_scenarios
from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    SweepCell,
    SweepStats,
    execute_cells,
    plan_class_sweep,
    result_to_dict,
    write_quarantine_report,
)
from repro.netsim.faults import FaultTimeline, delay_change, loss_change, rate_change

CHAOS_ENV = (
    "REPRO_CHAOS_CRASH_KEY",
    "REPRO_CHAOS_MARKER_DIR",
    "REPRO_CHAOS_MODE",
    "REPRO_QUARANTINE_FILE",
)


def _disarm_chaos() -> None:
    for key in CHAOS_ENV:
        os.environ.pop(key, None)


def _random_timeline(rng: random.Random, cell: SweepCell) -> FaultTimeline:
    """A transient, seeded disturbance: the path degrades, then heals.

    Kept survivable on purpose — the drill tests the *harness* under
    worker crashes; the simulations themselves must all complete.
    """
    path = rng.randrange(len(cell.paths))
    start = 0.1 + rng.random() * 0.4
    duration = 0.2 + rng.random() * 0.4
    kind = rng.choice(("loss", "rate", "delay"))
    base = cell.paths[path]
    if kind == "loss":
        events = (
            loss_change(start, path, rng.uniform(2.0, 8.0)),
            loss_change(start + duration, path, base.loss_percent),
        )
    elif kind == "rate":
        events = (
            rate_change(start, path, base.capacity_mbps * rng.uniform(0.3, 0.7)),
            rate_change(start + duration, path, base.capacity_mbps),
        )
    else:
        events = (
            delay_change(start, path, base.rtt_ms * rng.uniform(1.5, 3.0)),
            delay_change(start + duration, path, base.rtt_ms),
        )
    return FaultTimeline(events)


def _matrix(results) -> List[dict]:
    return [result_to_dict(r) for r in results]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=2)
    parser.add_argument("--file-size", type=int, default=150_000)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--env-class", default="low-bdp-no-loss")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--report", default="CHAOS_quarantine.json")
    args = parser.parse_args(argv)

    _disarm_chaos()
    scenarios = generate_scenarios(args.env_class, args.scenarios, seed=args.seed)
    rng = random.Random(args.seed)
    cells = [
        replace(cell, timeline=_random_timeline(rng, cell))
        for cell in plan_class_sweep(scenarios, args.file_size, lossy=False)
    ]
    victim = cells[len(cells) // 2]
    print(
        f"chaos sweep: {len(cells)} cells with seeded fault timelines, "
        f"victim={victim.protocol}/if{victim.initial_interface} "
        f"({victim.cache_key()[:12]}...)"
    )

    # Stage 1: clean serial reference.
    clean = execute_cells(cells, jobs=1, cache=None)
    reference = _matrix(clean)
    print(f"stage 1 (clean serial): {len(clean)} results")

    failures = 0
    with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
        # Stage 2: the victim kills its worker once; retry completes.
        os.environ["REPRO_CHAOS_CRASH_KEY"] = victim.cache_key()[:16]
        os.environ["REPRO_CHAOS_MARKER_DIR"] = os.path.join(tmp, "markers")
        stats = SweepStats()
        crashed_once = execute_cells(
            cells, jobs=args.jobs, cache=None, stats=stats
        )
        _disarm_chaos()
        print(
            f"stage 2 (crash-once, jobs={args.jobs}): retries={stats.retries} "
            f"pool_restarts={stats.pool_restarts} "
            f"quarantined={stats.quarantined}"
        )
        if stats.retries < 1:
            print("FAIL: the chaos victim never crashed", file=sys.stderr)
            failures += 1
        if any(r is None for r in crashed_once):
            print("FAIL: crash-once sweep left empty slots", file=sys.stderr)
            failures += 1
        elif _matrix(crashed_once) != reference:
            print(
                "FAIL: crash-once results differ from clean serial run",
                file=sys.stderr,
            )
            failures += 1
        else:
            print("stage 2: bit-identical to the clean run")

        # Stage 3: the victim dies every time -> quarantine + resume.
        cache = ResultCache(os.path.join(tmp, "cache"))
        os.environ["REPRO_CHAOS_CRASH_KEY"] = victim.cache_key()[:16]
        stats = SweepStats()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            interrupted = execute_cells(
                cells, jobs=args.jobs, cache=cache, stats=stats, retries=1
            )
        _disarm_chaos()
        write_quarantine_report(args.report, parallel.last_quarantine)
        print(
            f"stage 3 (crash-always): quarantined={stats.quarantined}, "
            f"report -> {args.report}"
        )
        empty = [i for i, r in enumerate(interrupted) if r is None]
        if stats.quarantined != 1 or len(parallel.last_quarantine) != 1:
            print("FAIL: expected exactly one quarantined cell", file=sys.stderr)
            failures += 1
        if len(empty) != 1:
            print(
                f"FAIL: expected one empty slot, got {len(empty)}",
                file=sys.stderr,
            )
            failures += 1

        # Resume from the cache: only the victim re-executes.
        stats = SweepStats()
        resumed = execute_cells(cells, jobs=args.jobs, cache=cache, stats=stats)
        print(
            f"stage 3 (resume): executed={stats.executed} "
            f"cache_hits={stats.cache_hits}"
        )
        if stats.executed != 1:
            print(
                f"FAIL: resume re-executed {stats.executed} cells "
                "(expected only the quarantined victim)",
                file=sys.stderr,
            )
            failures += 1
        if any(r is None for r in resumed) or _matrix(resumed) != reference:
            print(
                "FAIL: resumed results differ from clean serial run",
                file=sys.stderr,
            )
            failures += 1
        else:
            print("stage 3: resumed sweep bit-identical to the clean run")

    if failures:
        print(f"{failures} chaos gate(s) failed", file=sys.stderr)
        return 1
    print("chaos drill passed: crash retry, quarantine and resume all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
