"""Bulk file download (the paper's 20 MB / 256 KB HTTPS GET workload).

The client connects, sends a small GET request and measures the time
between its first connection packet and the last byte of the response
(§4.1) — so the measured delay includes the protocol's handshake cost.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.transport import TransportEndpoint
from repro.netsim.engine import Simulator


class BulkTransferApp:
    """Drives one GET-a-file exchange over a transport pair."""

    REQUEST = b"GET /file HTTP/1.1\r\n\r\n"

    def __init__(
        self,
        sim: Simulator,
        client: TransportEndpoint,
        server: TransportEndpoint,
        file_size: int,
        initial_interface: int = 0,
    ) -> None:
        self.sim = sim
        self.client = client
        self.server = server
        self.file_size = file_size
        self.initial_interface = initial_interface
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.bytes_received = 0
        self._request_seen = False
        client.on_established = self._client_established
        client.on_data = self._client_data
        server.on_data = self._server_data

    # -- orchestration ---------------------------------------------------

    def start(self) -> None:
        """Open the connection; the GET goes out once established."""
        self.start_time = self.sim.now
        self.client.connect(initial_interface=self.initial_interface)

    def _client_established(self) -> None:
        self.client.send(self.REQUEST, fin=False)

    def _server_data(self, data: bytes, fin: bool) -> None:
        if not self._request_seen and data:
            self._request_seen = True
            self.server.send(b"x" * self.file_size, fin=True)

    def _client_data(self, data: bytes, fin: bool) -> None:
        self.bytes_received += len(data)
        if fin and self.completion_time is None:
            self.completion_time = self.sim.now

    # -- results -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.completion_time is not None

    @property
    def transfer_time(self) -> float:
        """Seconds from the first connection packet to the last byte."""
        if self.start_time is None or self.completion_time is None:
            raise RuntimeError("transfer has not completed")
        return self.completion_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        """Application goodput in bits per second."""
        return self.file_size * 8.0 / self.transfer_time

    def run(self, timeout: float = 3600.0, max_events: int = 50_000_000) -> bool:
        """Convenience: start and run the simulator to completion."""
        self.start()
        # The predicate runs once per simulated event: read the
        # attribute directly rather than through the `complete`
        # property (one call frame per event saved).
        return self.sim.run_until(
            lambda: self.completion_time is not None,
            timeout=timeout, max_events=max_events,
        )
