"""Tests for the link model: serialization, queuing, loss, drops."""

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Datagram


def make_link(sim, rate_bps=8e6, delay=0.01, queue=10_000, loss=0.0, sink=None):
    return Link(
        sim,
        rate_bps=rate_bps,
        prop_delay=delay,
        queue_capacity=queue,
        loss_rate=loss,
        rng=random.Random(42),
        sink=sink,
    )


class TestLinkTiming:
    def test_delivery_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, rate_bps=8e6, delay=0.01, sink=lambda d: arrivals.append(sim.now))
        link.send(Datagram(payload=None, size=1000))  # 1000B at 1MB/s = 1ms
        sim.run()
        assert arrivals == [pytest.approx(0.001 + 0.01)]

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, rate_bps=8e6, delay=0.0, sink=lambda d: arrivals.append(sim.now))
        link.send(Datagram(payload=None, size=1000))
        link.send(Datagram(payload=None, size=1000))
        sim.run()
        assert arrivals == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_transmission_delay_helper(self):
        sim = Simulator()
        link = make_link(sim, rate_bps=8e6)
        assert link.transmission_delay(1000) == pytest.approx(0.001)

    def test_fifo_order_preserved(self):
        sim = Simulator()
        arrivals = []
        link = make_link(sim, sink=lambda d: arrivals.append(d.payload))
        for i in range(5):
            link.send(Datagram(payload=i, size=500))
        sim.run()
        assert arrivals == [0, 1, 2, 3, 4]


class TestLinkQueue:
    def test_drop_tail_when_full(self):
        sim = Simulator()
        delivered = []
        # Queue of 1500 bytes: first packet serializes, one queues, rest drop.
        link = make_link(sim, queue=1500, sink=lambda d: delivered.append(d.payload))
        assert link.send(Datagram(payload=0, size=1000))
        assert link.send(Datagram(payload=1, size=1000))
        assert not link.send(Datagram(payload=2, size=1000))
        sim.run()
        assert delivered == [0, 1]
        assert link.stats.queue_drops == 1

    def test_queue_drains_and_accepts_again(self):
        sim = Simulator()
        delivered = []
        link = make_link(sim, queue=1000, sink=lambda d: delivered.append(d.payload))
        link.send(Datagram(payload=0, size=1000))
        link.send(Datagram(payload=1, size=1000))
        sim.run()
        assert link.send(Datagram(payload=2, size=1000))
        sim.run()
        assert delivered == [0, 1, 2]

    def test_max_queue_stat(self):
        sim = Simulator()
        link = make_link(sim, queue=5000)
        for i in range(4):
            link.send(Datagram(payload=i, size=1000))
        assert link.stats.max_queue_bytes == 3000
        sim.run()
        assert link.queued_bytes == 0


class TestLinkLoss:
    def test_zero_loss_delivers_everything(self):
        sim = Simulator()
        delivered = []
        link = make_link(sim, queue=1_000_000, sink=lambda d: delivered.append(d))
        for i in range(100):
            link.send(Datagram(payload=i, size=100))
        sim.run()
        assert len(delivered) == 100
        assert link.stats.random_losses == 0

    def test_full_loss_delivers_nothing(self):
        sim = Simulator()
        delivered = []
        link = make_link(sim, queue=1_000_000, loss=1.0, sink=lambda d: delivered.append(d))
        for i in range(10):
            link.send(Datagram(payload=i, size=100))
        sim.run()
        assert delivered == []
        assert link.stats.random_losses == 10

    def test_partial_loss_rate_roughly_respected(self):
        sim = Simulator()
        delivered = []
        link = make_link(sim, queue=10_000_000, loss=0.2, sink=lambda d: delivered.append(d))
        n = 2000
        for i in range(n):
            link.send(Datagram(payload=i, size=100))
        sim.run()
        observed = 1.0 - len(delivered) / n
        assert 0.15 < observed < 0.25

    def test_loss_is_deterministic_given_seed(self):
        def run():
            sim = Simulator()
            delivered = []
            link = make_link(sim, queue=10_000_000, loss=0.5, sink=lambda d: delivered.append(d.payload))
            for i in range(50):
                link.send(Datagram(payload=i, size=100))
            sim.run()
            return delivered

        assert run() == run()

    def test_set_loss_rate_midway(self):
        sim = Simulator()
        delivered = []
        link = make_link(sim, queue=10_000_000, sink=lambda d: delivered.append(d.payload))
        link.send(Datagram(payload=0, size=100))
        sim.run()
        link.set_loss_rate(1.0)
        link.send(Datagram(payload=1, size=100))
        sim.run()
        assert delivered == [0]

    def test_invalid_loss_rate_rejected(self):
        sim = Simulator()
        link = make_link(sim)
        with pytest.raises(ValueError):
            link.set_loss_rate(1.5)
        with pytest.raises(ValueError):
            make_link(sim, loss=-0.1)
