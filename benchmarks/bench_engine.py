"""Engine micro-benchmark: raw event throughput and metrics overhead.

Measures the discrete-event core in isolation — how fast the simulator
dispatches trivial events, how it copes with heavy timer churn
(schedule + cancel, the recovery layer's access pattern), and what a
representative MPQUIC transfer costs end to end.  The transfer is run
twice, with ``REPRO_METRICS`` instrumentation off (the default,
headline number) and on, so the record quantifies the observability
tax and a regression in the *off* path — the production hot path — is
caught by ``python -m repro.obs.bench_compare`` in CI.

Writes a ``BENCH_engine.json`` record::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --events 50000 --file-size 1000000 --output BENCH_engine.json

Each timing is the best of ``--repeat`` runs, which suppresses
scheduler noise on shared CI hosts better than the mean does.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Optional, Sequence, Tuple

from repro.experiments.hybrid import run_background_traffic
from repro.experiments.runner import run_bulk
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig
from repro.obs import metrics as _metrics


def _best_of(fn: Callable[[], int], repeat: int) -> Tuple[float, int]:
    """(best wall seconds, events of the best run) over ``repeat`` runs."""
    best = float("inf")
    events = 0
    for _ in range(repeat):
        t0 = time.perf_counter()
        n = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, events = dt, n
    return best, events


def bench_event_loop(n_events: int, repeat: int) -> dict:
    """Dispatch ``n_events`` trivial timers: the engine's speed-of-light."""

    def run() -> int:
        sim = Simulator()
        for i in range(n_events):
            sim.schedule(i * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    seconds, events = _best_of(run, repeat)
    return {
        "events": events,
        "wall_seconds": round(seconds, 6),
        "events_per_second": round(events / seconds) if seconds > 0 else None,
    }


def _noop() -> None:
    pass


def bench_timer_churn(n_events: int, repeat: int) -> dict:
    """Schedule-and-cancel churn: the loss-recovery access pattern.

    Two timers are scheduled per event and one is cancelled, so half
    the heap is dead weight and the lazy compactor has real work to do.
    """

    def run() -> int:
        sim = Simulator()
        for i in range(n_events):
            keep = sim.schedule(i * 1e-6, _noop)
            victim = sim.schedule(i * 1e-6 + 2.0, _noop)
            victim.cancel()
            del keep
        sim.run()
        return sim.events_processed

    seconds, events = _best_of(run, repeat)
    return {
        "events": events,
        "cancelled": events,  # one victim per kept timer
        "wall_seconds": round(seconds, 6),
        "events_per_second": round(events / seconds) if seconds > 0 else None,
    }


def bench_transfer(
    file_size: int, repeat: int, metrics_on: bool
) -> dict:
    """One 2-path MPQUIC bulk download, instrumented or not."""

    def run() -> int:
        result = run_bulk(
            "mpquic",
            [PathConfig(10, 30, 60), PathConfig(10, 30, 60)],
            file_size,
        )
        if not result.completed:
            raise RuntimeError("benchmark transfer did not complete")
        return int(result.details.get("sim_events", 0))

    if metrics_on:
        with _metrics.enabled():
            seconds, events = _best_of(run, repeat)
    else:
        seconds, events = _best_of(run, repeat)
    return {
        "events": events,
        "wall_seconds": round(seconds, 6),
        "events_per_second": round(events / seconds) if seconds > 0 else None,
    }


def bench_fluid_vs_packet(repeat: int) -> dict:
    """Background-traffic scenario at both fidelities (see
    ``repro.experiments.hybrid``): one measured MPQUIC download against
    12 background bulk transfers over a shared 20 Mbps bottleneck.

    The hybrid run models the background analytically
    (:mod:`repro.netsim.fluid`) so only the measured connection pays
    per-packet costs; the headline is the wall-clock speedup over the
    all-packet-level run of the same scenario.
    """
    n_background = 12
    background_bytes = 8_000_000
    measured_bytes = 1_000_000

    results = {}
    for fidelity in ("packet", "fluid"):
        def run() -> int:
            result = run_background_traffic(
                fidelity,
                n_background=n_background,
                background_bytes=background_bytes,
                measured_bytes=measured_bytes,
            )
            if not result.completed:
                raise RuntimeError(f"{fidelity} run did not complete")
            run.transfer_time = result.measured_transfer_time
            return result.sim_events

        run.transfer_time = 0.0
        seconds, events = _best_of(run, repeat)
        results[fidelity] = {
            "events": events,
            "wall_seconds": round(seconds, 6),
            "measured_transfer_time": round(run.transfer_time, 4),
        }

    packet_wall = results["packet"]["wall_seconds"]
    hybrid_wall = results["fluid"]["wall_seconds"]
    speedup = (
        round(packet_wall / hybrid_wall, 2) if hybrid_wall > 0 else None
    )
    return {
        "scenario": {
            "n_background": n_background,
            "background_bytes": background_bytes,
            "measured_bytes": measured_bytes,
        },
        "packet": results["packet"],
        "hybrid": results["fluid"],
        "speedup": speedup,
    }


def bench_workload(repeat: int) -> dict:
    """Open-loop smoke workload: 100 mice-and-elephants arrivals, fluid
    background with every 10th flow measured packet-level (the
    ``smoke`` preset of :mod:`repro.experiments.scenarios`).

    The headline is simulator events per wall second for the hybrid
    open-loop harness — a different mix than the bulk-transfer bench
    (connection churn, pool recycling, fluid reallocation under
    arrival pressure).
    """
    from repro.experiments.scenarios import WORKLOAD_PRESETS
    from repro.experiments.workload import run_workload

    preset = WORKLOAD_PRESETS["smoke"]

    def run() -> int:
        result = run_workload(
            preset.spec, protocol="quic", bottleneck=preset.bottleneck
        )
        if not result.completed:
            raise RuntimeError("workload benchmark did not complete")
        run.result = result
        return int(result.details.get("sim_events", 0))

    run.result = None
    seconds, events = _best_of(run, repeat)
    result = run.result
    return {
        "preset": preset.name,
        "events": events,
        "wall_seconds": round(seconds, 6),
        "events_per_second": round(events / seconds) if seconds > 0 else None,
        "flows": result.n_flows,
        "peak_concurrent": result.peak_concurrent,
        "p99_fct": round(result.p99_fct, 4),
        "jain_goodput": round(result.jain_goodput, 4),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events", type=int,
        default=int(os.environ.get("REPRO_BENCH_EVENTS", "50000")),
        help="event count for the micro loops",
    )
    parser.add_argument(
        "--file-size", type=int,
        default=int(os.environ.get("REPRO_FILE_SIZE", "1000000")),
        help="bytes transferred in the MPQUIC benchmark",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    if _metrics.METRICS:
        print(
            "FAIL: run with REPRO_METRICS unset — the headline numbers "
            "must measure the uninstrumented hot path",
            file=sys.stderr,
        )
        return 1

    loop = bench_event_loop(args.events, args.repeat)
    print(f"event_loop:  {loop['events_per_second']:>9} events/s")
    churn = bench_timer_churn(args.events, args.repeat)
    print(f"timer_churn: {churn['events_per_second']:>9} events/s")
    off = bench_transfer(args.file_size, args.repeat, metrics_on=False)
    print(f"mpquic off:  {off['events_per_second']:>9} events/s")
    on = bench_transfer(args.file_size, args.repeat, metrics_on=True)
    print(f"mpquic on:   {on['events_per_second']:>9} events/s")
    fluid = bench_fluid_vs_packet(args.repeat)
    print(
        f"fluid background: {fluid['speedup']}x wall-clock speedup "
        f"({fluid['packet']['wall_seconds']}s packet -> "
        f"{fluid['hybrid']['wall_seconds']}s hybrid)"
    )
    workload = bench_workload(args.repeat)
    print(
        f"workload:    {workload['events_per_second']:>9} events/s "
        f"({workload['flows']} flows, peak {workload['peak_concurrent']})"
    )
    overhead = (
        round(on["wall_seconds"] / off["wall_seconds"], 3)
        if off["wall_seconds"] > 0 else None
    )
    print(f"metrics overhead factor (on/off wall time): {overhead}")

    record = {
        "benchmark": "engine",
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "events": args.events,
            "file_size": args.file_size,
            "repeat": args.repeat,
        },
        # Headline: raw engine dispatch rate, what bench_compare gates.
        "events_per_second": loop["events_per_second"],
        "event_loop": loop,
        "timer_churn": churn,
        "mpquic_transfer": off,
        "mpquic_transfer_metrics_on": on,
        # Hybrid-fidelity: analytic (fluid) background vs all-packet.
        "fluid_background": fluid,
        # Open-loop traffic harness (smoke preset, hybrid fidelity).
        "workload": workload,
        # Wall-time factor of running instrumented (1.0 = free,
        # 1.25 = a 25% observability tax when REPRO_METRICS=1).
        "metrics_overhead_ratio": overhead,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
