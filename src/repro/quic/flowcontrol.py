"""Connection- and stream-level flow control.

QUIC advertises byte limits via WINDOW_UPDATE frames (the paper's QUIC
version; MAX_DATA in IETF QUIC).  The receive window auto-tunes from a
small initial value up to the experiment cap (16 MB in the paper's
setup, §4.1), doubling whenever updates are being produced faster than
once per two round trips — mirroring quic-go and Linux DRS behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.util import sanitize as _san


class FlowControlError(Exception):
    """Peer exceeded an advertised flow-control limit."""


class ReceiveWindow:
    """Receive-side window for one stream or the whole connection."""

    __slots__ = (
        "window_size", "max_window", "autotune", "bytes_consumed",
        "highest_received", "advertised_limit", "_last_update_time",
    )

    def __init__(
        self,
        initial_window: int,
        max_window: int,
        autotune: bool = True,
    ) -> None:
        self.window_size = initial_window
        self.max_window = max_window
        self.autotune = autotune
        self.bytes_consumed = 0
        self.highest_received = 0
        self.advertised_limit = initial_window
        self._last_update_time: Optional[float] = None

    def on_data_received(self, new_highest: int) -> None:
        """Track the highest received offset; enforce the limit."""
        if new_highest > self.advertised_limit:
            raise FlowControlError(
                f"peer sent to offset {new_highest} beyond limit {self.advertised_limit}"
            )
        if new_highest > self.highest_received:
            self.highest_received = new_highest

    def on_data_consumed(self, n: int) -> None:
        """The application read ``n`` more bytes in order."""
        self.bytes_consumed += n
        if _san.SANITIZE and self.highest_received > 0:
            # The app cannot consume bytes the peer never delivered.
            # (Guarded on highest_received: TCP reuses this class for
            # consumption accounting only, tracking arrivals in raw
            # sequence space instead of via on_data_received.)
            _san.check(
                self.bytes_consumed <= self.highest_received,
                "flow-control consumption beyond received data",
                bytes_consumed=self.bytes_consumed,
                highest_received=self.highest_received,
            )

    def maybe_update(self, now: float, smoothed_rtt: float) -> Optional[int]:
        """Return a new limit to advertise, or None.

        An update is due when less than half the window remains.  When
        updates recur within two RTTs the window doubles (auto-tuning),
        capped at ``max_window``.
        """
        remaining = self.advertised_limit - self.bytes_consumed
        if remaining > self.window_size / 2:
            return None
        if self.autotune and self._last_update_time is not None and smoothed_rtt > 0:
            if now - self._last_update_time < 2.0 * smoothed_rtt:
                self.window_size = min(self.window_size * 2, self.max_window)
        self._last_update_time = now
        self.advertised_limit = self.bytes_consumed + self.window_size
        return self.advertised_limit


class SendWindow:
    """Send-side view of the peer's advertised limit."""

    __slots__ = ("limit", "bytes_sent", "blocked_events")

    def __init__(self, initial_limit: int) -> None:
        self.limit = initial_limit
        self.bytes_sent = 0
        self.blocked_events = 0

    def update_limit(self, new_limit: int) -> bool:
        """Absorb a WINDOW_UPDATE; stale (smaller) updates are ignored."""
        if new_limit > self.limit:
            self.limit = new_limit
            return True
        return False

    @property
    def available(self) -> int:
        """Bytes that may still be sent under the current limit."""
        d = self.limit - self.bytes_sent
        return d if d > 0 else 0

    def consume(self, n: int) -> None:
        """Account ``n`` freshly sent bytes (not retransmissions)."""
        if n > self.available:
            raise FlowControlError("attempted to send beyond the peer's window")
        self.bytes_sent += n
        if _san.SANITIZE:
            # Credit never exceeded: total sent stays within the limit.
            _san.check(
                0 <= self.bytes_sent <= self.limit,
                "send window credit exceeded",
                bytes_sent=self.bytes_sent,
                limit=self.limit,
            )

    def note_blocked(self) -> None:
        """Record that sending stalled on this window (stats only)."""
        self.blocked_events += 1
