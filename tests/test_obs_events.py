"""Unit tests for the structured telemetry layer (`repro.obs.events`).

Covers: the typed event model, legacy ``PacketTrace`` compatibility,
event-emission ordering through a real connection, time-series
sampling/throttling, the scheduler hook, and the extended
``PacketTrace.filter`` time window.
"""


from repro.cc.newreno import NewReno
from repro.core.connection import MultipathQuicConnection
from repro.core.scheduler import LowestRttScheduler
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.obs import Tracer
from repro.quic.config import QuicConfig
from repro.quic.rtt import RttEstimator


def traced_transfer(paths, size=300_000, config=None, seed=1, until=30.0,
                    tracer=None):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths, seed=seed)
    trace = tracer if tracer is not None else Tracer()
    client = MultipathQuicConnection(
        sim, topo.client, "client", config or QuicConfig(), trace
    )
    server = MultipathQuicConnection(
        sim, topo.server, "server", config or QuicConfig(), trace
    )
    state, done = {}, {}

    def osd(sid, data, fin):
        if sid not in state:
            state[sid] = True
            server.send_stream_data(sid, b"t" * size, fin=True)

    server.on_stream_data = osd
    client.on_stream_data = (
        lambda sid, d, fin: done.update(t=sim.now) if fin else None
    )
    client.on_established = lambda: client.send_stream_data(
        client.open_stream(), b"GET", fin=True
    )
    client.connect()
    sim.run_until(lambda: "t" in done, timeout=until)
    return trace, client, server, done


TWO_PATHS = [PathConfig(10, 30, 60), PathConfig(10, 30, 60)]


class TestTracerBasics:
    def test_legacy_log_is_mirrored_as_typed_event(self):
        tr = Tracer()
        tr.log(1.0, "client", "send", path_id=1, packet_number=7, size=100)
        assert len(tr.records) == 1  # PacketTrace API intact
        assert len(tr.events) == 1
        ev = tr.events[0]
        assert ev.type == "transport:packet_sent"
        assert ev.path_id == 1
        assert ev.data["packet_number"] == 7
        assert ev.data["size"] == 100

    def test_unknown_legacy_event_maps_to_transport_category(self):
        tr = Tracer()
        tr.log(0.5, "h", "weird_event")
        assert tr.events[0].category == "transport"
        assert tr.events[0].name == "weird_event"

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.log(1.0, "h", "send")
        tr.emit(1.0, "h", "cc", "state_changed", 0)
        tr.sample(1.0, "h", 0, "cwnd", 100.0)
        tr.sched_decision(1.0, "h", 0)
        assert not tr.records and not tr.events
        assert not tr.series and not tr.scheduler_decisions

    def test_tracer_is_a_packet_trace(self):
        assert isinstance(Tracer(), PacketTrace)

    def test_sample_throttling(self):
        tr = Tracer(sample_interval=1.0)
        for t in (0.0, 0.2, 0.4, 1.1, 1.2, 2.5):
            tr.sample(t, "h", 0, "cwnd", t)
        times = [t for t, _ in tr.series_of("h", 0, "cwnd")]
        assert times == [0.0, 1.1, 2.5]

    def test_events_of_filters(self):
        tr = Tracer()
        tr.emit(0.1, "a", "cc", "state_changed", 0)
        tr.emit(0.2, "b", "cc", "state_changed", 1)
        tr.emit(0.3, "a", "path", "new", 1)
        assert len(tr.events_of(category="cc")) == 2
        assert len(tr.events_of(host="a")) == 2
        assert len(tr.events_of(path_id=1)) == 2
        assert len(tr.events_of(t_min=0.15, t_max=0.25)) == 1


class TestPacketTraceTimeWindow:
    def test_filter_accepts_time_window(self):
        trace = PacketTrace()
        for t in (0.1, 0.5, 1.0, 1.5):
            trace.log(t, "h", "send", path_id=0, packet_number=int(t * 10))
        window = trace.filter(event="send", t_min=0.5, t_max=1.0)
        assert [r.time for r in window] == [0.5, 1.0]
        assert trace.filter(t_min=1.6) == []
        # Bounds are inclusive and composable with other criteria.
        assert len(trace.filter(host="h", t_max=0.1)) == 1


class TestLayerHooks:
    def test_cc_state_change_hook(self):
        cc = NewReno(mss=1000)
        seen = []
        cc.telemetry = lambda name, ctrl, now: seen.append((name, ctrl.state))
        cc.on_loss_event(1.0, 0.9)
        assert seen and seen[0][0] == "state_changed"

    def test_rtt_sample_hook(self):
        est = RttEstimator()
        seen = []
        est.on_sample = seen.append
        est.update(0.05)
        est.update(0.06)
        assert len(seen) == 2 and seen[0] is est

    def test_scheduler_choose_reports_selection(self):
        sched = LowestRttScheduler()
        picked = []
        sched.telemetry = picked.append

        class FakePath:
            def __init__(self, pid, rtt):
                self.path_id = pid
                self.rtt_known = True
                self.rtt = type("R", (), {"smoothed": rtt})()

            def can_send_data(self):
                return True

        a, b = FakePath(0, 0.05), FakePath(1, 0.02)
        assert sched.choose([a, b]) is b
        assert picked == [b]
        assert sched.choose([]) is None
        assert picked == [b]  # no notification for a None decision


class TestConnectionEventStream:
    def test_event_times_are_monotonic(self):
        trace, *_ = traced_transfer(TWO_PATHS)
        times = [ev.time for ev in trace.events]
        assert times == sorted(times)

    def test_path_lifecycle_ordering(self):
        """path:new precedes path:validated which precedes data flow."""
        trace, *_ = traced_transfer(TWO_PATHS)
        for host in ("client", "server"):
            for path_id in (0, 1):
                new = trace.events_of("path", "new", host, path_id)
                validated = trace.events_of("path", "validated", host, path_id)
                assert len(new) == 1, (host, path_id)
                assert len(validated) == 1, (host, path_id)
                assert new[0].time <= validated[0].time
                sends = trace.events_of(
                    "transport", "packet_sent", host, path_id
                )
                assert sends and sends[0].time >= new[0].time

    def test_send_events_match_legacy_records(self):
        trace, *_ = traced_transfer(TWO_PATHS)
        legacy = trace.filter(event="send")
        typed = trace.events_of("transport", "packet_sent")
        assert len(legacy) == len(typed) > 100

    def test_cwnd_and_srtt_series_sampled_per_path(self):
        trace, client, server, _ = traced_transfer(TWO_PATHS)
        for path_id in (0, 1):
            cwnd = trace.series_of("server", path_id, "cwnd")
            srtt = trace.series_of("server", path_id, "srtt")
            assert len(cwnd) > 5
            assert len(srtt) > 5
            assert all(v > 0 for _, v in cwnd)
            # The series agrees with the live path state at the end.
            last_cwnd = cwnd[-1][1]
            assert last_cwnd == server.paths[path_id].cc.cwnd_bytes

    def test_goodput_series_is_cumulative(self):
        trace, *_ = traced_transfer(TWO_PATHS, size=200_000)
        series = trace.series_of("client", -1, "goodput_bytes")
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] >= 200_000

    def test_metrics_updated_events_emitted(self):
        trace, *_ = traced_transfer(TWO_PATHS)
        updates = trace.events_of("recovery", "metrics_updated", "server", 0)
        assert updates
        assert all("smoothed_rtt" in ev.data for ev in updates)

    def test_scheduler_histogram_counts_data_packets(self):
        trace, client, server, _ = traced_transfer(TWO_PATHS)
        total = sum(
            count
            for (host, _), count in trace.scheduler_decisions.items()
            if host == "server"
        )
        # Every counted decision produced a data packet send.
        sends = len(trace.events_of("transport", "packet_sent", "server"))
        assert 0 < total <= sends

    def test_loss_events_emitted_under_loss(self):
        trace, *_ = traced_transfer(
            [PathConfig(10, 30, 60, loss_percent=2.0),
             PathConfig(10, 30, 60, loss_percent=2.0)],
            size=400_000, seed=4,
        )
        lost = trace.events_of("transport", "packet_lost", "server")
        assert lost
        retrans = trace.events_of("recovery", "retransmit", "server")
        assert retrans
        assert all(ev.data["bytes"] > 0 for ev in retrans)

    def test_plain_packet_trace_still_works_without_obs(self):
        """A legacy PacketTrace sees the tuple stream, nothing breaks."""
        trace, *_ = traced_transfer(TWO_PATHS, tracer=PacketTrace())
        assert len(trace.filter(event="send")) > 100
        assert not hasattr(trace, "events")
