"""A2 — multipath congestion-control ablation.

OLIA (coupled, fair) versus uncoupled CUBIC and NewReno per path.
Uncoupled controllers aggregate more aggressively on disjoint paths —
the price OLIA pays for bottleneck fairness.
"""

from repro.experiments.figures import ablation_congestion_control

from benchmarks.common import BENCH_CONFIG, run_once


def test_cc_ablation(benchmark):
    results = run_once(benchmark, lambda: ablation_congestion_control(BENCH_CONFIG))
    assert set(results) == {"olia", "cubic2", "newreno"}
    assert all(t > 0 for t in results.values())
    # Uncoupled CUBIC should be at least as fast as coupled OLIA on
    # disjoint paths.
    assert results["cubic2"] <= results["olia"] * 1.15
