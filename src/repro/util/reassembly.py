"""In-order byte-stream reassembly from out-of-order chunks.

Shared by the QUIC receive stream (STREAM frames carry ``(offset, data)``)
and the TCP receiver (segments carry ``(seq, data)``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.util.ranges import RangeSet


class Reassembler:
    """Reassembles a byte stream from ``(offset, bytes)`` chunks.

    Chunks may arrive out of order, overlap or duplicate each other.
    ``pop_ready()`` returns the longest prefix of newly contiguous data
    starting at the current read offset.

    Buffered chunks are indexed both by a dict (offset -> bytes) and a
    min-heap of offsets, so each delivery attempt peeks the lowest
    buffered offset in O(1) instead of sorting every buffered offset —
    the sort dominated receive-side profiles under heavy reordering.
    """

    __slots__ = (
        "_received", "_chunks", "_offsets", "_read_offset",
        "_final_size", "_upper",
    )

    def __init__(self) -> None:
        self._received = RangeSet()
        self._chunks: Dict[int, bytes] = {}
        #: Min-heap over ``self._chunks`` keys.  Offsets are unique
        #: (stored chunks are disjoint and a received span is never
        #: re-inserted), so heap and dict stay in lock-step.
        self._offsets: List[int] = []
        self._read_offset = 0
        self._final_size: Optional[int] = None
        #: One past the highest received offset; mirrors
        #: ``self._received.max + 1`` without the property walk on the
        #: per-chunk hot path (``_received`` only ever grows).
        self._upper = 0

    @property
    def read_offset(self) -> int:
        """Offset of the next byte to be delivered to the application."""
        return self._read_offset

    @property
    def final_size(self) -> Optional[int]:
        """Stream length as signalled by a FIN, if seen."""
        return self._final_size

    @property
    def bytes_received(self) -> int:
        """Number of distinct byte positions received so far."""
        return self._received.total

    @property
    def highest_offset(self) -> int:
        """One past the highest byte offset seen (flow-control relevant)."""
        return self._upper

    def set_final_size(self, size: int) -> None:
        """Record the total stream size signalled by a FIN marker."""
        if self._final_size is not None and self._final_size != size:
            raise ValueError(
                f"conflicting final sizes: {self._final_size} vs {size}"
            )
        if self._received and self._received.max >= size:
            raise ValueError("data received beyond the signalled final size")
        self._final_size = size

    def insert(self, offset: int, data: bytes) -> None:
        """Store a chunk; overlapping parts of older chunks are trimmed."""
        if not data:
            return
        end = offset + len(data)
        if self._final_size is not None and end > self._final_size:
            raise ValueError("data received beyond the signalled final size")
        if end <= self._read_offset:
            return  # Entirely in the past.
        if offset < self._read_offset:
            data = data[self._read_offset - offset:]
            offset = self._read_offset
        # Fast path: the chunk lies entirely above everything received
        # so far (the dominant in-order case) — no trimming, no copy.
        if offset >= self._upper:
            self._chunks[offset] = data
            heapq.heappush(self._offsets, offset)
            self._received.add(offset, end)
            self._upper = end
            if _metrics.METRICS:
                _metrics.REGISTRY.inc("reassembly.chunks_inserted")
            return
        # Trim against already-received spans so stored chunks are disjoint.
        pieces: List[Tuple[int, bytes]] = []
        cursor = offset
        stop = offset + len(data)
        while cursor < stop:
            gap_start = self._received.first_gap_after(cursor)
            if gap_start >= stop:
                break
            gap_end = stop
            for start, end_ in self._received:
                if start > gap_start:
                    gap_end = min(gap_end, start)
                    break
            pieces.append((gap_start, data[gap_start - offset:gap_end - offset]))
            cursor = gap_end
        for piece_offset, piece in pieces:
            self._chunks[piece_offset] = piece
            heapq.heappush(self._offsets, piece_offset)
            self._received.add(piece_offset, piece_offset + len(piece))
        # The whole of [offset, stop) is now covered (pieces filled the
        # gaps; the rest was received before), so the upper bound is
        # simply the chunk end.
        if stop > self._upper:
            self._upper = stop
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("reassembly.chunks_inserted")

    def pop_ready(self) -> bytes:
        """Return (and consume) contiguous data at the read offset."""
        out: List[bytes] = []
        while self._offsets:
            offset = self._offsets[0]
            if offset > self._read_offset:
                break  # Lowest buffered chunk is still out of order.
            heapq.heappop(self._offsets)
            chunk = self._chunks.pop(offset)
            end = offset + len(chunk)
            if end <= self._read_offset:
                continue  # Fully consumed by an earlier delivery.
            if offset < self._read_offset:
                # Chunk starts behind the read offset (a prior pop
                # consumed part of a coalesced range); deliver the tail.
                chunk = chunk[self._read_offset - offset:]
            out.append(chunk)
            self._read_offset = end
        if _metrics.METRICS and out:
            _metrics.REGISTRY.inc("reassembly.deliveries")
        if len(out) == 1:
            # Dominant in-order case: one chunk became ready — hand it
            # back as-is instead of paying a join copy.
            return out[0]
        return b"".join(out)

    def pending_ranges(self, limit: int = 0) -> List[Tuple[int, int]]:
        """Out-of-order spans above the read offset, newest (highest) first.

        This is exactly what a TCP receiver advertises in SACK blocks.
        """
        out = [
            (start, stop)
            for start, stop in self._received
            if stop > self._read_offset
        ]
        out.reverse()
        if limit:
            out = out[:limit]
        return out

    def is_complete(self) -> bool:
        """True when a FIN was seen and every byte has been delivered."""
        return (
            self._final_size is not None
            and self._read_offset >= self._final_size
        )
