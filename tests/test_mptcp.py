"""End-to-end tests of the MPTCP baseline."""

import pytest

from repro.mptcp.connection import MptcpConnection
from repro.mptcp.scheduler import (
    LowestRttSubflowScheduler,
    RoundRobinSubflowScheduler,
    make_subflow_scheduler,
)
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.tcp.config import TcpConfig

from tests.helpers import (
    HETEROGENEOUS_PATHS,
    LOSSY_PATHS,
    TWO_CLEAN_PATHS,
    run_transfer,
)


def make_pair(paths=None, seed=1, cfg=None, initial=0):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths or TWO_CLEAN_PATHS, seed=seed)
    client = MptcpConnection(sim, topo.client, "client", cfg or TcpConfig(),
                             initial_interface=initial)
    server = MptcpConnection(sim, topo.server, "server", cfg or TcpConfig(),
                             initial_interface=initial)
    return sim, topo, client, server


class TestSubflowEstablishment:
    def test_joins_open_after_initial_handshake(self):
        sim, topo, client, server = make_pair()
        client.connect()
        sim.run(until=2.0)
        assert all(f.established for f in client.subflows.values())
        assert all(f.established for f in server.subflows.values())

    def test_join_needs_own_handshake_before_data(self):
        """Unlike MPQUIC, a second subflow carries data only after its
        own 3-way handshake: no data datagram on interface 1 before
        roughly 2 RTT."""
        sim, topo, client, server = make_pair(
            [PathConfig(10, 40, 50), PathConfig(10, 40, 50)]
        )
        client.on_established = lambda: client.send_app_data(b"r" * 100_000)
        client.connect()
        sim.run(until=0.059)  # < SYN(join starts at 1 RTT=40ms) + 1 RTT
        fwd1 = topo.forward_links[1].stats
        # At most the join SYN and its final ACK have crossed; no data.
        assert fwd1.bytes_sent < 500

    def test_secure_establishment_takes_three_rtt(self):
        sim, topo, client, server = make_pair(
            [PathConfig(10, 40, 50), PathConfig(10, 40, 50)]
        )
        established = {}
        client.on_established = lambda: established.update(t=sim.now)
        client.connect()
        sim.run(until=2.0)
        assert 0.12 <= established["t"] < 0.20


class TestDataTransfer:
    def test_download_completes(self):
        result = run_transfer("mptcp", TWO_CLEAN_PATHS, file_size=500_000)
        assert result.ok
        assert result.app.bytes_received == 500_000

    def test_aggregates_two_paths(self):
        single = run_transfer("tcp", TWO_CLEAN_PATHS, file_size=2_000_000)
        multi = run_transfer("mptcp", TWO_CLEAN_PATHS, file_size=2_000_000)
        assert multi.transfer_time < single.transfer_time * 0.85

    def test_both_subflows_carry_data(self):
        result = run_transfer("mptcp", TWO_CLEAN_PATHS, file_size=2_000_000)
        sent = result.server.connection.bytes_sent_per_subflow()
        assert sent[0] > 200_000 and sent[1] > 200_000

    def test_lossy_transfer_completes(self):
        result = run_transfer("mptcp", LOSSY_PATHS, file_size=500_000)
        assert result.ok
        assert result.app.bytes_received == 500_000

    def test_heterogeneous_paths(self):
        result = run_transfer("mptcp", HETEROGENEOUS_PATHS, file_size=500_000)
        assert result.ok

    def test_worst_path_first(self):
        result = run_transfer(
            "mptcp", HETEROGENEOUS_PATHS, file_size=500_000, initial_interface=1
        )
        assert result.ok

    def test_dsn_reassembly_handles_interleaving(self):
        # Data bound alternately to both subflows must reassemble in
        # DSN order at the receiver.
        sim, topo, client, server = make_pair()
        got = bytearray()
        payload = bytes(range(256)) * 2000  # 512 KB patterned data
        state = {}

        def osd(d, fin):
            if "s" not in state:
                state["s"] = True
                server.send_app_data(payload, fin=True)

        server.on_app_data = osd
        done = {}

        def ocd(d, fin):
            got.extend(d)
            if fin:
                done["t"] = sim.now

        client.on_app_data = ocd
        client.on_established = lambda: client.send_app_data(b"GET")
        client.connect()
        sim.run_until(lambda: "t" in done, timeout=60.0)
        assert bytes(got) == payload


class TestOrp:
    #: Lossy fast path (small cwnd) + very slow second path + a small
    #: shared window: chunks bound to the slow subflow block the window
    #: at DATA_UNA while the fast subflow idles — the ORP situation.
    ORP_PATHS = [
        PathConfig(3, 20, 50, loss_percent=2.0),
        PathConfig(0.3, 300, 400),
    ]
    ORP_CFG = dict(initial_receive_window=60_000, max_receive_window=60_000)

    def test_orp_reinjects_when_window_blocked(self):
        cfg = TcpConfig(**self.ORP_CFG)
        result = run_transfer(
            "mptcp", self.ORP_PATHS, file_size=400_000, tcp_config=cfg,
        )
        assert result.ok
        conn = result.server.connection
        assert conn.orp_events > 0
        assert conn.reinjected_bytes > 0
        assert conn.penalisations > 0

    def test_orp_can_be_disabled(self):
        cfg = TcpConfig(enable_orp=False, **self.ORP_CFG)
        result = run_transfer(
            "mptcp", self.ORP_PATHS, file_size=400_000, tcp_config=cfg,
        )
        assert result.ok
        assert result.server.connection.orp_events == 0

    def test_penalisation_halves_cwnd(self):
        sim, topo, client, server = make_pair(HETEROGENEOUS_PATHS)
        holder = server.subflows[1]
        holder.cc.cwnd_bytes = 80_000
        free = server.subflows[0]
        # Fake bindings: dsn 0 bound to subflow 1.
        server._dsn_buf = bytearray(b"x" * 50_000)
        server._dsn_next = 20_000
        server._mappings[1].add(1, 0, 20_000)
        for f in server.subflows.values():
            f.state = type(f.state).ESTABLISHED
        server._maybe_orp(free, window_blocked=True)
        assert holder.cc.cwnd_bytes == pytest.approx(40_000)
        assert server.penalisations == 1

    def test_orp_rate_limited_per_chunk(self):
        sim, topo, client, server = make_pair(HETEROGENEOUS_PATHS)
        server._dsn_buf = bytearray(b"x" * 50_000)
        server._dsn_next = 20_000
        server._mappings[1].add(1, 0, 20_000)
        for f in server.subflows.values():
            f.state = type(f.state).ESTABLISHED
        free = server.subflows[0]
        server._maybe_orp(free, window_blocked=True)
        events = server.orp_events
        server._maybe_orp(free, window_blocked=True)  # same chunk: no-op
        assert server.orp_events == events


class TestSubflowSchedulers:
    def test_factory(self):
        assert isinstance(make_subflow_scheduler("lowest_rtt"), LowestRttSubflowScheduler)
        assert isinstance(make_subflow_scheduler("round_robin"), RoundRobinSubflowScheduler)
        with pytest.raises(ValueError):
            make_subflow_scheduler("nope")

    def test_potentially_failed_subflow_skipped(self):
        sim, topo, client, server = make_pair()
        client.connect()
        sim.run(until=2.0)
        sched = LowestRttSubflowScheduler()
        flows = list(server.subflows.values())
        flows[0].potentially_failed = True
        pick = sched.select(flows)
        assert pick is flows[1]


class TestFailover:
    def test_transfer_survives_path_death(self):
        sim, topo, client, server = make_pair(
            [PathConfig(10, 30, 50), PathConfig(10, 30, 50)]
        )
        done = {}
        state = {}

        def osd(d, fin):
            if "s" not in state:
                state["s"] = True
                server.send_app_data(b"y" * 1_000_000, fin=True)

        server.on_app_data = osd
        client.on_app_data = lambda d, fin: done.update(t=sim.now) if fin else None
        client.on_established = lambda: client.send_app_data(b"GET")
        client.connect()
        sim.run(until=0.4)
        topo.set_path_loss(0, 100.0)  # kill the initial path mid-flight
        ok = sim.run_until(lambda: "t" in done, timeout=60.0)
        assert ok
