"""WSP (Wootton, Sergent, Phan-Tan-Luu) space-filling design.

Selects a subset of candidate points such that no two chosen points are
closer than a minimum distance, maximising coverage of the space
(Santiago, Claeys-Bruno, Sergent 2012).  The paper uses WSP to pick the
253 network scenarios per environment class (§4.1).

The classic algorithm:

1. generate a large candidate set (uniform random in the unit cube);
2. pick a seed point (the one closest to the centre);
3. repeatedly: remove every remaining candidate within ``dmin`` of the
   last chosen point, then choose the remaining candidate *closest* to
   it;
4. binary-search ``dmin`` until the desired number of points survives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _wsp_once(candidates: np.ndarray, dmin: float) -> np.ndarray:
    """Run one WSP pass; returns indices of the selected points."""
    n = len(candidates)
    alive = np.ones(n, dtype=bool)
    centre = candidates.mean(axis=0)
    current = int(np.argmin(((candidates - centre) ** 2).sum(axis=1)))
    chosen = [current]
    alive[current] = False
    while True:
        dists = np.sqrt(((candidates - candidates[current]) ** 2).sum(axis=1))
        alive &= dists >= dmin  # drop candidates too close to `current`
        alive[current] = False
        if not alive.any():
            break
        masked = np.where(alive, dists, np.inf)
        current = int(np.argmin(masked))
        chosen.append(current)
        alive[current] = False
    return np.asarray(chosen, dtype=int)


def wsp_select(
    n_points: int,
    n_dims: int,
    seed: int = 0,
    candidate_factor: int = 40,
    tolerance: int = 0,
    max_iterations: int = 60,
) -> np.ndarray:
    """Select ``n_points`` space-filling points in the unit hypercube.

    Args:
        n_points: desired design size (the paper uses 253 per class).
        n_dims: dimensionality of the parameter space.
        seed: RNG seed for the candidate cloud (reproducible designs).
        candidate_factor: candidate-set size as a multiple of n_points.
        tolerance: accept designs within ± tolerance points, then trim.
        max_iterations: binary-search budget for ``dmin``.

    Returns:
        ``(n_points, n_dims)`` array in ``[0, 1)``.
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    if n_dims < 1:
        raise ValueError("n_dims must be positive")
    rng = np.random.default_rng(seed)
    n_candidates = max(n_points * candidate_factor, 256)
    candidates = rng.random((n_candidates, n_dims))
    if n_points == 1:
        return candidates[:1]
    # Binary search dmin: larger dmin -> fewer surviving points.
    lo, hi = 0.0, float(np.sqrt(n_dims))
    best: Optional[np.ndarray] = None
    for _ in range(max_iterations):
        dmin = (lo + hi) / 2.0
        idx = _wsp_once(candidates, dmin)
        count = len(idx)
        if abs(count - n_points) <= tolerance or count == n_points:
            best = idx
            break
        if count > n_points:
            lo = dmin
            best = idx  # oversized designs can be trimmed
        else:
            hi = dmin
    if best is None or len(best) < n_points:
        # Fallback: smallest dmin tried produced too few; rerun with ~0.
        best = _wsp_once(candidates, 1e-9)
    return candidates[best[:n_points]]
