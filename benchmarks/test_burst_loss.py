"""A7 — bursty wireless loss widens the (MP)QUIC advantage.

The paper's netem loss is independent per packet; real wireless loses
in bursts.  Under a Gilbert-Elliott model at the same average rate,
MPTCP degrades (a burst wipes a subflow's window, forcing in-sequence
recovery on that path) while MPQUIC reroutes — the multipath half of
the paper's Fig. 5 claim re-emerges strongly.
"""

from repro.experiments.metrics import median
from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig

from benchmarks.common import run_once

SIZE = 2_000_000


def _ratios(burst, seeds=(1, 2, 3)):
    mp = []
    for seed in seeds:
        paths = [
            PathConfig(10, 40, 50, 2.0, loss_burst=burst),
            PathConfig(10, 40, 50, 2.0, loss_burst=burst),
        ]
        mptcp = run_bulk("mptcp", paths, SIZE, base_seed=seed, repetitions=3)
        mpquic = run_bulk("mpquic", paths, SIZE, base_seed=seed, repetitions=3)
        mp.append(mptcp.transfer_time / mpquic.transfer_time)
    return median(mp)


def test_burstiness_widens_multipath_gap(benchmark):
    def run():
        return {
            "independent": _ratios(0.0),
            "burst8": _ratios(8.0),
        }

    ratios = run_once(benchmark, run)
    print(f"\nMPTCP/MPQUIC: independent {ratios['independent']:.2f}, "
          f"burst-8 {ratios['burst8']:.2f}")
    # Under bursty loss MPQUIC wins clearly.
    assert ratios["burst8"] > 1.15
    # And burstiness moves the ratio in MPQUIC's favour.
    assert ratios["burst8"] > ratios["independent"]
