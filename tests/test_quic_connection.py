"""End-to-end tests of the single-path QUIC connection."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


def make_pair(paths=None, seed=1, config=None, trace=None):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths or [PathConfig(10, 40, 50)], seed=seed)
    client = QuicConnection(sim, topo.client, "client", config or QuicConfig(), trace)
    server = QuicConnection(sim, topo.server, "server", config or QuicConfig(), trace)
    return sim, topo, client, server


class TestHandshake:
    def test_one_rtt_handshake(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        established = {}
        client.on_established = lambda: established.update(t=sim.now)
        client.connect()
        sim.run(until=1.0)
        assert client.established and server.established
        # 1 RTT plus serialization of CHLO/SHLO: well under 2 RTT.
        assert 0.04 <= established["t"] < 0.08

    def test_server_established_on_chlo(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        client.connect()
        sim.run(until=0.025)  # CHLO delivered after half RTT
        assert server.established
        assert not client.established

    def test_chlo_loss_recovered_by_rto(self):
        paths = [PathConfig(10, 40, 50)]
        sim = Simulator()
        topo = TwoPathTopology(sim, paths, seed=1)
        client = QuicConnection(sim, topo.client, "client", QuicConfig())
        QuicConnection(sim, topo.server, "server", QuicConfig())
        topo.forward_links[0].set_loss_rate(1.0)
        client.connect()
        sim.run(until=0.3)
        topo.forward_links[0].set_loss_rate(0.0)  # path heals
        sim.run(until=2.0)
        assert client.established  # retransmitted CHLO got through

    def test_server_advertises_addresses(self):
        sim, topo, client, server = make_pair(TWO_CLEAN_PATHS)
        client.connect()
        sim.run(until=1.0)
        assert set(client.peer_addresses) == set(topo.server.addresses)

    def test_rtt_sample_from_handshake(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        client.connect()
        sim.run(until=1.0)
        assert client.paths[0].rtt.has_sample
        assert client.paths[0].rtt.smoothed == pytest.approx(0.04, rel=0.3)


class TestDataTransfer:
    def test_download_completes_with_correct_size(self):
        result = run_transfer("quic", [PathConfig(10, 40, 50)], file_size=300_000)
        assert result.ok
        assert result.app.bytes_received == 300_000

    def test_transfer_time_close_to_link_limit(self):
        size = 1_000_000
        result = run_transfer("quic", [PathConfig(10, 40, 50)], file_size=size)
        floor = size * 8 / 10e6  # pure serialization
        assert floor < result.transfer_time < floor * 1.6

    def test_data_integrity_under_loss(self):
        # The app sends 'x' * N; byte count plus FIN-complete reassembly
        # guarantee content integrity through the Reassembler layer.
        result = run_transfer(
            "quic",
            [PathConfig(5, 30, 50, loss_percent=3.0)],
            file_size=200_000,
        )
        assert result.ok
        assert result.app.bytes_received == 200_000

    def test_retransmissions_happen_under_loss(self):
        result = run_transfer(
            "quic", [PathConfig(5, 30, 50, loss_percent=2.0)], file_size=300_000
        )
        server_stats = result.server.connection.stats
        assert server_stats.stream_bytes_retransmitted > 0
        assert server_stats.packets_lost > 0

    def test_no_loss_means_no_retransmission_without_bufferbloat(self):
        # Large queue, tiny transfer: nothing should be lost.
        result = run_transfer(
            "quic", [PathConfig(10, 40, 500)], file_size=100_000
        )
        assert result.server.connection.stats.stream_bytes_retransmitted == 0

    def test_flow_control_limits_respected(self):
        cfg = QuicConfig(
            initial_connection_window=20_000,
            initial_stream_window=10_000,
            max_connection_window=50_000,
            max_stream_window=30_000,
        )
        result = run_transfer(
            "quic", [PathConfig(10, 20, 100)], file_size=200_000,
            quic_config=cfg,
        )
        assert result.ok  # window updates kept it moving

    def test_bidirectional_streams(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        got = {}
        server.on_stream_data = (
            lambda sid, data, fin: got.setdefault("server", bytearray()).extend(data)
        )
        client.on_stream_data = (
            lambda sid, data, fin: got.setdefault("client", bytearray()).extend(data)
        )

        def client_go():
            sid = client.open_stream()
            client.send_stream_data(sid, b"c" * 5000, fin=True)
            sid2 = server.open_stream()
            server.send_stream_data(sid2, b"s" * 7000, fin=True)

        client.on_established = client_go
        client.connect()
        sim.run(until=2.0)
        assert bytes(got["server"]) == b"c" * 5000
        assert bytes(got["client"]) == b"s" * 7000

    def test_multiple_streams_multiplexed(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        received = {}

        def on_server_data(sid, data, fin):
            received.setdefault(sid, 0)
            received[sid] += len(data)

        server.on_stream_data = on_server_data

        def go():
            for i in range(3):
                sid = client.open_stream()
                client.send_stream_data(sid, bytes([i]) * 10_000, fin=True)

        client.on_established = go
        client.connect()
        sim.run(until=5.0)
        assert sorted(received.values()) == [10_000, 10_000, 10_000]
        assert len(received) == 3

    def test_stream_fully_acked(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])

        def go():
            sid = client.open_stream()
            client.send_stream_data(sid, b"z" * 1000, fin=True)

        client.on_established = go
        client.connect()
        sim.run(until=2.0)
        assert client.stream_fully_acked(1)

    def test_close_stops_traffic(self):
        sim, topo, client, server = make_pair([PathConfig(10, 40, 50)])
        client.connect()
        sim.run(until=1.0)
        client.close()
        sent_before = server.stats.packets_received
        sim.run(until=2.0)
        assert client.closed
        # At most the in-flight CONNECTION_CLOSE arrives afterwards.
        assert server.stats.packets_received <= sent_before + 1
        assert server.closed


class TestQuicSinglePathUsesOnePath:
    def test_second_interface_untouched(self):
        result = run_transfer("quic", TWO_CLEAN_PATHS, file_size=200_000)
        assert result.ok
        fwd1 = result.topology.forward_links[1].stats
        ret1 = result.topology.return_links[1].stats
        assert fwd1.datagrams_sent == 0
        assert ret1.datagrams_sent == 0

    def test_initial_interface_selection(self):
        result = run_transfer(
            "quic", TWO_CLEAN_PATHS, file_size=200_000, initial_interface=1
        )
        assert result.ok
        assert result.topology.forward_links[0].stats.datagrams_sent == 0


class TestTrace:
    def test_trace_records_send_and_recv(self):
        trace = PacketTrace()
        sim, topo, client, server = make_pair(trace=trace)
        client.connect()
        sim.run(until=1.0)
        assert trace.filter(event="send", host="client")
        assert trace.filter(event="recv", host="server")
