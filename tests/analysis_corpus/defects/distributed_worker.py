"""Planted sweep-purity defects on the distributed worker path.

``worker_loop`` is a sweep-worker reachability root just like
``run_cell``: cells it executes commit into the shared result cache,
so anything it reads that the cache key cannot see (module mutable
state, the process environment) silently decides what a cached cell
means.  The defects here are only reachable through ``worker_loop`` —
no ``run_cell`` exists in this module — so they pin the extended
root set.
"""

import os

_claim_history = []

_runner_override = None


def _note_claim(key):
    # Module-level list mutated per claim: shared-state write.
    _claim_history.append(key)  # corpus: expect[sweep-purity]


def _pick_runner(default):
    global _runner_override
    _runner_override = default  # corpus: expect[sweep-purity]
    return default


def _execute(key, runner, ttl):
    return {"key": key, "runner": runner, "ttl": ttl}


def worker_loop(spool):
    results = []
    for key in spool:
        _note_claim(key)
        runner = _pick_runner("simulation")
        ttl = float(os.environ.get("REPRO_LEASE_TTL", "15"))  # corpus: expect[sweep-purity]
        results.append(_execute(key, runner, ttl))
    return results
