"""E2 / Fig. 4 — low-BDP-no-loss: experimental aggregation benefit.

Paper shape: multipath is more beneficial to QUIC than to TCP (EBen > 0
in 77% of MPQUIC scenarios vs 45% for MPTCP), and MPQUIC is less
sensitive to which path starts the connection.
"""

from repro.experiments.figures import fig4
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def _both(buckets):
    return buckets["best_first"] + buckets["worst_first"]


def test_fig4_aggregation_benefit(benchmark):
    data = run_once(benchmark, lambda: fig4(BENCH_CONFIG))
    mpquic = _both(data["mpquic_vs_quic"])
    mptcp = _both(data["mptcp_vs_tcp"])
    frac_q = fraction_greater_than(mpquic, 0.0)
    frac_t = fraction_greater_than(mptcp, 0.0)
    # Multipath helps QUIC more often than TCP.
    assert frac_q > frac_t
    assert median(mpquic) > median(mptcp)
    # MPQUIC is less affected by starting on the worst path: the gap
    # between its best-first and worst-first medians stays moderate.
    q_best = median(data["mpquic_vs_quic"]["best_first"])
    q_worst = median(data["mpquic_vs_quic"]["worst_first"])
    assert abs(q_best - q_worst) < 1.0
