"""Tests for CID-based connection multiplexing."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.quic.mux import ConnectionMux


def make_muxed_pairs(n_connections=2, path=PathConfig(10, 40, 100)):
    """``n`` client connections to one server host over one path."""
    sim = Simulator()
    topo = TwoPathTopology(sim, [path], seed=1)
    client_mux = ConnectionMux(topo.client)
    servers = {}

    def accept(cid):
        conn = QuicConnection(sim, topo.server, "server", QuicConfig(),
                              connection_id=cid)
        servers[cid] = conn
        return conn

    server_mux = ConnectionMux(topo.server, accept=accept)
    clients = []
    for i in range(n_connections):
        conn = QuicConnection(
            sim, topo.client, "client", QuicConfig(), connection_id=0x100 + i
        )
        client_mux.register(conn)
        clients.append(conn)
    return sim, topo, clients, servers, client_mux, server_mux


class TestMux:
    def test_two_connections_handshake_independently(self):
        sim, topo, clients, servers, cmux, smux = make_muxed_pairs()
        for c in clients:
            c.connect()
        sim.run(until=1.0)
        assert all(c.established for c in clients)
        assert len(servers) == 2
        assert all(s.established for s in servers.values())

    def test_duplicate_cid_rejected(self):
        sim, topo, clients, servers, cmux, smux = make_muxed_pairs()
        dup = QuicConnection(
            sim, topo.client, "client", QuicConfig(),
            connection_id=clients[0].connection_id,
        )
        with pytest.raises(ValueError):
            cmux.register(dup)

    def test_unknown_cid_dropped_without_acceptor(self):
        sim, topo, clients, servers, cmux, smux = make_muxed_pairs()
        # Client mux has no accept factory: a stray server packet with
        # an unknown CID is counted and dropped.
        stray = QuicConnection(
            sim, topo.server, "server", QuicConfig(), connection_id=0xDEAD
        )
        smux.register(stray)
        # Force a packet from the stray: open a path and ping on it.
        from repro.quic.frames import PingFrame
        stray._create_path(0, 0)
        stray._queue_control(0, PingFrame())
        stray._send_pending()
        sim.run(until=1.0)
        assert cmux.dropped_unknown >= 1

    def test_concurrent_transfers_share_the_path(self):
        sim, topo, clients, servers, cmux, smux = make_muxed_pairs()
        done = {}

        def make_handlers(index, client):
            def on_server_data(sid, data, fin):
                server = servers[client.connection_id]
                if sid not in getattr(server, "_served", {}):
                    server._served = {sid: True}
                    server.send_stream_data(sid, b"z" * 400_000, fin=True)

            def on_client_data(sid, data, fin):
                if fin:
                    done[index] = sim.now

            return on_server_data, on_client_data

        for i, c in enumerate(clients):
            c.on_established = (
                lambda c=c: c.send_stream_data(c.open_stream(), b"GET", fin=True)
            )

            def bind(i=i, c=c):
                def client_data(sid, data, fin):
                    if fin:
                        done[i] = sim.now
                c.on_stream_data = client_data
            bind()
        # Server-side data handlers attach as connections are accepted.
        orig_accept = smux.accept

        def accept_and_serve(cid):
            conn = orig_accept(cid)
            state = {}

            def on_data(sid, data, fin):
                if sid not in state:
                    state[sid] = True
                    conn.send_stream_data(sid, b"z" * 400_000, fin=True)

            conn.on_stream_data = on_data
            return conn

        smux.accept = accept_and_serve
        for c in clients:
            c.connect()
        ok = sim.run_until(lambda: len(done) == 2, timeout=30.0)
        assert ok
        # Both finished, at similar times (they share the bottleneck).
        times = sorted(done.values())
        assert times[1] < times[0] * 1.5
