"""Packet schedulers for Multipath QUIC.

The default scheduler mirrors the Linux MPTCP default the paper starts
from: prefer the lowest smoothed-RTT path whose congestion window is
not full.  MPQUIC differs in two ways (paper §3, *Packet Scheduling*):
control frames may go on any path, and traffic is duplicated onto
paths whose RTT is still unknown rather than pinging-and-waiting or
blind round-robin.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.obs import metrics as _metrics
from repro.quic.connection import PathLiveness, PathState
from repro.util import sanitize as _san


class Scheduler(ABC):
    """Chooses the path carrying the next data packet."""

    name = "abstract"

    #: When True the connection duplicates data onto every sendable
    #: path, not just RTT-unknown ones (see RedundantScheduler).
    duplicate_everywhere = False

    #: Optional telemetry hook ``fn(path)`` wired by the connection when
    #: a tracer is attached; fed by :meth:`choose` on every decision.
    telemetry: Optional[Callable[[PathState], None]] = None

    @abstractmethod
    def select_path(self, paths: List[PathState]) -> Optional[PathState]:
        """Return a usable path with window space, or None when blocked.

        ``paths`` holds the connection's usable paths (active, and not
        potentially failed unless every path is).
        """

    def choose(self, paths: List[PathState]) -> Optional[PathState]:
        """Select a path and report the decision to the telemetry hook."""
        path = self.select_path(paths)
        if _metrics.METRICS and path is not None:
            _metrics.REGISTRY.inc("scheduler.decisions")
        if _san.SANITIZE and path is not None:
            # A scheduler must only pick from the offered paths and
            # never overcommit a full congestion window.
            _san.check(
                any(p is path for p in paths),
                "scheduler selected a path outside the candidate list",
                scheduler=self.name,
                path_id=path.path_id,
            )
            _san.check(
                path.can_send_data(),
                "scheduler selected a path with no congestion window room",
                scheduler=self.name,
                path_id=path.path_id,
            )
            # Fresh data never rides a path under active probing or one
            # already retired (the connection's _usable_paths filter
            # must have kept them out of the candidate list).
            liveness = getattr(path, "liveness", PathLiveness.ACTIVE)
            _san.check(
                liveness is not PathLiveness.PROBING
                and liveness is not PathLiveness.ABANDONED,
                "scheduler selected a probing or abandoned path",
                scheduler=self.name,
                path_id=path.path_id,
                liveness=getattr(liveness, "value", str(liveness)),
            )
        if path is not None and self.telemetry is not None:
            self.telemetry(path)
        return path

    @staticmethod
    def sendable(paths: List[PathState]) -> List[PathState]:
        """Paths with congestion-window room."""
        return [p for p in paths if p.can_send_data()]


class SinglePathScheduler(Scheduler):
    """Plain QUIC: always the initial path."""

    name = "single"

    def select_path(self, paths: List[PathState]) -> Optional[PathState]:
        candidates = self.sendable(paths)
        for path in candidates:
            if path.path_id == 0:
                return path
        return candidates[0] if candidates else None


class LowestRttScheduler(Scheduler):
    """Default MPQUIC scheduler (paper §3).

    Among paths with window space, prefer the lowest smoothed RTT.
    Paths without an RTT estimate are only picked when no measured
    path can send — they otherwise receive duplicated traffic via the
    connection's duplication hook.
    """

    name = "lowest_rtt"

    def select_path(self, paths: List[PathState]) -> Optional[PathState]:
        # Single fused pass: this runs once per data packet, so the
        # two-listcomp-plus-min formulation was a measurable cost.
        best: Optional[PathState] = None
        best_rtt = 0.0
        fallback: Optional[PathState] = None
        for p in paths:
            if not p.can_send_data():
                continue
            if p.rtt_known:
                rtt = p.rtt.smoothed
                if (
                    best is None
                    or rtt < best_rtt
                    # Deterministic path-id tie-break, as in the old
                    # (smoothed, path_id) sort key.
                    or (rtt == best_rtt and p.path_id < best.path_id)  # repro: allow[float-equality]
                ):
                    best, best_rtt = p, rtt
            elif fallback is None or p.path_id < fallback.path_id:
                fallback = p
        return best if best is not None else fallback


class RoundRobinScheduler(Scheduler):
    """Cycles over sendable paths; the paper's discarded alternative.

    Kept for the scheduler ablation: it is fragile when paths have
    very different delays (head-of-line blocking at the receiver).
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._last_path_id = -1

    def select_path(self, paths: List[PathState]) -> Optional[PathState]:
        candidates = sorted(self.sendable(paths), key=lambda p: p.path_id)
        if not candidates:
            return None
        for path in candidates:
            if path.path_id > self._last_path_id:
                self._last_path_id = path.path_id
                return path
        self._last_path_id = candidates[0].path_id
        return candidates[0]


class RedundantScheduler(LowestRttScheduler):
    """Send every packet on *all* paths with window room.

    Not in the paper, but the logical extreme of its duplication idea:
    trade goodput for latency robustness.  Under path failure the worst
    request delay collapses to the surviving path's RTT (see the
    handover ablation).  Selection is lowest-RTT; the connection's
    duplication hook copies the payload onto every other sendable path.
    """

    name = "redundant"

    #: The connection duplicates onto all paths, not just RTT-unknown ones.
    duplicate_everywhere = True


def make_scheduler(name: str) -> Scheduler:
    """Factory by name; 'lowest_rtt_no_dup' shares LowestRtt's logic
    (duplication is controlled by ``QuicConfig.duplicate_on_unknown_rtt``)."""
    name = name.lower()
    if name in ("lowest_rtt", "lowest_rtt_no_dup"):
        return LowestRttScheduler()
    if name == "round_robin":
        return RoundRobinScheduler()
    if name == "single":
        return SinglePathScheduler()
    if name == "redundant":
        return RedundantScheduler()
    raise ValueError(f"unknown scheduler: {name}")
