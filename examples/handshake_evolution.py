#!/usr/bin/env python3
"""Handshake evolution: the paper's §4.2 outlook, quantified.

"With TLS/TCP, the TCP 3-way handshake and the TLS 1.2 handshake
consume together 3 round-trip-times.  This delay could be reduced by
using the emerging TLS 1.3 and TCP Fast Open."  This example measures a
256 KB download on a 10 Mbps / 40 ms path across the whole evolution,
up to QUIC 0-RTT resumption.

Run:  python examples/handshake_evolution.py
"""

from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

PATH = [PathConfig(capacity_mbps=10.0, rtt_ms=40.0, queuing_delay_ms=50.0)]
SIZE = 256_000

VARIANTS = [
    ("TCP + TLS 1.2 (paper baseline)", "tcp",
     dict(tcp_config=TcpConfig(tls_version="1.2"))),
    ("TCP + TLS 1.3", "tcp",
     dict(tcp_config=TcpConfig(tls_version="1.3"))),
    ("TCP + TLS 1.3 + Fast Open", "tcp",
     dict(tcp_config=TcpConfig(tls_version="1.3", fast_open=True))),
    ("QUIC (1-RTT, paper baseline)", "quic", dict()),
    ("QUIC 0-RTT resumption", "quic",
     dict(quic_config=QuicConfig(zero_rtt=True))),
]


def main() -> None:
    print(f"GET {SIZE // 1000} KB over 10 Mbps / 40 ms RTT\n")
    baseline = None
    for label, protocol, kwargs in VARIANTS:
        result = run_bulk(protocol, PATH, SIZE, **kwargs)
        if baseline is None:
            baseline = result.transfer_time
        saved = (baseline - result.transfer_time) * 1000
        print(f"  {label:34s} {result.transfer_time * 1e3:7.1f} ms "
              f"({saved:+6.1f} ms vs TLS 1.2)")
    print("\nEach shaved round trip is worth ~40 ms here; QUIC 0-RTT"
          "\nremoves the last one, which only resumption can.")


if __name__ == "__main__":
    main()
