"""A1 — MPQUIC packet-scheduler ablation (design choice of §3).

Compares the paper's lowest-RTT-with-duplication scheduler against
round-robin (the rejected alternative) and duplication disabled, on
heterogeneous paths.
"""

from repro.experiments.figures import ablation_scheduler

from benchmarks.common import BENCH_CONFIG, run_once


def test_scheduler_ablation(benchmark):
    results = run_once(benchmark, lambda: ablation_scheduler(BENCH_CONFIG))
    assert set(results) == {"lowest_rtt", "lowest_rtt_no_dup", "round_robin"}
    assert all(t > 0 for t in results.values())
    # Round-robin is fragile under delay heterogeneity (paper §3): it
    # must not beat the default scheduler by any meaningful margin.
    assert results["round_robin"] >= results["lowest_rtt"] * 0.9
