"""A3 — WINDOW_UPDATE duplication ablation (design choice of §3).

The paper's MPQUIC sends WINDOW_UPDATE frames on all paths to avoid
receive-buffer deadlocks when one path stalls; this compares against
sending them on a single path.
"""

from repro.experiments.figures import ablation_window_updates

from benchmarks.common import BENCH_CONFIG, run_once


def test_window_update_ablation(benchmark):
    results = run_once(benchmark, lambda: ablation_window_updates(BENCH_CONFIG))
    assert set(results) == {"all_paths", "single_path"}
    # Duplicating window updates must never hurt meaningfully.
    assert results["all_paths"] <= results["single_path"] * 1.1
