"""End-to-end tests of the TCP + TLS 1.2 baseline."""


from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection
from repro.tcp.segment import Segment

from tests.helpers import run_transfer


def make_pair(path=None, seed=1, cfg=None):
    sim = Simulator()
    topo = TwoPathTopology(sim, [path or PathConfig(10, 40, 50)], seed=seed)
    client = TcpConnection(sim, topo.client, "client", cfg or TcpConfig())
    server = TcpConnection(sim, topo.server, "server", cfg or TcpConfig())
    return sim, topo, client, server


class TestSegment:
    def test_seq_length_counts_flags(self):
        assert Segment(seq=0, ack=0, syn=True).seq_length == 1
        assert Segment(seq=1, ack=0, data=b"abc", fin=True).seq_length == 4
        assert Segment(seq=1, ack=0).seq_length == 0

    def test_wire_size_components(self):
        plain = Segment(seq=1, ack=1, data=b"x" * 100)
        assert plain.wire_size == 40 + 12 + 100
        sacked = Segment(seq=1, ack=1, sack_blocks=((5, 10), (20, 30)))
        assert sacked.wire_size == 40 + 12 + 2 + 16
        dss = Segment(seq=1, ack=1, data=b"x", dsn=7)
        assert dss.wire_size == 40 + 12 + 1 + 20


class TestHandshake:
    def test_three_rtt_to_established_with_tls(self):
        sim, topo, client, server = make_pair(PathConfig(10, 40, 50))
        established = {}
        client.on_established = lambda: established.update(t=sim.now)
        client.connect()
        sim.run(until=2.0)
        # 3WHS (1 RTT) + TLS 1.2 (2 RTT) = 3 RTT = 120 ms plus a little
        # serialization for the certificate flight.
        assert 0.12 <= established["t"] < 0.20

    def test_without_tls_one_rtt(self):
        cfg = TcpConfig(use_tls=False)
        sim, topo, client, server = make_pair(PathConfig(10, 40, 50), cfg=cfg)
        established = {}
        client.on_established = lambda: established.update(t=sim.now)
        client.connect()
        sim.run(until=1.0)
        assert 0.04 <= established["t"] < 0.08

    def test_tls_slower_than_quic_by_two_rtt(self):
        # The §4.2 short-transfer effect in its purest form.
        quic = run_transfer("quic", [PathConfig(10, 40, 50)], file_size=10_000)
        tcp = run_transfer("tcp", [PathConfig(10, 40, 50)], file_size=10_000)
        assert tcp.transfer_time - quic.transfer_time > 0.06  # ~2 RTT

    def test_syn_loss_recovered(self):
        sim, topo, client, server = make_pair(PathConfig(10, 40, 50))
        topo.forward_links[0].set_loss_rate(1.0)
        client.connect()
        sim.run(until=0.5)
        topo.forward_links[0].set_loss_rate(0.0)
        sim.run(until=4.0)
        assert client.secure_established

    def test_server_consumed_tls_bytes_not_delivered_to_app(self):
        sim, topo, client, server = make_pair()
        got = []
        server.on_app_data = lambda d, fin: got.append(d)
        client.on_established = lambda: client.send_app_data(b"REQ")
        client.connect()
        sim.run(until=2.0)
        assert b"".join(got) == b"REQ"


class TestDataTransfer:
    def test_download_completes(self):
        result = run_transfer("tcp", [PathConfig(10, 40, 50)], file_size=500_000)
        assert result.ok
        assert result.app.bytes_received == 500_000

    def test_lossy_transfer_completes(self):
        result = run_transfer(
            "tcp", [PathConfig(5, 30, 50, loss_percent=2.0)], file_size=300_000
        )
        assert result.ok
        assert result.app.bytes_received == 300_000

    def test_fast_retransmit_under_loss(self):
        result = run_transfer(
            "tcp", [PathConfig(10, 40, 100, loss_percent=2.0)], file_size=500_000,
            seed=3,
        )
        flow = result.server.connection.flow
        assert flow.fast_retransmits > 0

    def test_throughput_near_link_rate(self):
        size = 1_000_000
        result = run_transfer("tcp", [PathConfig(10, 40, 50)], file_size=size)
        floor = size * 8 / 10e6
        assert result.transfer_time < floor * 1.7

    def test_bidirectional_data(self):
        sim, topo, client, server = make_pair()
        got = {"c": bytearray(), "s": bytearray()}
        client.on_app_data = lambda d, fin: got["c"].extend(d)
        server.on_app_data = lambda d, fin: got["s"].extend(d)

        def go():
            client.send_app_data(b"c" * 4000)

        client.on_established = go
        client.connect()
        sim.run(until=1.0)
        server.send_app_data(b"s" * 6000)
        sim.run(until=2.0)
        assert bytes(got["s"]) == b"c" * 4000
        assert bytes(got["c"]) == b"s" * 6000

    def test_fin_signalled_to_app(self):
        sim, topo, client, server = make_pair()
        fins = []
        client.on_app_data = lambda d, fin: fins.append(fin)
        state = {}

        def osd(d, fin):
            if "s" not in state:
                state["s"] = True
                server.send_app_data(b"resp", fin=True)

        server.on_app_data = osd
        client.on_established = lambda: client.send_app_data(b"req")
        client.connect()
        sim.run(until=3.0)
        assert fins and fins[-1] is True

    def test_all_sent_data_acked(self):
        sim, topo, client, server = make_pair()
        client.on_established = lambda: client.send_app_data(b"z" * 10_000, fin=True)
        client.connect()
        sim.run(until=3.0)
        assert client.all_sent_data_acked()


class TestSackLimit:
    def test_sack_blocks_capped_at_three(self):
        cfg = TcpConfig()
        sim, topo, client, server = make_pair(cfg=cfg)
        flow = client.connection.flow if hasattr(client, "connection") else client.flow
        # Feed the receiver a pathological hole pattern directly.
        for offset in (10, 30, 50, 70, 90):
            flow.reassembler.insert(offset, b"x" * 5)
        blocks = flow._sack_blocks()
        assert len(blocks) <= cfg.max_sack_blocks

    def test_karn_rtt_ignores_retransmitted(self):
        result = run_transfer(
            "tcp", [PathConfig(5, 40, 50, loss_percent=2.0)], file_size=300_000
        )
        flow = result.server.connection.flow
        # Samples were taken, but fewer than the ACK count (probe-based).
        assert flow.rtt.has_sample
        assert flow.rtt.samples_taken < flow.segments_received


class TestTlpAndRto:
    def test_tail_loss_recovered_without_many_rtos(self):
        # Drop the tail of a burst: TLP + early retransmit should repair
        # it with at most one RTO.
        result = run_transfer(
            "tcp", [PathConfig(10, 40, 50, loss_percent=1.0)], file_size=200_000,
            seed=3,
        )
        assert result.ok
        assert result.server.connection.flow.rto_count <= 2

    def test_rto_count_grows_under_heavy_loss(self):
        result = run_transfer(
            "tcp", [PathConfig(2, 60, 30, loss_percent=8.0)], file_size=100_000,
            timeout=3000.0,
        )
        assert result.ok  # reliability survives brutal loss
