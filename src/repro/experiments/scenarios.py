"""Fixed experiment scenarios beyond the WSP sweeps.

Currently just the network-handover setup of §4.3: an initial path with
15 ms RTT, a second path with 25 ms RTT, 750-byte requests every
400 ms, and the initial path turning completely lossy after 3 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.netsim.topology import PathConfig


@dataclass(frozen=True)
class HandoverScenario:
    """Parameters of the Fig. 11 experiment."""

    paths: Tuple[PathConfig, PathConfig]
    message_size: int = 750
    interval: float = 0.4
    total_requests: int = 35
    failure_time: float = 3.0
    #: Loss applied to the initial path at ``failure_time`` (percent).
    failure_loss_percent: float = 100.0


#: The paper's §4.3 configuration.  Capacities are not specified there;
#: 10 Mbps links keep serialization delay negligible for 750 B messages.
HANDOVER_SCENARIO = HandoverScenario(
    paths=(
        PathConfig(capacity_mbps=10.0, rtt_ms=15.0, queuing_delay_ms=20.0),
        PathConfig(capacity_mbps=10.0, rtt_ms=25.0, queuing_delay_ms=20.0),
    )
)
