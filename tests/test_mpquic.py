"""End-to-end tests of Multipath QUIC (the paper's contribution)."""

import pytest

from repro.core.connection import MultipathQuicConnection
from repro.core.scheduler import (
    LowestRttScheduler,
    RoundRobinScheduler,
    SinglePathScheduler,
    make_scheduler,
)
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import PathState

from tests.helpers import (
    HETEROGENEOUS_PATHS,
    LOSSY_PATHS,
    TWO_CLEAN_PATHS,
    run_transfer,
)


def make_pair(paths=None, seed=1, config=None, trace=None):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths or TWO_CLEAN_PATHS, seed=seed)
    client = MultipathQuicConnection(
        sim, topo.client, "client", config or QuicConfig(), trace
    )
    server = MultipathQuicConnection(
        sim, topo.server, "server", config or QuicConfig(), trace
    )
    return sim, topo, client, server


class FakePath:
    """Minimal stand-in for PathState in scheduler unit tests."""

    def __init__(self, path_id, srtt=None, can_send=True, failed=False):
        self.path_id = path_id
        self.active = True
        self.potentially_failed = failed
        self._can_send = can_send
        self._srtt = srtt

    @property
    def rtt_known(self):
        return self._srtt is not None

    @property
    def rtt(self):
        class R:
            smoothed = self._srtt or 0.0
        return R()

    def can_send_data(self):
        return self._can_send


class TestSchedulers:
    def test_factory(self):
        assert isinstance(make_scheduler("lowest_rtt"), LowestRttScheduler)
        assert isinstance(make_scheduler("lowest_rtt_no_dup"), LowestRttScheduler)
        assert isinstance(make_scheduler("round_robin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("single"), SinglePathScheduler)
        with pytest.raises(ValueError):
            make_scheduler("bogus")

    def test_lowest_rtt_prefers_fastest(self):
        sched = LowestRttScheduler()
        slow = FakePath(0, srtt=0.1)
        fast = FakePath(1, srtt=0.02)
        assert sched.select_path([slow, fast]) is fast

    def test_lowest_rtt_skips_full_windows(self):
        sched = LowestRttScheduler()
        fast = FakePath(0, srtt=0.02, can_send=False)
        slow = FakePath(1, srtt=0.1)
        assert sched.select_path([fast, slow]) is slow

    def test_lowest_rtt_blocked_when_all_full(self):
        sched = LowestRttScheduler()
        assert sched.select_path([FakePath(0, srtt=0.02, can_send=False)]) is None

    def test_lowest_rtt_unknown_path_as_fallback(self):
        sched = LowestRttScheduler()
        unknown = FakePath(1, srtt=None)
        assert sched.select_path([unknown]) is unknown

    def test_lowest_rtt_prefers_known_over_unknown(self):
        sched = LowestRttScheduler()
        unknown = FakePath(1, srtt=None)
        known = FakePath(0, srtt=0.5)
        assert sched.select_path([unknown, known]) is known

    def test_round_robin_cycles(self):
        sched = RoundRobinScheduler()
        a, b = FakePath(0, srtt=0.1), FakePath(1, srtt=0.1)
        picks = [sched.select_path([a, b]).path_id for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_single_path_sticks_to_zero(self):
        sched = SinglePathScheduler()
        a, b = FakePath(0, srtt=0.1), FakePath(1, srtt=0.01)
        assert sched.select_path([a, b]) is a


class TestPathManagement:
    def test_paths_open_after_handshake(self):
        sim, topo, client, server = make_pair()
        client.connect()
        sim.run(until=1.0)
        assert client.path_count == 2
        # Client-initiated extra paths get odd IDs (paper §3).
        assert set(client.paths) == {0, 1}
        assert server.path_count == 2

    def test_data_in_first_packet_of_new_path(self):
        """MPQUIC can use a new path without any handshake on it."""
        trace = PacketTrace()
        sim, topo, client, server = make_pair(trace=trace)
        done = {}
        state = {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"y" * 500_000, fin=True)

        server.on_stream_data = osd
        client.on_stream_data = lambda sid, d, fin: done.update(t=sim.now) if fin else None
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run_until(lambda: "t" in done, timeout=30.0)
        # Packet number 0 on server path 1 carried stream data.
        sends = trace.filter(event="send", host="server", path_id=1)
        assert sends and sends[0].packet_number == 0

    def test_initial_path_interface_choice(self):
        sim, topo, client, server = make_pair(HETEROGENEOUS_PATHS)
        client.connect(initial_interface=1)
        sim.run(until=2.0)
        assert client.paths[0].interface_index == 1
        assert client.paths[1].interface_index == 0

    def test_down_interface_not_opened(self):
        sim, topo, client, server = make_pair()
        topo.client.interfaces[1].up = False
        client.connect()
        sim.run(until=1.0)
        assert client.path_count == 1


class TestAggregation:
    def test_two_paths_beat_one(self):
        single = run_transfer("quic", TWO_CLEAN_PATHS, file_size=2_000_000)
        multi = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=2_000_000)
        assert multi.ok and single.ok
        assert multi.transfer_time < single.transfer_time * 0.8

    def test_both_paths_carry_data(self):
        result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=2_000_000)
        sent = result.server.connection.bytes_sent_per_path()
        assert sent[0] > 200_000 and sent[1] > 200_000

    def test_aggregation_with_losses(self):
        result = run_transfer("mpquic", LOSSY_PATHS, file_size=1_000_000)
        assert result.ok
        assert result.app.bytes_received == 1_000_000

    def test_heterogeneous_paths_work(self):
        result = run_transfer("mpquic", HETEROGENEOUS_PATHS, file_size=1_000_000)
        assert result.ok

    def test_worst_path_first_still_completes_quickly(self):
        best = run_transfer(
            "mpquic", HETEROGENEOUS_PATHS, file_size=1_000_000, initial_interface=0
        )
        worst = run_transfer(
            "mpquic", HETEROGENEOUS_PATHS, file_size=1_000_000, initial_interface=1
        )
        # Paper §4.1: MPQUIC is only mildly affected by the initial path.
        assert worst.transfer_time < best.transfer_time * 1.8


class TestDuplication:
    def test_duplicates_sent_while_rtt_unknown(self):
        trace = PacketTrace()
        cfg = QuicConfig(duplicate_on_unknown_rtt=True)
        sim, topo, client, server = make_pair(trace=trace, config=cfg)
        state = {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"y" * 300_000, fin=True)

        server.on_stream_data = osd
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=5.0)
        assert trace.filter(event="dup")

    def test_no_duplicates_when_disabled(self):
        trace = PacketTrace()
        cfg = QuicConfig(duplicate_on_unknown_rtt=False)
        sim, topo, client, server = make_pair(trace=trace, config=cfg)
        state = {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"y" * 300_000, fin=True)

        server.on_stream_data = osd
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=5.0)
        assert not trace.filter(event="dup")

    def test_duplicated_data_not_retransmitted_spuriously(self):
        # Duplicates whose twin was acked must not requeue on loss.
        result = run_transfer(
            "mpquic",
            [
                PathConfig(10, 20, 50),
                PathConfig(1, 200, 100, loss_percent=20.0),
            ],
            file_size=300_000,
        )
        assert result.ok


class TestOliaIntegration:
    def test_olia_is_default_for_multipath(self):
        sim, topo, client, server = make_pair()
        client.connect()
        sim.run(until=1.0)
        from repro.cc.olia import OliaPath

        assert all(isinstance(p.cc, OliaPath) for p in client.paths.values())

    def test_uncoupled_cubic_optional(self):
        cfg = QuicConfig(multipath_cc="cubic2")
        sim, topo, client, server = make_pair(config=cfg)
        client.connect()
        sim.run(until=1.0)
        from repro.cc.cubic import Cubic

        assert all(isinstance(p.cc, Cubic) for p in client.paths.values())


class TestPathsFrame:
    def test_failed_path_signalled_to_peer(self):
        sim, topo, client, server = make_pair(
            [PathConfig(10, 30, 50), PathConfig(10, 30, 50)]
        )
        state = {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"y" * 50_000, fin=False)

        server.on_stream_data = osd
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=2.0)
        # Kill path 0 mid-connection; keep the app chatty via pings from
        # more server data so RTOs can fire.
        topo.set_path_loss(0, 100.0)
        server.send_stream_data(1, b"z" * 200_000, fin=True)
        sim.run(until=8.0)
        assert server.paths[0].potentially_failed or client.paths[0].potentially_failed


# ----------------------------------------------------------------------
# Scheduler invariants under path failure (fault-injection satellites)
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.obs import Tracer  # noqa: E402
from tests.helpers import failure_timeline  # noqa: E402

fake_paths = st.lists(
    st.builds(
        FakePath,
        path_id=st.integers(0, 7),
        srtt=st.one_of(st.none(), st.floats(0.001, 1.0, allow_nan=False)),
        can_send=st.booleans(),
        failed=st.booleans(),
    ),
    min_size=1,
    max_size=6,
)


def usable(paths):
    """The connection's `_usable_paths` policy: prefer non-failed."""
    good = [p for p in paths if p.active and not p.potentially_failed]
    return good or [p for p in paths if p.active]


class TestFailedPathAvoidanceProperty:
    @given(fake_paths)
    @settings(max_examples=300, derandomize=True)
    def test_never_selects_failed_path_while_alternative_lives(self, paths):
        choice = LowestRttScheduler().select_path(usable(paths))
        live = [
            p for p in paths
            if not p.potentially_failed and p.can_send_data()
        ]
        if live:
            assert choice is not None
            assert not choice.potentially_failed
        if choice is not None:
            assert choice.can_send_data()

    @given(fake_paths)
    @settings(max_examples=300, derandomize=True)
    def test_known_rtt_paths_beat_unknown_ones(self, paths):
        candidates = usable(paths)
        choice = LowestRttScheduler().select_path(candidates)
        known_live = [
            p for p in candidates if p.rtt_known and p.can_send_data()
        ]
        if known_live and choice is not None:
            assert choice.rtt_known
            assert choice.rtt.smoothed == min(
                p.rtt.smoothed for p in known_live
            )


class TestSchedulerUnderInjectedFailure:
    def test_no_selection_of_failed_path_after_detection(self):
        """After the server marks path 0 potentially failed, the
        scheduler must route everything onto the surviving path."""
        trace = Tracer()
        result = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=2_000_000,
            timeline=failure_timeline(0.5, path=0, mode="down"),
            trace=trace, timeout=60.0,
        )
        assert result.ok
        failures = trace.events_of(
            category="path", name="potentially_failed",
            host="server", path_id=0,
        )
        assert failures, "failure was never detected"
        detected = min(e.time for e in failures)
        later_picks = trace.events_of(
            category="scheduler", name="path_selected",
            host="server", t_min=detected,
        )
        assert later_picks, "no scheduling decisions after detection"
        assert all(e.path_id != 0 for e in later_picks if e.time > detected)

    def test_duplication_only_targets_rtt_unknown_paths(self):
        """Every duplicated packet on a path precedes that path's
        validation (first RTT sample) — duplication exists to probe
        paths whose characteristics are unknown, nothing else."""
        trace = Tracer()
        result = run_transfer(
            "mpquic", HETEROGENEOUS_PATHS, file_size=1_000_000,
            trace=trace, timeout=60.0,
        )
        assert result.ok
        dups = trace.events_of(category="scheduler", name="duplicated")
        assert dups, "no duplication observed during path bring-up"
        for host in ("client", "server"):
            validated = {
                e.path_id: e.time
                for e in trace.events_of(
                    category="path", name="validated", host=host
                )
            }
            for dup in dups:
                if dup.host != host:
                    continue
                first_sample = validated.get(dup.path_id)
                if first_sample is not None:
                    assert dup.time <= first_sample

    def test_failed_path_recovers_when_link_returns(self):
        """down -> up: the path is declared failed, then rejoins."""
        from repro.netsim.faults import link_down, link_up, timeline

        trace = Tracer()
        result = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=4_000_000,
            timeline=timeline(link_down(0.5, 0), link_up(2.5, 0)),
            trace=trace, timeout=120.0,
        )
        assert result.ok
        failed = trace.events_of(category="path", name="potentially_failed",
                                 path_id=0)
        recovered = trace.events_of(category="path", name="recovered",
                                    path_id=0)
        assert failed and recovered
        assert min(e.time for e in recovered) > min(e.time for e in failed)
