#!/usr/bin/env python3
"""Goodput and congestion-window dynamics of an MPQUIC download.

Samples the receiver's goodput and each path's congestion window every
100 ms during a 6 MB download over heterogeneous paths, then renders
both series as text — the kind of time-series view used to debug
multipath schedulers.

Run:  python examples/throughput_timeline.py
"""

from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import make_client_server
from repro.experiments.sampling import ConnectionSampler
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology


def bar(value: float, scale: float, width: int = 40) -> str:
    return "#" * max(0, min(width, int(value / scale * width)))


def main() -> None:
    sim = Simulator()
    topo = TwoPathTopology(
        sim,
        [
            PathConfig(capacity_mbps=16.0, rtt_ms=30.0, queuing_delay_ms=80.0),
            PathConfig(capacity_mbps=6.0, rtt_ms=70.0, queuing_delay_ms=120.0),
        ],
        seed=3,
    )
    client, server = make_client_server("mpquic", sim, topo)
    app = BulkTransferApp(sim, client, server, file_size=6_000_000)
    # Sample the SERVER: it is the data sender, so its congestion
    # windows and sent-goodput tell the scheduling story.
    sampler = ConnectionSampler(
        sim, server.connection, interval=0.1, stop_when=lambda: app.complete
    )
    sampler.start()
    app.start()
    sim.run_until(lambda: app.complete, timeout=120.0)

    total_capacity = 22e6
    print("time   goodput (Mbps)                            cwnd p0 / p1 (KB)")
    for (t, bps) in sampler.goodput_series(direction="sent"):
        sample = next(s for s in sampler.samples if s.time == t)
        cwnds = sample.per_path_cwnd
        c0 = cwnds.get(0, 0) / 1e3
        c1 = cwnds.get(1, 0) / 1e3
        print(f"{t:5.1f}s |{bar(bps, total_capacity):<40}| "
              f"{bps / 1e6:5.1f}  {c0:6.0f} / {c1:6.0f}")
    split = sampler.path_split()
    print(f"\ncompleted in {app.transfer_time:.2f}s; traffic split: "
          + ", ".join(f"path {p}: {v * 100:.0f}%" for p, v in sorted(split.items())))


if __name__ == "__main__":
    main()
