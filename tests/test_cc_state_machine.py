"""State-machine tests for the congestion-controller base class."""

import pytest

from repro.cc import Cubic, NewReno
from repro.cc.base import CcState, INITIAL_WINDOW_SEGMENTS

MSS = 1400


class TestRecoveryTransitions:
    def test_exit_recovery_to_congestion_avoidance(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_loss_event(now=1.0, sent_time=0.5)
        assert cc.state is CcState.RECOVERY
        cc.exit_recovery()
        # Post-loss cwnd equals ssthresh: congestion avoidance.
        assert cc.state is CcState.CONGESTION_AVOIDANCE

    def test_exit_recovery_to_slow_start_after_rto(self):
        cc = NewReno(mss=MSS)
        cc.cwnd_bytes = 100 * MSS
        cc.on_rto(now=1.0)
        assert cc.in_slow_start
        # Growth during slow start crosses into CA at ssthresh.
        while cc.in_slow_start:
            cc.on_ack(1.1, MSS, 0.05)
        assert cc.state is CcState.CONGESTION_AVOIDANCE

    def test_exit_recovery_noop_outside_recovery(self):
        cc = Cubic(mss=MSS)
        state = cc.state
        cc.exit_recovery()
        assert cc.state is state

    def test_no_growth_during_recovery(self):
        cc = Cubic(mss=MSS)
        cc.cwnd_bytes = 50 * MSS
        cc.on_loss_event(1.0, 0.9)
        w = cc.cwnd_bytes
        for _ in range(20):
            cc.on_ack(1.1, MSS, 0.05)
        assert cc.cwnd_bytes == w

    def test_initial_window_is_ten_segments(self):
        assert Cubic(mss=MSS).cwnd_bytes == INITIAL_WINDOW_SEGMENTS * MSS

    def test_hystart_exits_slow_start_on_delay_increase(self):
        cc = Cubic(mss=MSS)
        base = 0.05
        # Feed enough samples with clearly inflating RTT.
        for i in range(40):
            cc.on_ack(1.0 + i * 0.01, MSS, base + i * 0.003)
            if not cc.in_slow_start:
                break
        assert not cc.in_slow_start
        assert cc.ssthresh_bytes < float("inf")

    def test_hystart_quiet_rtt_stays_in_slow_start(self):
        cc = Cubic(mss=MSS)
        for i in range(30):
            cc.on_ack(1.0 + i * 0.01, MSS, 0.05)  # flat RTT
        assert cc.in_slow_start

    def test_cubic2_beta_and_alpha(self):
        cc = Cubic(mss=MSS, num_connections=2)
        assert cc.beta_eff == pytest.approx(0.85)
        assert cc.alpha_eff == pytest.approx(3 * 4 * 0.15 / 1.85)
        cc.cwnd_bytes = 100 * MSS
        cc.ssthresh_bytes = 100 * MSS
        cc.on_loss_event(1.0, 0.9)
        assert cc.cwnd_bytes == pytest.approx(85 * MSS)

    def test_invalid_num_connections(self):
        with pytest.raises(ValueError):
            Cubic(mss=MSS, num_connections=0)
