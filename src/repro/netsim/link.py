"""Unidirectional link with rate, delay, drop-tail queue and random loss.

Mirrors the netem/htb configuration used by the paper's Mininet setup:
a token-less serializer at ``rate`` feeding a propagation-delay pipe,
preceded by a finite drop-tail buffer sized from the configured maximum
queuing delay, with optional random loss on the wire — either
independent (Bernoulli, the paper's model) or bursty (Gilbert-Elliott,
closer to real wireless fading).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.netsim.engine import Simulator, Timer
from repro.netsim.node import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.faults import Mutation


class GilbertElliottLoss:
    """Two-state Markov loss process (netem's ``loss gemodel``).

    In the *good* state packets survive; in the *bad* state each packet
    is dropped with probability ``bad_loss``.  Transition probabilities
    are chosen from the desired average loss rate and mean burst
    length:  p(good->bad) = avg / (burst * bad_loss - avg ...), solved
    via the stationary distribution pi_bad = p / (p + r).
    """

    def __init__(
        self,
        avg_loss_rate: float,
        mean_burst: float = 4.0,
        bad_loss: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < avg_loss_rate < 1.0:
            raise ValueError("avg_loss_rate must be in (0, 1)")
        if mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1")
        self.rng = rng or random.Random(0)
        self.bad_loss = bad_loss
        # Mean sojourn in bad state = mean_burst packets -> r = 1/burst.
        self.r = 1.0 / mean_burst  # bad -> good
        pi_bad = avg_loss_rate / bad_loss
        if pi_bad >= 1.0:
            raise ValueError("average loss too high for the burst model")
        # pi_bad = p / (p + r)  =>  p = r * pi_bad / (1 - pi_bad).
        self.p = self.r * pi_bad / (1.0 - pi_bad)  # good -> bad
        self._bad = False

    def lose(self) -> bool:
        """Advance one packet; return True if it should be dropped."""
        if self._bad:
            if self.rng.random() < self.r:
                self._bad = False
        else:
            if self.rng.random() < self.p:
                self._bad = True
        return self._bad and self.rng.random() < self.bad_loss


@dataclass
class LinkStats:
    """Counters accumulated over the life of a link."""

    datagrams_sent: int = 0
    bytes_sent: int = 0
    datagrams_delivered: int = 0
    queue_drops: int = 0
    random_losses: int = 0
    max_queue_bytes: int = 0
    #: Datagrams serialized but silently discarded while blackholed.
    blackholed: int = 0
    #: Datagrams dropped by fault injection (link down: rejected sends,
    #: flushed queue, aborted in-flight serialization).
    fault_drops: int = 0


class Link:
    """One direction of a point-to-point link.

    Args:
        sim: the event loop.
        rate_bps: serialization rate in bits per second.
        prop_delay: one-way propagation delay in seconds.
        queue_capacity: drop-tail buffer size in bytes (the packet being
            serialized does not count against it).
        loss_rate: Bernoulli per-datagram loss probability applied on the
            wire (after the queue), as in netem random loss.
        rng: random source for loss decisions; supply a seeded
            ``random.Random`` for reproducible lossy runs.
        sink: callback invoked with each delivered datagram.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay: float,
        queue_capacity: int,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        sink: Optional[Callable[[Datagram], None]] = None,
        name: str = "link",
        jitter: float = 0.0,
        burst_loss: Optional[GilbertElliottLoss] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        #: netem-style delay variation: each datagram gets an extra
        #: uniform [0, jitter) seconds of propagation, which (like
        #: netem without reorder protection) may reorder packets.
        self.jitter = jitter
        self.queue_capacity = queue_capacity
        self.loss_rate = loss_rate
        #: Optional bursty (Gilbert-Elliott) loss; replaces Bernoulli
        #: loss when set.
        self.burst_loss = burst_loss
        self.rng = rng or random.Random(0)
        self.sink = sink
        self.name = name
        self.stats = LinkStats()
        #: Administrative state; False drops everything at the NIC.
        self.up = True
        #: Aggregate rate currently reserved by fluid-approximation
        #: flows (:mod:`repro.netsim.fluid`); packet-level serialization
        #: runs at ``rate_bps - fluid_reserved_bps``.  0.0 (the
        #: default) keeps the packet hot path's arithmetic unchanged.
        self.fluid_reserved_bps = 0.0
        #: Silent-drop mode: serialized datagrams never get delivered.
        self.blackhole = False
        self._queue: Deque[Datagram] = deque()
        self._queued_bytes = 0
        self._busy = False
        # In-flight serialization bookkeeping, so fault injection can
        # re-plan (rate change) or abort (link down) the datagram
        # currently being clocked onto the wire.
        self._tx_timer: Optional[Timer] = None
        self._tx_datagram: Optional[Datagram] = None
        self._tx_remaining_bytes = 0.0
        self._tx_start = 0.0
        self._tx_end = 0.0

    # ------------------------------------------------------------------
    # Fault injection (see repro.netsim.faults)
    # ------------------------------------------------------------------

    def apply(self, mutation: "Mutation") -> None:
        """Apply a timed fault mutation to this link.

        The single entry point used by :class:`repro.netsim.faults.
        FaultTimeline`; dispatches onto the ``set_*`` primitives below,
        which keep in-flight serialization consistent.
        """
        mutation.apply_to_link(self)

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the random-loss probability mid-simulation.

        Used by the handover experiment where a path becomes completely
        lossy at a given instant (Fig. 11).
        """
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        self.loss_rate = loss_rate

    def set_burst_loss(self, model: Optional[GilbertElliottLoss]) -> None:
        """Install (or clear) a Gilbert-Elliott burst-loss episode."""
        self.burst_loss = model

    def set_blackhole(self, enabled: bool) -> None:
        """Toggle silent-drop mode (serialize, then discard)."""
        self.blackhole = enabled

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the link.

        Going down aborts the datagram currently being serialized and
        flushes the drop-tail queue (all counted as ``fault_drops``);
        datagrams already propagating on the wire still arrive.
        """
        if up == self.up:
            return
        self.up = up
        if not up:
            if self._tx_timer is not None:
                self._tx_timer.cancel()
                self._tx_timer = None
                self._tx_datagram = None
                self.stats.fault_drops += 1
            self._busy = False
            self.stats.fault_drops += len(self._queue)
            self._queue.clear()
            self._queued_bytes = 0

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate, re-planning in-flight bytes.

        The datagram currently on the serializer finishes its remaining
        bytes at the new rate: the completion event is cancelled and
        re-scheduled.  Multiple rate changes during one datagram compose
        correctly because the remaining-byte count is carried forward.
        """
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self._tx_timer is not None and not self._tx_timer.cancelled:
            now = self.sim.now
            total = self._tx_end - self._tx_start
            fraction = (self._tx_end - now) / total if total > 0 else 0.0
            fraction = min(1.0, max(0.0, fraction))
            self._tx_remaining_bytes *= fraction
            self._tx_timer.cancel()
            self.rate_bps = rate_bps
            delay = self._tx_remaining_bytes * 8.0 / self.effective_rate_bps()
            self._tx_start = now
            self._tx_end = now + delay
            self._tx_timer = self.sim.schedule(
                delay, self._serialization_done, self._tx_datagram
            )
        else:
            self.rate_bps = rate_bps

    def set_prop_delay(self, prop_delay: float) -> None:
        """Change the one-way propagation delay for future datagrams.

        Datagrams already propagating keep the delay they left with.
        """
        if prop_delay < 0.0:
            raise ValueError("prop_delay must be non-negative")
        self.prop_delay = prop_delay

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def send(self, datagram: Datagram) -> bool:
        """Offer a datagram to the link.

        Returns False when the link is down or the drop-tail queue
        rejected it.
        """
        if not self.up:
            self.stats.fault_drops += 1
            return False
        if self._busy:
            if self._queued_bytes + datagram.size > self.queue_capacity:
                self.stats.queue_drops += 1
                return False
            self._queue.append(datagram)
            self._queued_bytes += datagram.size
            if self._queued_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self._queued_bytes
            return True
        self._transmit(datagram)
        return True

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the drop-tail buffer."""
        return self._queued_bytes

    @property
    def serialization_busy(self) -> bool:
        """True while a datagram is being clocked onto the wire."""
        return self._busy

    def effective_rate_bps(self) -> float:
        """Serialization rate left after fluid reservations.

        The floor (1% of the raw rate) keeps packet traffic trickling
        even if the fluid side ever reserves the whole link, so the
        packet simulation cannot divide by zero or stall forever.
        """
        rate = self.rate_bps - self.fluid_reserved_bps
        if rate <= 0.0:
            return 0.01 * self.rate_bps
        return rate

    def transmission_delay(self, size: int) -> float:
        """Seconds needed to serialize ``size`` bytes at the link rate."""
        return size * 8.0 / self.effective_rate_bps()

    def _transmit(self, datagram: Datagram) -> None:
        self._busy = True
        size = datagram.size
        rate = self.rate_bps - self.fluid_reserved_bps
        if rate <= 0.0:
            rate = 0.01 * self.rate_bps
        tx_delay = size * 8.0 / rate
        sim = self.sim
        now = sim.now
        self._tx_datagram = datagram
        self._tx_remaining_bytes = float(size)
        self._tx_start = now
        self._tx_end = now + tx_delay
        self._tx_timer = sim.schedule(
            tx_delay, self._serialization_done, datagram
        )

    def _serialization_done(self, datagram: Datagram) -> None:
        self._tx_timer = None
        self._tx_datagram = None
        stats = self.stats
        stats.datagrams_sent += 1
        stats.bytes_sent += datagram.size
        if self.burst_loss is not None:
            lost = self.burst_loss.lose()
        else:
            lost = self.loss_rate > 0.0 and self.rng.random() < self.loss_rate
        if lost:
            stats.random_losses += 1
        elif self.blackhole:
            stats.blackholed += 1
        else:
            delay = self.prop_delay
            if self.jitter > 0.0:
                delay += self.rng.random() * self.jitter
            self.sim.schedule(delay, self._deliver, datagram)
        if self._queue:
            next_datagram = self._queue.popleft()
            self._queued_bytes -= next_datagram.size
            self._transmit(next_datagram)
        else:
            self._busy = False

    def _deliver(self, datagram: Datagram) -> None:
        self.stats.datagrams_delivered += 1
        if self.sink is not None:
            self.sink(datagram)
