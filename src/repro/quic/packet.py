"""QUIC packets: containers of frames.

Each packet carries a small public header (flags, connection ID, packet
number and — under multipath — the Path ID) and a payload of frames.
Packet numbers increase monotonically within one path's number space
and are never reused, even for retransmitted data (which removes the
retransmission ambiguity that plagues TCP RTT estimation; paper §2).

``Packet`` is a ``__slots__`` class with ``wire_size`` and
``is_ack_eliciting`` computed once at construction: the send loop reads
both per packet (bandwidth accounting and ACK bookkeeping on each hop),
and recomputing them was a measurable share of the per-packet cost.
The cached values stay honest because a packet's frame tuple is fixed
for its lifetime; size accounting happens at construction, before any
pooled frame could be recycled.
"""

from __future__ import annotations

from typing import Tuple

from repro.quic import wire
from repro.quic.frames import Frame

_HEADER_MP = wire.public_header_size(True)
_HEADER_SP = wire.public_header_size(False)


class Packet:
    """An outgoing or incoming QUIC packet."""

    __slots__ = (
        "path_id",
        "packet_number",
        "frames",
        "connection_id",
        "multipath",
        "wire_size",
        "is_ack_eliciting",
    )

    path_id: int
    packet_number: int
    frames: Tuple[Frame, ...]
    connection_id: int
    multipath: bool
    #: Total bytes on the wire (header + frames), sans UDP/IP.
    wire_size: int
    #: True when the peer must acknowledge this packet.  Packets
    #: containing only ACK frames are not themselves acked, preventing
    #: infinite ACK ping-pong.
    is_ack_eliciting: bool

    def __init__(
        self,
        path_id: int,
        packet_number: int,
        frames: Tuple[Frame, ...],
        connection_id: int = 0,
        multipath: bool = False,
    ) -> None:
        self.path_id = path_id
        self.packet_number = packet_number
        self.frames = frames
        self.connection_id = connection_id
        self.multipath = multipath
        size = _HEADER_MP if multipath else _HEADER_SP
        eliciting = False
        for frame in frames:
            size += frame.wire_size()
            if frame.retransmittable:
                eliciting = True
        self.wire_size = size
        self.is_ack_eliciting = eliciting

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Packet:
            return NotImplemented
        return (
            self.path_id == other.path_id
            and self.packet_number == other.packet_number
            and self.frames == other.frames
            and self.connection_id == other.connection_id
            and self.multipath == other.multipath
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.path_id,
                self.packet_number,
                self.frames,
                self.connection_id,
                self.multipath,
            )
        )

    def __repr__(self) -> str:
        return (
            f"Packet(path_id={self.path_id!r}, "
            f"packet_number={self.packet_number!r}, frames={self.frames!r}, "
            f"connection_id={self.connection_id!r}, "
            f"multipath={self.multipath!r})"
        )

    def encode(self) -> bytes:
        """Serialize to bytes (see :mod:`repro.quic.wire`)."""
        return wire.encode_packet(self)

    @staticmethod
    def decode(buf: bytes) -> "Packet":
        """Parse bytes back into a packet."""
        return wire.decode_packet(buf)


#: Per-datagram overhead charged by the simulator: IPv4 (20) + UDP (8).
UDP_IP_OVERHEAD = 28
