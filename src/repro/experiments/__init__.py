"""Evaluation harness: scenario runner, metrics and figure generators.

One entry point per table/figure of the paper's evaluation (see
DESIGN.md's experiment index).  ``python -m repro.experiments.figures
--help`` lists the command-line interface.
"""

from repro.experiments.distributed import run_distributed_sweep, worker_loop
from repro.experiments.metrics import (
    cdf_points,
    experimental_aggregation_benefit,
    fraction_greater_than,
    median,
)
from repro.experiments.runner import BulkRunResult, run_bulk, run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO

__all__ = [
    "experimental_aggregation_benefit",
    "cdf_points",
    "fraction_greater_than",
    "median",
    "run_bulk",
    "run_distributed_sweep",
    "run_handover",
    "worker_loop",
    "BulkRunResult",
    "HANDOVER_SCENARIO",
]
