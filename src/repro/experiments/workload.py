"""Open-loop traffic generation at scale.

Closed-loop experiments (one bulk transfer per protocol, §4.1's WSP
sweeps) answer "how fast is one connection"; a deployment question the
paper's large-scale curiosity points at — §4.2 studies *thousands* of
real network scenarios — is how a protocol behaves when flows keep
*arriving* regardless of whether earlier ones finished.  This module
provides that open-loop harness:

* **arrival processes** — deterministic, Poisson and heavy-tailed
  (lognormal) interarrivals, all seeded and hash-seed independent;
* **flow-size distributions** — fixed, uniform and Pareto
  ("mice and elephants": most flows tiny, most *bytes* in a few
  elephants);
* a **traffic matrix** — N client/server pairs recycled through
  :class:`repro.netsim.bottleneck.ManyFlowTopology`, every flow
  crossing ONE shared bottleneck;
* :func:`run_workload` — the driver: launches one connection per
  arrival (packet-level through a
  :class:`repro.apps.shortflow.HostPairPool`, or fluid via
  :func:`repro.netsim.fluid.background_transfer` dispatched on
  ``QuicConfig.fidelity``), and folds per-flow completion times into
  bounded-memory aggregates — a
  :class:`repro.experiments.metrics.QuantileSketch` for tail FCT and
  streaming accumulators for Jain's fairness index — so a
  thousand-flow run costs O(pool + sketch) memory, not O(flows).

Seeding contract: every random stream (arrivals, sizes, topology) is
derived from ``WorkloadSpec.seed`` via :func:`derive_seed` (SHA-256,
so identical under any ``PYTHONHASHSEED``).  Equal specs produce
bit-identical flow plans; different seeds produce disjoint ones.

The sweep engine embeds a :class:`WorkloadSpec` into
:class:`repro.experiments.parallel.SweepCell`, making workload cells
cacheable and crash-isolated like every other cell.  See
``docs/workloads.md`` for the catalogue and guidance.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import random
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.apps.shortflow import HostPairPool, ShortFlow, make_endpoints
from repro.experiments.metrics import QuantileSketch
from repro.netsim.bottleneck import ManyFlowTopology
from repro.netsim.engine import Simulator
from repro.netsim.fluid import FluidNetwork, background_transfer
from repro.netsim.topology import PathConfig
from repro.obs.events import CAT_WORKLOAD, Tracer
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

ARRIVALS = ("deterministic", "poisson", "lognormal")
SIZE_DISTS = ("fixed", "uniform", "pareto")
FIDELITIES = ("packet", "fluid")

#: Default bottleneck of the workload scenarios: 20 Mbps, 30 ms RTT,
#: 50 ms of buffer — small enough that an open-loop storm actually
#: contends, large enough that a lone short flow is access-limited.
DEFAULT_BOTTLENECK = PathConfig(
    capacity_mbps=20.0, rtt_ms=30.0, queuing_delay_ms=50.0
)

#: Cap on the per-flow record list kept in ``details`` for plotting;
#: aggregates (sketch, Jain, totals) always cover every flow.
MAX_FLOW_RECORDS = 1024

#: Queue-occupancy sampling period (simulated seconds).  Samples feed
#: a bounded sketch and running mean/max, so a long run costs events,
#: not memory.
QUEUE_SAMPLE_INTERVAL = 0.01


def derive_seed(base: int, stream: str) -> int:
    """A 64-bit seed for one named random stream of a workload.

    SHA-256 based, NOT ``hash()`` based: Python string hashing is
    randomized per process (PYTHONHASHSEED), and workload plans must be
    bit-identical across runs, hosts and hash seeds for sweep-cache
    addressing to work.
    """
    digest = hashlib.sha256(f"{base}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def interarrival_times(
    arrival: str, rate: float, n: int, seed: int, cv: float = 4.0
) -> List[float]:
    """``n`` interarrival gaps (seconds) with mean ``1/rate``.

    * ``deterministic`` — a fixed ``1/rate`` spacing (CV 0);
    * ``poisson`` — exponential gaps (CV 1), the classic open-loop
      arrival model;
    * ``lognormal`` — heavy-tailed, *bursty* gaps with coefficient of
      variation ``cv`` (> 1 means flash crowds separated by lulls).
    """
    if arrival not in ARRIVALS:
        raise ValueError(f"unknown arrival process {arrival!r}; pick from {ARRIVALS}")
    if rate <= 0.0:
        raise ValueError("arrival rate must be positive")
    if n < 0:
        raise ValueError("n must be non-negative")
    mean = 1.0 / rate
    if arrival == "deterministic":
        return [mean] * n
    rng = random.Random(derive_seed(seed, f"arrival:{arrival}"))
    if arrival == "poisson":
        return [rng.expovariate(rate) for _ in range(n)]
    # Lognormal with E[X] = mean and CV = cv:
    #   sigma^2 = ln(1 + cv^2),  mu = ln(mean) - sigma^2 / 2.
    if cv <= 0.0:
        raise ValueError("lognormal cv must be positive")
    sigma_sq = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma_sq / 2.0
    sigma = math.sqrt(sigma_sq)
    return [rng.lognormvariate(mu, sigma) for _ in range(n)]


def flow_sizes(
    size_dist: str,
    mean: int,
    n: int,
    seed: int,
    spread: float = 0.5,
    pareto_alpha: float = 1.3,
    cap_factor: float = 100.0,
) -> List[int]:
    """``n`` flow sizes (bytes) with mean ``~mean``.

    * ``fixed`` — every flow exactly ``mean`` bytes;
    * ``uniform`` — uniform on ``[mean*(1-spread), mean*(1+spread)]``;
    * ``pareto`` — the mice-and-elephants shape: scale chosen so the
      *uncapped* mean is ``mean`` (``x_m = mean * (alpha-1)/alpha``),
      samples capped at ``mean * cap_factor`` so one astronomically
      unlucky elephant cannot dominate a run's duration.
    """
    if size_dist not in SIZE_DISTS:
        raise ValueError(f"unknown size distribution {size_dist!r}; pick from {SIZE_DISTS}")
    if mean <= 0:
        raise ValueError("mean flow size must be positive")
    if n < 0:
        raise ValueError("n must be non-negative")
    if size_dist == "fixed":
        return [mean] * n
    rng = random.Random(derive_seed(seed, f"size:{size_dist}"))
    if size_dist == "uniform":
        if not 0.0 <= spread < 1.0:
            raise ValueError("uniform spread must be in [0, 1)")
        lo = mean * (1.0 - spread)
        hi = mean * (1.0 + spread)
        return [max(1, int(rng.uniform(lo, hi))) for _ in range(n)]
    if pareto_alpha <= 1.0:
        raise ValueError("pareto alpha must exceed 1 (finite mean)")
    x_m = mean * (pareto_alpha - 1.0) / pareto_alpha
    cap = mean * cap_factor
    out = []
    for _ in range(n):
        u = rng.random()
        # Inverse-CDF sample; 1-u is uniform too but guards u == 0.
        value = x_m / (1.0 - u) ** (1.0 / pareto_alpha)
        out.append(max(1, int(min(value, cap))))
    return out


# ----------------------------------------------------------------------
# Specification
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """Everything defining one open-loop workload (protocol-agnostic).

    Frozen and scalar-only so it can ride inside a frozen
    :class:`repro.experiments.parallel.SweepCell` and hash into its
    cache key.  The protocol and bottleneck come from the cell (or the
    :func:`run_workload` caller), not the spec: one workload is meant
    to be replayed identically against every protocol under test.
    """

    n_flows: int
    arrival: str = "poisson"
    #: Mean arrival rate (flows per second of simulated time).
    arrival_rate: float = 50.0
    #: Coefficient of variation for ``lognormal`` arrivals.
    arrival_cv: float = 4.0
    size_dist: str = "pareto"
    mean_size: int = 100_000
    #: Half-width fraction for ``uniform`` sizes.
    size_spread: float = 0.5
    pareto_alpha: float = 1.3
    size_cap_factor: float = 100.0
    #: ``"packet"``: every flow is a real connection through the pair
    #: pool (arrivals beyond the pool FIFO-queue, their wait counting
    #: into FCT).  ``"fluid"``: flows are analytic reservations except
    #: every ``measure_every``-th, which runs packet-level when a pair
    #: is free — hybrid fidelity at workload scale.
    fidelity: str = "fluid"
    #: Packet-level pool size (bounds packet concurrency and memory).
    n_pairs: int = 16
    #: In fluid fidelity, run every k-th arrival packet-level
    #: (0 = none: pure fluid).
    measure_every: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_flows <= 0:
            raise ValueError("n_flows must be positive")
        if self.fidelity not in FIDELITIES:
            raise ValueError(f"unknown fidelity {self.fidelity!r}; pick from {FIDELITIES}")
        if self.n_pairs <= 0:
            raise ValueError("n_pairs must be positive")
        if self.measure_every < 0:
            raise ValueError("measure_every must be non-negative")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(f"unknown size distribution {self.size_dist!r}")

    def plan(self) -> List[Tuple[float, int]]:
        """The deterministic flow plan: ``[(arrival_time, size), ...]``."""
        gaps = interarrival_times(
            self.arrival, self.arrival_rate, self.n_flows, self.seed,
            cv=self.arrival_cv,
        )
        sizes = flow_sizes(
            self.size_dist, self.mean_size, self.n_flows, self.seed,
            spread=self.size_spread, pareto_alpha=self.pareto_alpha,
            cap_factor=self.size_cap_factor,
        )
        plan = []
        t = 0.0
        for gap, size in zip(gaps, sizes):
            t += gap
            plan.append((t, size))
        return plan


@dataclass
class WorkloadRunResult:
    """Aggregated outcome of one open-loop run."""

    protocol: str
    fidelity: str
    n_flows: int
    completed_flows: int
    packet_flows: int
    fluid_flows: int
    #: Most flows simultaneously in service at any instant.
    peak_concurrent: int
    #: Simulated seconds from first arrival to last completion.
    duration: float
    mean_fct: float
    p50_fct: float
    p99_fct: float
    p999_fct: float
    #: Jain's index over per-flow goodput (size*8/FCT).
    jain_goodput: float
    total_bytes: int
    queue_mean_bytes: float
    queue_max_bytes: int
    queue_p99_bytes: float
    #: Stored sketch size — the bounded-memory evidence.
    sketch_entries: int
    completed: bool
    #: ``sim_events`` plus a capped per-flow sample for plotting.
    details: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

class _WorkloadState:
    """Mutable bookkeeping of one :func:`run_workload` execution."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.completed = 0
        self.packet_flows = 0
        self.fluid_flows = 0
        self.concurrent = 0
        self.peak_concurrent = 0
        self.arrived = 0
        self.total_bytes = 0
        self.fct_sketch = QuantileSketch()
        self.fct_sum = 0.0
        # Streaming Jain accumulators over per-flow goodput.
        self.goodput_sum = 0.0
        self.goodput_sq_sum = 0.0
        self.first_arrival: Optional[float] = None
        self.last_completion = 0.0
        self.records: List[Dict[str, Any]] = []
        #: (arrival_time, size, flow_index) FIFO awaiting a free pair
        #: (packet fidelity only).
        self.backlog: Deque[Tuple[float, int, int]] = deque()

    def flow_started(self, mode: str) -> None:
        if mode == "packet":
            self.packet_flows += 1
        else:
            self.fluid_flows += 1
        self.concurrent += 1
        if self.concurrent > self.peak_concurrent:
            self.peak_concurrent = self.concurrent

    def flow_completed(
        self, index: int, arrival: float, size: int, fct: float, mode: str
    ) -> None:
        self.concurrent -= 1
        self.completed += 1
        self.total_bytes += size
        self.fct_sketch.insert(fct)
        self.fct_sum += fct
        goodput = size * 8.0 / fct if fct > 0.0 else 0.0
        self.goodput_sum += goodput
        self.goodput_sq_sum += goodput * goodput
        if self.last_completion < arrival + fct:
            self.last_completion = arrival + fct
        if len(self.records) < MAX_FLOW_RECORDS:
            self.records.append(
                {"flow": index, "arrival": arrival, "size": size,
                 "fct": fct, "mode": mode}
            )


def run_workload(
    spec: WorkloadSpec,
    protocol: str = "quic",
    bottleneck: PathConfig = DEFAULT_BOTTLENECK,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    tracer: Optional[Tracer] = None,
    timeout: float = 600.0,
) -> WorkloadRunResult:
    """Run one open-loop workload against one protocol and bottleneck.

    Every arrival becomes a flow; FCT is measured from *arrival* (so a
    packet flow queueing for a free pair, or a fluid flow's modelled
    handshake, counts against it — the open-loop convention).  The
    fluid FCT mirrors :func:`repro.netsim.fluid.simulate_fluid_transfer`:
    service starts 1.5 RTT after arrival (handshake + request) and the
    last byte needs another half RTT to propagate.

    Returns aggregates only — tail quantiles come from a bounded
    sketch, fairness from streaming sums — so memory is O(pool +
    sketch) regardless of ``spec.n_flows``.
    """
    if protocol not in ("tcp", "mptcp", "quic", "mpquic"):
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator()
    interfaces = 2 if protocol in ("mpquic", "mptcp") else 1
    topo = ManyFlowTopology(
        sim, bottleneck, n_pairs=spec.n_pairs,
        interfaces_per_pair=interfaces,
        seed=derive_seed(spec.seed, "topology") % 2**32,
    )
    state = _WorkloadState(spec)
    plan = spec.plan()
    state.first_arrival = plan[0][0]

    rtt = bottleneck.rtt_ms / 1e3 + 2e-3  # + access links, as hybrid does
    pool = HostPairPool(
        sim, [topo.pair(i) for i in range(spec.n_pairs)],
        drain_delay=3.0 * rtt,
    )

    network: Optional[FluidNetwork] = None
    fluid_config: Optional[QuicConfig] = None
    if spec.fidelity == "fluid":
        network = FluidNetwork(sim, tracer)
        fluid_config = replace(quic_config or QuicConfig(), fidelity="fluid")

    # Packet connections crossing the data-direction bottleneck (the
    # servers' responses traverse ``bottleneck_down``); the fluid side
    # yields F/(F+P) of the link to them.
    packet_active = [0]

    def set_packet_share(delta: int) -> None:
        packet_active[0] += delta
        if network is not None:
            network.set_packet_load(topo.bottleneck_down, packet_active[0])

    def emit(name: str, **data: Any) -> None:
        if tracer is not None:
            tracer.emit(sim.now, "workload", CAT_WORKLOAD, name, -1, **data)

    def launch_packet(arrival: float, size: int, index: int, pair: int) -> None:
        client_host, server_host = pool.pairs[pair]
        client, server = make_endpoints(
            protocol, sim, client_host, server_host,
            quic_config=quic_config, tcp_config=tcp_config,
            trace=tracer, connection_id=index + 1,
        )

        def on_done(flow: ShortFlow) -> None:
            flow.close()
            pool.release(pair)
            set_packet_share(-1)
            fct = sim.now - arrival
            state.flow_completed(index, arrival, size, fct, "packet")
            emit("flow_completed", flow=index, mode="packet", fct=fct,
                 size=size)

        short = ShortFlow(sim, client, server, size, on_complete=on_done)
        state.flow_started("packet")
        set_packet_share(+1)
        emit("flow_started", flow=index, mode="packet", size=size,
             waited=sim.now - arrival)
        short.start()

    def launch_fluid(arrival: float, size: int, index: int) -> None:
        assert network is not None and fluid_config is not None

        def on_done(flow: Any) -> None:
            fct = (flow.completion_time + 0.5 * rtt) - arrival
            state.flow_completed(index, arrival, size, fct, "fluid")
            emit("flow_completed", flow=index, mode="fluid", fct=fct,
                 size=size)

        state.flow_started("fluid")
        emit("flow_started", flow=index, mode="fluid", size=size, waited=0.0)
        flow = background_transfer(
            network, f"wl-{index}", [topo.bottleneck_down], size, rtt,
            config=fluid_config, start_in=1.5 * rtt,
        )
        flow.on_complete = on_done

    def drain_backlog() -> None:
        while state.backlog and pool.available:
            arrival, size, index = state.backlog.popleft()
            pair = pool.acquire()
            assert pair is not None
            launch_packet(arrival, size, index, pair)

    pool.on_available = drain_backlog

    def arrive(arrival: float, size: int, index: int) -> None:
        state.arrived += 1
        emit("flow_arrival", flow=index, size=size)
        if spec.fidelity == "packet":
            pair = pool.acquire()
            if pair is None:
                state.backlog.append((arrival, size, index))
            else:
                launch_packet(arrival, size, index, pair)
            return
        # Hybrid: every measure_every-th arrival runs packet-level when
        # a pair is free; everything else (and overflow) goes fluid.
        want_packet = (
            spec.measure_every > 0 and index % spec.measure_every == 0
        )
        if want_packet:
            pair = pool.acquire()
            if pair is not None:
                launch_packet(arrival, size, index, pair)
                return
        launch_fluid(arrival, size, index)

    for index, (arrival_time, size) in enumerate(plan):
        sim.schedule(arrival_time, arrive, arrival_time, size, index)

    # Bounded-memory queue-occupancy telemetry at the bottleneck.
    queue_sketch = QuantileSketch(eps=0.005)
    queue_stats = {"sum": 0.0, "count": 0, "max": 0}

    def sample_queue() -> None:
        if state.completed >= spec.n_flows:
            return
        occupancy = topo.bottleneck_down.queued_bytes
        queue_sketch.insert(float(occupancy))
        queue_stats["sum"] += occupancy
        queue_stats["count"] += 1
        if occupancy > queue_stats["max"]:
            queue_stats["max"] = occupancy
        sim.schedule(QUEUE_SAMPLE_INTERVAL, sample_queue)

    sim.schedule(state.first_arrival, sample_queue)

    sim.run_until(lambda: state.completed >= spec.n_flows, timeout=timeout)

    finished = state.completed >= spec.n_flows
    n_done = state.completed
    duration = (
        state.last_completion - state.first_arrival if n_done else 0.0
    )
    n_q = queue_stats["count"]
    jain = 0.0
    if n_done and state.goodput_sq_sum > 0.0:
        jain = (state.goodput_sum * state.goodput_sum) / (
            n_done * state.goodput_sq_sum
        )
    elif n_done:
        jain = 1.0
    result = WorkloadRunResult(
        protocol=protocol,
        fidelity=spec.fidelity,
        n_flows=spec.n_flows,
        completed_flows=n_done,
        packet_flows=state.packet_flows,
        fluid_flows=state.fluid_flows,
        peak_concurrent=state.peak_concurrent,
        duration=duration,
        mean_fct=state.fct_sum / n_done if n_done else 0.0,
        p50_fct=state.fct_sketch.p50() if n_done else 0.0,
        p99_fct=state.fct_sketch.p99() if n_done else 0.0,
        p999_fct=state.fct_sketch.p999() if n_done else 0.0,
        jain_goodput=jain,
        total_bytes=state.total_bytes,
        queue_mean_bytes=queue_stats["sum"] / n_q if n_q else 0.0,
        queue_max_bytes=queue_stats["max"],
        queue_p99_bytes=queue_sketch.p99() if n_q else 0.0,
        sketch_entries=len(state.fct_sketch),
        completed=finished,
        details={
            "sim_events": sim.events_processed,
            "flows": state.records,
            "backlog_left": len(state.backlog),
            "spec": asdict(spec),
        },
    )
    emit("run_summary", completed=n_done, peak_concurrent=state.peak_concurrent)
    return result


def result_summary(result: WorkloadRunResult) -> Dict[str, Any]:
    """JSON-friendly summary (the CLI artifact / CI gate input)."""
    data = asdict(result)
    data["details"] = {
        k: v for k, v in result.details.items() if k != "flows"
    }
    return data


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.experiments.workload --preset storm``."""
    from repro.experiments.scenarios import WORKLOAD_PRESETS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=sorted(WORKLOAD_PRESETS), default="storm",
        help="workload scenario to run (default: storm, the >=500 "
        "concurrent-flows headline)",
    )
    parser.add_argument("--protocol", default="quic",
                        choices=("tcp", "mptcp", "quic", "mpquic"))
    parser.add_argument("--output", default=None,
                        help="write the JSON summary here")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    preset = WORKLOAD_PRESETS[args.preset]
    result = run_workload(
        preset.spec, protocol=args.protocol, bottleneck=preset.bottleneck,
        timeout=args.timeout,
    )
    print(
        f"{args.preset}/{args.protocol} [{result.fidelity}]: "
        f"{result.completed_flows}/{result.n_flows} flows, "
        f"peak {result.peak_concurrent} concurrent, "
        f"duration {result.duration:.2f}s"
    )
    print(
        f"  FCT p50/p99/p999: {result.p50_fct * 1e3:.1f} / "
        f"{result.p99_fct * 1e3:.1f} / {result.p999_fct * 1e3:.1f} ms, "
        f"mean {result.mean_fct * 1e3:.1f} ms"
    )
    print(
        f"  Jain(goodput) {result.jain_goodput:.4f}, "
        f"queue mean/p99/max {result.queue_mean_bytes / 1e3:.1f} / "
        f"{result.queue_p99_bytes / 1e3:.1f} / "
        f"{result.queue_max_bytes / 1e3:.1f} KB, "
        f"sketch {result.sketch_entries} entries, "
        f"{result.details['sim_events']} events"
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result_summary(result), fh, indent=2, sort_keys=True)
        print(f"  summary -> {args.output}")
    return 0 if result.completed else 1


if __name__ == "__main__":
    raise SystemExit(main())
