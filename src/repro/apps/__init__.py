"""Benchmark applications over a protocol-agnostic transport API.

The paper evaluates three workloads: a 20 MB HTTPS GET (§4.1), a 256 KB
GET (§4.2) and a request/response exchange for the handover study
(§4.3).  These applications run unchanged over all four protocol stacks
through the small adapter in :mod:`repro.apps.transport`.
"""

from repro.apps.transport import (
    TransportEndpoint,
    make_client_server,
    PROTOCOLS,
)
from repro.apps.bulk import BulkTransferApp
from repro.apps.reqres import RequestResponseApp
from repro.apps.streaming import StreamingApp

__all__ = [
    "TransportEndpoint",
    "make_client_server",
    "PROTOCOLS",
    "BulkTransferApp",
    "RequestResponseApp",
    "StreamingApp",
]
