#!/usr/bin/env python3
"""Traced run: record qlog-style telemetry for an MPQUIC download.

Attaches a `repro.obs.Tracer` to the quickstart scenario (two disjoint
paths, Fig. 2), then prints the per-path summary report, shows a few
events and series points, and exports the trace in every supported
format.  Re-render the report later with:

    python -m repro.obs report results/traced_run.jsonl

Run:  python examples/traced_run.py
"""

from pathlib import Path

from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.obs import (
    CAT_PATH,
    Tracer,
    format_report,
    summarize,
    write_csv_series,
    write_jsonl,
    write_qlog_json,
)

OUT_DIR = Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    sim = Simulator()
    topology = TwoPathTopology(
        sim,
        [
            PathConfig(capacity_mbps=20.0, rtt_ms=30.0, queuing_delay_ms=60.0),
            PathConfig(capacity_mbps=8.0, rtt_ms=70.0, queuing_delay_ms=120.0),
        ],
        seed=1,
    )
    tracer = Tracer()
    client, server = make_client_server("mpquic", sim, topology, trace=tracer)
    app = BulkTransferApp(sim, client, server, file_size=2_000_000)
    if not app.run():
        raise SystemExit("transfer did not complete")

    print(f"Downloaded {app.bytes_received} bytes in {app.transfer_time:.3f} s\n")
    print(format_report(summarize(tracer)))

    print("\nfirst path-lifecycle events:")
    for ev in tracer.events_of(category=CAT_PATH)[:6]:
        print(f"  {ev.time:9.4f}s  {ev.host:<7}  path {ev.path_id}: {ev.name}")

    srtt = tracer.series_of("server", 1, "srtt")
    if srtt:
        print(f"\nserver path 1 srtt: {len(srtt)} samples, "
              f"first {srtt[0][1] * 1e3:.1f} ms, last {srtt[-1][1] * 1e3:.1f} ms")

    OUT_DIR.mkdir(exist_ok=True)
    write_qlog_json(tracer, OUT_DIR / "traced_run.qlog.json", title="traced_run")
    write_jsonl(tracer, OUT_DIR / "traced_run.jsonl")
    write_csv_series(tracer, OUT_DIR / "traced_run_series.csv")
    print(f"\nwrote traced_run.qlog.json / .jsonl / _series.csv to {OUT_DIR}/")


if __name__ == "__main__":
    main()
