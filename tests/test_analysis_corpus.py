"""Acceptance harness for the whole-program analyzer.

The seeded corpus under ``tests/analysis_corpus/`` pins the
interprocedural rules bidirectionally: ``defects/`` carries
``# corpus: expect[rule-id]`` markers on the exact lines findings must
land on (exact-match: a missed marker is a false negative, an extra
finding is a false positive), and ``clean/`` — the near-miss mirror —
must stay at zero.  The real tree must also analyze clean and fast
(< 5 s, the CI lint budget).
"""

import re
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from repro.analysis import analyze_project

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "analysis_corpus"

_EXPECT_RE = re.compile(r"#\s*corpus:\s*expect\[([^\]]+)\]")

#: The four interprocedural rule families under test.
FAMILIES = ("seed-taint", "event-order", "sweep-purity", "obs-schema")


def expected_markers(root: Path):
    """{(rel_path, line, rule-id)} parsed from corpus markers."""
    out = set()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _EXPECT_RE.search(text)
            if match:
                for rule_id in match.group(1).split(","):
                    out.add((rel, lineno, rule_id.strip()))
    return out


def reported(root: Path):
    findings, _graph = analyze_project(root)
    out = set()
    for f in findings:
        rel = Path(f.path).resolve().relative_to(root.resolve()).as_posix()
        out.add((rel, f.line, f.rule))
    return out


class TestDefectCorpus:
    def test_rules_fire_exactly_on_marked_lines(self):
        expected = expected_markers(CORPUS / "defects")
        got = reported(CORPUS / "defects")
        assert got == expected, (
            f"false negatives: {sorted(expected - got)}\n"
            f"false positives: {sorted(got - expected)}"
        )

    def test_every_family_is_exercised(self):
        rules = {rule for (_p, _l, rule) in expected_markers(CORPUS / "defects")}
        assert rules == set(FAMILIES)

    def test_each_family_has_multiple_scenarios(self):
        expected = expected_markers(CORPUS / "defects")
        for family in ("seed-taint", "event-order", "sweep-purity"):
            sites = [e for e in expected if e[2] == family]
            assert len(sites) >= 3, f"{family}: only {sites}"


class TestCleanCorpus:
    def test_near_miss_mirror_reports_zero(self):
        assert reported(CORPUS / "clean") == set()


class TestRealTree:
    def test_src_repro_is_clean_and_fast(self):
        started = time.monotonic()  # repro: allow[wall-clock,perf-timing] asserting the CI wall-time budget
        findings, graph = analyze_project(REPO_ROOT / "src" / "repro")
        elapsed = time.monotonic() - started  # repro: allow[wall-clock,perf-timing] asserting the CI wall-time budget
        assert findings == []
        assert elapsed < 5.0, f"whole-program pass took {elapsed:.2f}s"
        # The index actually saw the project (not a silently-empty walk).
        assert len(graph.modules) > 50
        assert "repro.experiments.parallel.run_cell" in graph.run_cell_entries()

    def test_emit_registry_covers_the_tree(self):
        _findings, graph = analyze_project(REPO_ROOT / "src" / "repro")
        sites = graph.emit_sites()
        assert len(sites) >= 10
        # Every resolvable category at a real emit site is registered.
        categories = {s.category for s in sites if s.category is not None}
        assert categories  # the resolver resolves real sites
        from repro.obs import events

        assert categories <= set(events.CATEGORIES)


class TestSuppression:
    def _tree(self, tmp_path: Path, marker: str) -> Path:
        root = tmp_path / "pkg"
        root.mkdir(parents=True)
        (root / "__init__.py").write_text("", encoding="utf-8")
        (root / "rng.py").write_text(
            textwrap.dedent(
                f"""
                import random
                import time


                def helper():
                    return time.time()


                def make():
                    return random.Random(helper()){marker}
                """
            ),
            encoding="utf-8",
        )
        return root

    def test_allow_marker_silences_project_rules(self, tmp_path):
        noisy = self._tree(tmp_path / "a", "")
        findings, _g = analyze_project(noisy)
        assert [f.rule for f in findings] == ["seed-taint"]

        waived = self._tree(
            tmp_path / "b", "  # repro: allow[seed-taint] fixture"
        )
        findings, _g = analyze_project(waived)
        assert findings == []

    def test_allow_star_silences_project_rules(self, tmp_path):
        waived = self._tree(tmp_path / "c", "  # repro: allow[*] fixture")
        findings, _g = analyze_project(waived)
        assert findings == []


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_project_pass_runs_by_default(self):
        proc = self._run(str(CORPUS / "defects"), "--format", "json")
        assert proc.returncode == 1
        assert "sweep-purity" in proc.stdout
        assert "seed-taint" in proc.stdout

    def test_no_project_skips_interprocedural_rules(self):
        proc = self._run(
            str(CORPUS / "defects"),
            "--select",
            ",".join(FAMILIES),
            "--no-project",
        )
        assert proc.returncode == 0

    def test_budget_violation_exits_3(self):
        proc = self._run(
            str(CORPUS / "clean"), "--budget-seconds", "0.000001"
        )
        assert proc.returncode == 3
        assert "budget" in proc.stderr

    def test_sarif_output(self, tmp_path):
        out = tmp_path / "report.sarif"
        proc = self._run(
            str(CORPUS / "defects"), "--format", "sarif", "--output", str(out)
        )
        assert proc.returncode == 1
        import json

        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(FAMILIES) <= rule_ids
        results = run["results"]
        assert results
        for result in results:
            location = result["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] >= 1
            assert location["artifactLocation"]["uri"]
            # ruleIndex points back into the driver rule table.
            index = result["ruleIndex"]
            assert (
                run["tool"]["driver"]["rules"][index]["id"]
                == result["ruleId"]
            )

    def test_emit_registry_dump(self):
        proc = self._run(str(REPO_ROOT / "src" / "repro"), "--emit-registry")
        assert proc.returncode == 0
        import json

        document = json.loads(proc.stdout)
        assert len(document["emit_sites"]) >= 10
        assert all("category" in s and "line" in s for s in document["emit_sites"])
