"""Integration tests: traced experiment runs, the §4.3 handover
timeline, extended connection statistics, and the run_bulk median fix."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import run_bulk, run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO
from repro.netsim.topology import PathConfig
from repro.obs import Tracer, summarize, to_qlog
from tests.test_obs_events import TWO_PATHS, traced_transfer


class TestTracedBulkRun:
    """The acceptance-criteria run: two-path MPQUIC bulk download with
    an exported qlog trace carrying per-path series + histogram."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_bulk(
            "mpquic",
            [PathConfig(10, 30, 60), PathConfig(10, 80, 120)],
            400_000,
            collect_trace=True,
        )

    def test_trace_returned_alongside_result(self, result):
        assert result.completed
        assert isinstance(result.trace, Tracer)
        assert result.rep_completed == [True]

    def test_per_path_cwnd_and_srtt_series(self, result):
        trace = result.trace
        for path_id in (0, 1):
            cwnd = trace.series_of("server", path_id, "cwnd")
            srtt = trace.series_of("server", path_id, "srtt")
            assert len(cwnd) > 10, path_id
            assert len(srtt) > 10, path_id
            # cwnd grows from the initial window during the transfer.
            assert max(v for _, v in cwnd) > cwnd[0][1]
            # The srtt series reflects the paths' distinct base RTTs.
        srtt0 = [v for _, v in trace.series_of("server", 0, "srtt")]
        srtt1 = [v for _, v in trace.series_of("server", 1, "srtt")]
        assert min(srtt1) > min(srtt0)

    def test_scheduler_histogram_favours_fast_path(self, result):
        decisions = result.trace.scheduler_decisions
        fast = decisions[("server", 0)]
        slow = decisions[("server", 1)]
        assert fast > slow > 0

    def test_qlog_export_of_run(self, result):
        doc = to_qlog(result.trace)
        server = next(
            t for t in doc["traces"] if t["vantage_point"]["name"] == "server"
        )
        assert "path0:cwnd" in server["time_series"]
        assert "path1:cwnd" in server["time_series"]
        assert server["scheduler_decisions"]["0"] > 0

    def test_no_trace_by_default(self):
        res = run_bulk("mpquic", TWO_PATHS, 100_000)
        assert res.trace is None

    @pytest.mark.parametrize("protocol", ["tcp", "mptcp", "quic"])
    def test_other_protocols_feed_the_typed_stream(self, protocol):
        """Legacy TCP/MPTCP/QUIC call sites reach the Tracer unchanged."""
        res = run_bulk(protocol, TWO_PATHS, 100_000, collect_trace=True)
        assert res.completed
        sends = res.trace.events_of("transport", "packet_sent")
        assert len(sends) > 20
        summary = summarize(res.trace)
        assert any(ps.packets_sent for ps in summary.paths.values())


class TestHandoverTimeline:
    """Fig. 11: the path is marked potentially failed *before* the
    traffic shifts onto the surviving path."""

    @pytest.fixture(scope="class")
    def trace(self):
        tr = Tracer()
        run_handover(HANDOVER_SCENARIO, trace=tr)
        return tr

    def test_potentially_failed_emitted_after_failure(self, trace):
        pf = trace.events_of("path", "potentially_failed")
        assert pf
        assert all(ev.path_id == 0 for ev in pf)
        assert min(ev.time for ev in pf) >= HANDOVER_SCENARIO.failure_time
        # Both detection mechanisms appear: the local RTO and the
        # peer's PATHS-frame signal (paper §4.3).
        sources = {ev.data.get("source") for ev in pf}
        assert {"rto", "peer"} <= sources

    def test_traffic_shifts_after_failure_detection(self, trace):
        t_pf = min(
            ev.time for ev in trace.events_of("path", "potentially_failed")
        )
        # Before the failure, path 0 (lower RTT) carries the traffic.
        pre0 = trace.events_of(
            "transport", "packet_sent", "client", 0,
            t_max=HANDOVER_SCENARIO.failure_time,
        )
        pre1 = trace.events_of(
            "transport", "packet_sent", "client", 1,
            t_max=HANDOVER_SCENARIO.failure_time,
        )
        assert len(pre0) > len(pre1)
        # After detection, path 1 takes over; path 0 only sees probes.
        post0 = trace.events_of(
            "transport", "packet_sent", "client", 0, t_min=t_pf
        )
        post1 = trace.events_of(
            "transport", "packet_sent", "client", 1, t_min=t_pf
        )
        assert len(post1) > 5 * max(len(post0), 1)

    def test_summary_timeline_orders_failure_after_validation(self, trace):
        timeline = summarize(trace).handover_timeline
        names = [name for _, _, path_id, name in timeline if path_id == 0]
        assert names.index("validated") < names.index("potentially_failed")


class TestExtendedConnectionStats:
    @pytest.fixture(scope="class")
    def lossy_run(self):
        return traced_transfer(
            [PathConfig(8, 30, 60, loss_percent=2.0),
             PathConfig(8, 30, 60, loss_percent=2.0)],
            size=400_000, seed=4,
        )

    def test_loss_and_retransmit_counters(self, lossy_run):
        _, client, server, _ = lossy_run
        stats = server.stats
        assert stats.packets_lost > 0
        assert stats.loss_events > 0
        assert stats.loss_events <= stats.packets_lost
        assert stats.frames_retransmitted > 0
        assert stats.stream_bytes_retransmitted > 0

    def test_duplicated_packet_counter(self, lossy_run):
        _, client, server, _ = lossy_run
        # Duplication onto the RTT-unknown second path right after the
        # handshake (paper §3).
        assert server.stats.packets_duplicated >= 1
        per_path = server.duplicated_packets_per_path()
        assert sum(per_path.values()) == server.stats.packets_duplicated

    def test_per_path_accessors(self, lossy_run):
        _, client, server, _ = lossy_run
        lost = server.packets_lost_per_path()
        retrans = server.retransmitted_bytes_per_path()
        assert set(lost) == set(server.paths)
        assert sum(lost.values()) >= server.stats.loss_events
        assert sum(retrans.values()) == sum(
            p.stream_bytes_retransmitted for p in server.paths.values()
        )
        stats = server.path_stats()
        for path_id, per_path in stats.items():
            assert per_path["retransmitted_bytes"] == retrans[path_id]


class TestMedianSkewFix:
    def _patch_runs(self, monkeypatch, outcomes):
        """Script _single_bulk outcomes: list of (ok, duration)."""
        it = iter(outcomes)

        def fake_single_bulk(*args, **kwargs):
            ok, duration = next(it)
            return ok, duration, 0  # (ok, duration, sim_events)

        monkeypatch.setattr(runner_mod, "_single_bulk", fake_single_bulk)

    def test_timeouts_excluded_from_median(self, monkeypatch):
        self._patch_runs(
            monkeypatch, [(True, 10.0), (False, 4000.0), (True, 12.0)]
        )
        res = runner_mod.run_bulk("mpquic", TWO_PATHS, 1000, repetitions=3)
        assert res.transfer_time == 11.0  # median of completed reps only
        assert res.completed is False  # one rep failed
        assert res.failed_repetitions == 1
        assert res.rep_completed == [True, False, True]
        assert res.rep_times == [10.0, 4000.0, 12.0]

    def test_all_failed_falls_back_to_timeout(self, monkeypatch):
        self._patch_runs(monkeypatch, [(False, 4000.0)] * 3)
        res = runner_mod.run_bulk("mpquic", TWO_PATHS, 1000, repetitions=3)
        assert res.transfer_time == 4000.0
        assert res.completed is False
        assert res.failed_repetitions == 3

    def test_all_completed_unchanged(self, monkeypatch):
        self._patch_runs(
            monkeypatch, [(True, 9.0), (True, 11.0), (True, 10.0)]
        )
        res = runner_mod.run_bulk("mpquic", TWO_PATHS, 1000, repetitions=3)
        assert res.transfer_time == 10.0
        assert res.completed is True
        assert res.failed_repetitions == 0
