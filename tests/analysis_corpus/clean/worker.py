"""A pure worker: ALL-CAPS declared registry, everything else local."""

REGISTRY = {"protocols": ("quic", "mpquic")}


def simulate(cell, protocols):
    log = []
    log.append(cell)
    return {"cell": cell, "protocols": protocols, "events": len(log)}


def run_cell(cell):
    table = dict(REGISTRY)
    return simulate(cell, table["protocols"])
