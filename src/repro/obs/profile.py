"""cProfile harness for the simulation hot paths.

Wraps the runner/sweep entry points in :mod:`cProfile`, prints a
hot-function report, and optionally writes

* a raw ``.prof`` dump (loadable with ``snakeviz`` or ``pstats``), and
* a collapsed-stack file (``caller;callee count`` lines) compatible
  with Brendan Gregg's ``flamegraph.pl`` and speedscope.  cProfile only
  records caller/callee *pairs*, so the collapsed stacks are two frames
  deep — enough to see which subsystem feeds each hot function, not a
  full call tree (use ``--output`` + snakeviz for that).

Usage::

    PYTHONPATH=src python -m repro.obs.profile handover
    PYTHONPATH=src python -m repro.obs.profile bulk-large \
        --collapsed profile.collapsed --output profile.prof

``--list`` prints the named scenarios.  Scenarios run with metrics off
(the default) so the profile reflects the production hot path; pass
``--metrics`` to profile the instrumented variant and measure the
guard overhead in situ.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics

# -- named scenarios --------------------------------------------------------
#
# Each thunk performs one self-contained simulation workload.  Imports
# are lazy so ``repro.obs`` never drags the experiment layer in at
# import time.


def _scenario_handover() -> None:
    from repro.experiments.runner import run_handover

    run_handover()


def _scenario_bulk_small() -> None:
    from repro.experiments.runner import run_bulk
    from repro.experiments.scenarios import LTE_PATH, WIFI_PATH

    run_bulk("mpquic", [WIFI_PATH, LTE_PATH], file_size=200_000)


def _scenario_bulk_large() -> None:
    from repro.experiments.runner import run_bulk
    from repro.experiments.scenarios import LTE_PATH, WIFI_PATH

    run_bulk("mpquic", [WIFI_PATH, LTE_PATH], file_size=2_000_000)


def _scenario_sweep() -> None:
    from repro.expdesign.parameters import generate_scenarios
    from repro.experiments.parallel import execute_cells, plan_class_sweep

    scenarios = generate_scenarios("low-bdp-no-loss", 4, seed=42)
    cells = plan_class_sweep(scenarios, 500_000, False)
    execute_cells(cells, jobs=1, cache=None)


SCENARIOS: Dict[str, Callable[[], None]] = {
    "handover": _scenario_handover,
    "bulk-small": _scenario_bulk_small,
    "bulk-large": _scenario_bulk_large,
    "sweep": _scenario_sweep,
}


# -- profiling core ---------------------------------------------------------


def profile_callable(
    fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> pstats.Stats:
    """Run ``fn`` under cProfile and return its :class:`pstats.Stats`."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn(*args, **kwargs)
    finally:
        profiler.disable()
    return pstats.Stats(profiler)


def hot_report(
    stats: pstats.Stats, limit: int = 25, sort: str = "cumulative"
) -> str:
    """Render the top-``limit`` functions as a plain-text table."""
    buf = io.StringIO()
    stats.stream = buf  # type: ignore[attr-defined]
    stats.sort_stats(sort).print_stats(limit)
    return buf.getvalue()


def _frame_label(func: Tuple[str, int, str]) -> str:
    """``file:line(name)`` label with path noise stripped."""
    filename, lineno, name = func
    if filename == "~":  # builtins
        return name
    short = filename
    for marker in ("/site-packages/", "/src/"):
        idx = short.rfind(marker)
        if idx >= 0:
            short = short[idx + len(marker):]
            break
    else:
        short = short.rsplit("/", 1)[-1]
    # Semicolons separate frames in the collapsed format.
    return f"{short}:{lineno}({name})".replace(";", ",")


def collapsed_stacks(stats: pstats.Stats) -> List[str]:
    """Collapsed-stack lines (``caller;callee count``) from cProfile data.

    The sample value is the callee's *total* time attributed to that
    caller pair, in microseconds, so flame widths approximate where
    wall time went.  Root functions (no recorded caller) appear as
    single-frame lines.
    """
    lines: List[str] = []
    for func, (cc, nc, tt, ct, callers) in sorted(stats.stats.items()):
        label = _frame_label(func)
        if not callers:
            value = int(tt * 1e6)
            if value > 0:
                lines.append(f"{label} {value}")
            continue
        for caller, (c_cc, c_nc, c_tt, c_ct) in sorted(callers.items()):
            value = int(c_tt * 1e6)
            if value > 0:
                lines.append(f"{_frame_label(caller)};{label} {value}")
    return lines


def write_collapsed(stats: pstats.Stats, path: str) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_stacks(stats)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def _warm_imports() -> None:
    """Import the experiment layer so module loading stays out of profiles."""
    import repro.expdesign.parameters  # noqa: F401
    import repro.experiments.parallel  # noqa: F401
    import repro.experiments.runner  # noqa: F401
    import repro.experiments.scenarios  # noqa: F401


def profile_scenario(
    name: str,
    limit: int = 25,
    sort: str = "cumulative",
    metrics_on: bool = False,
) -> Tuple[pstats.Stats, str]:
    """Profile a named scenario; returns ``(stats, report_text)``."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    _warm_imports()
    if metrics_on:
        with _metrics.enabled():
            stats = profile_callable(fn)
    else:
        stats = profile_callable(fn)
    return stats, hot_report(stats, limit=limit, sort=sort)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "scenario", nargs="?", default="handover",
        help="named workload to profile (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument("--limit", type=int, default=25)
    parser.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "calls"),
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="also dump the raw profile (pstats/snakeviz format)",
    )
    parser.add_argument(
        "--collapsed", metavar="PATH",
        help="also write flamegraph-compatible collapsed stacks",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="profile with REPRO_METRICS instrumentation enabled",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    try:
        stats, report = profile_scenario(
            args.scenario, limit=args.limit, sort=args.sort,
            metrics_on=args.metrics,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report, end="")
    if args.output:
        stats.dump_stats(args.output)
        print(f"wrote {args.output}")
    if args.collapsed:
        count = write_collapsed(stats, args.collapsed)
        print(f"wrote {args.collapsed} ({count} collapsed stacks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
