"""Common congestion-controller interface.

Controllers work in bytes externally (``cwnd_bytes``) and are driven by
the transport's loss-recovery machinery through three events: ACK of new
data, a loss event (at most one per round trip), and a retransmission
timeout.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.obs import metrics as _metrics
from repro.util import sanitize as _san


class CcState(enum.Enum):
    """Phase of the congestion controller."""

    SLOW_START = "slow_start"
    CONGESTION_AVOIDANCE = "congestion_avoidance"
    RECOVERY = "recovery"


#: Default initial window, 10 segments as in modern Linux/QUIC stacks.
INITIAL_WINDOW_SEGMENTS = 10

#: Floor for the congestion window after loss, in segments.
MIN_WINDOW_SEGMENTS = 2


class CongestionController(ABC):
    """Abstract congestion controller operating in bytes."""

    def __init__(self, mss: int = 1400) -> None:
        self.mss = mss
        self.cwnd_bytes: float = INITIAL_WINDOW_SEGMENTS * mss
        self.ssthresh_bytes: float = float("inf")
        self.state = CcState.SLOW_START
        self._recovery_start_time = -1.0
        #: Optional telemetry hook ``fn(event_name, controller, now)``
        #: wired by the transport when a tracer is attached; one
        #: ``is None`` check when absent.
        self.telemetry: Optional[
            Callable[[str, "CongestionController", float], None]
        ] = None

    def _emit(self, event: str, now: float) -> None:
        if _metrics.METRICS:
            # Every _emit call marks a controller state transition
            # (loss-event entry, RTO collapse, recovery exit).
            _metrics.REGISTRY.inc("cc.state_transitions")
        if self.telemetry is not None:
            self.telemetry(event, self, now)

    # -- queries ---------------------------------------------------------

    def can_send(self, bytes_in_flight: int) -> bool:
        """True when the window has room for at least one more segment."""
        return bytes_in_flight + self.mss <= self.cwnd_bytes

    def available_window(self, bytes_in_flight: int) -> int:
        """Bytes of cwnd headroom (never negative)."""
        return max(0, int(self.cwnd_bytes) - bytes_in_flight)

    # -- events ----------------------------------------------------------

    @abstractmethod
    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        """New data was acknowledged."""

    def on_loss_event(self, now: float, sent_time: float) -> None:
        """A loss was detected for a packet sent at ``sent_time``.

        Loss events within one recovery period are coalesced, matching
        the once-per-window reduction of Reno-family controllers.
        """
        if sent_time <= self._recovery_start_time:
            return
        self._recovery_start_time = now
        self.state = CcState.RECOVERY
        self._reduce_on_loss(now)
        if _san.SANITIZE:
            self._check_window_floor("after loss reduction")
        self._emit("state_changed", now)

    def on_rto(self, now: float) -> None:
        """Retransmission timeout: collapse to the minimum window."""
        self.ssthresh_bytes = max(
            self.cwnd_bytes / 2.0, MIN_WINDOW_SEGMENTS * self.mss
        )
        self.cwnd_bytes = MIN_WINDOW_SEGMENTS * self.mss
        self.state = CcState.SLOW_START
        self._recovery_start_time = now
        self._on_rto_extra(now)
        if _san.SANITIZE:
            self._check_window_floor("after RTO collapse")
        self._emit("state_changed", now)

    def exit_recovery(self) -> None:
        """Called when recovery completes (all loss-time data acked)."""
        if self.state is CcState.RECOVERY:
            self.state = (
                CcState.SLOW_START
                if self.cwnd_bytes < self.ssthresh_bytes
                else CcState.CONGESTION_AVOIDANCE
            )
            self._emit("state_changed", self._recovery_start_time)

    def _check_window_floor(self, where: str) -> None:
        """Sanitizer invariant: the window never drops below its floor."""
        floor = MIN_WINDOW_SEGMENTS * self.mss
        _san.check(
            self.cwnd_bytes >= floor,
            f"cwnd below the minimum window {where}",
            cwnd_bytes=self.cwnd_bytes,
            floor=floor,
            controller=type(self).__name__,
        )
        _san.check(
            self.ssthresh_bytes >= floor,
            f"ssthresh below the minimum window {where}",
            ssthresh_bytes=self.ssthresh_bytes,
            floor=floor,
            controller=type(self).__name__,
        )

    # -- subclass hooks ----------------------------------------------------

    @abstractmethod
    def _reduce_on_loss(self, now: float) -> None:
        """Apply the controller's multiplicative decrease."""

    def _on_rto_extra(self, now: float) -> None:
        """Optional extra state reset on RTO."""

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes and self.state is not CcState.RECOVERY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(cwnd={self.cwnd_bytes / self.mss:.1f}seg,"
            f" ssthresh={self.ssthresh_bytes / self.mss:.1f}, {self.state.value})"
        )
