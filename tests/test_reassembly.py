"""Unit and property tests for the byte-stream reassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.reassembly import Reassembler


class TestReassemblerBasics:
    def test_in_order_delivery(self):
        r = Reassembler()
        r.insert(0, b"hello ")
        assert r.pop_ready() == b"hello "
        r.insert(6, b"world")
        assert r.pop_ready() == b"world"
        assert r.read_offset == 11

    def test_out_of_order_held_back(self):
        r = Reassembler()
        r.insert(5, b"world")
        assert r.pop_ready() == b""
        r.insert(0, b"hello")
        assert r.pop_ready() == b"helloworld"

    def test_duplicate_ignored(self):
        r = Reassembler()
        r.insert(0, b"abc")
        r.insert(0, b"abc")
        assert r.pop_ready() == b"abc"
        assert r.bytes_received == 3

    def test_overlap_trimmed(self):
        r = Reassembler()
        r.insert(0, b"abcd")
        r.insert(2, b"cdef")
        assert r.pop_ready() == b"abcdef"

    def test_old_data_dropped(self):
        r = Reassembler()
        r.insert(0, b"abc")
        r.pop_ready()
        r.insert(0, b"abc")  # already consumed
        assert r.pop_ready() == b""

    def test_partial_past_chunk(self):
        r = Reassembler()
        r.insert(0, b"ab")
        r.pop_ready()
        r.insert(1, b"bcd")  # one stale byte, two fresh
        assert r.pop_ready() == b"cd"

    def test_final_size_and_completion(self):
        r = Reassembler()
        r.set_final_size(4)
        assert not r.is_complete()
        r.insert(0, b"abcd")
        r.pop_ready()
        assert r.is_complete()

    def test_conflicting_final_size_raises(self):
        r = Reassembler()
        r.set_final_size(4)
        with pytest.raises(ValueError):
            r.set_final_size(5)

    def test_data_beyond_final_size_raises(self):
        r = Reassembler()
        r.set_final_size(3)
        with pytest.raises(ValueError):
            r.insert(2, b"xy")

    def test_highest_offset(self):
        r = Reassembler()
        assert r.highest_offset == 0
        r.insert(10, b"abc")
        assert r.highest_offset == 13


class TestReassemblerProperties:
    @given(st.binary(min_size=1, max_size=300), st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_arbitrary_fragmentation_reassembles(self, payload, rng):
        # Cut the payload into random chunks, deliver shuffled (with some
        # duplicates), and require exact reconstruction.
        cuts = sorted(
            {0, len(payload)}
            | {rng.randrange(len(payload) + 1) for _ in range(min(10, len(payload)))}
        )
        chunks = [
            (start, payload[start:stop]) for start, stop in zip(cuts, cuts[1:])
        ]
        chunks += [chunks[rng.randrange(len(chunks))] for _ in range(2)]
        rng.shuffle(chunks)
        r = Reassembler()
        r.set_final_size(len(payload))
        received = bytearray()
        for offset, chunk in chunks:
            r.insert(offset, chunk)
            received += r.pop_ready()
        assert bytes(received) == payload
        assert r.is_complete()

    @given(st.binary(min_size=1, max_size=200), st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_overlapping_fragments_reassemble(self, payload, rng):
        r = Reassembler()
        n = len(payload)
        pieces = []
        for _ in range(12):
            start = rng.randrange(n)
            stop = min(n, start + 1 + rng.randrange(40))
            pieces.append((start, payload[start:stop]))
        pieces.append((0, payload))  # guarantee full coverage
        rng.shuffle(pieces)
        out = bytearray()
        for offset, chunk in pieces:
            r.insert(offset, chunk)
            out += r.pop_ready()
        assert bytes(out) == payload


class TestOutOfOrderStress:
    def test_reverse_order_burst(self):
        # Worst case for the old per-delivery sort: every insert leaves
        # the buffer non-contiguous, so every pop_ready scanned it all.
        payload = bytes(range(256)) * 40
        chunk = 64
        r = Reassembler()
        r.set_final_size(len(payload))
        received = bytearray()
        for start in reversed(range(0, len(payload), chunk)):
            r.insert(start, payload[start:start + chunk])
            received += r.pop_ready()
        assert bytes(received) == payload
        assert r.is_complete()

    def test_interleaved_two_path_delivery(self):
        # Two "paths" delivering alternating halves of the stream, the
        # slow path lagging — mimics MPQUIC reassembly pressure.
        payload = bytes((i * 7) % 256 for i in range(20_000))
        chunk = 500
        offsets = list(range(0, len(payload), chunk))
        fast, slow = offsets[::2], offsets[1::2]
        order = fast + slow
        r = Reassembler()
        r.set_final_size(len(payload))
        received = bytearray()
        for start in order:
            r.insert(start, payload[start:start + chunk])
            received += r.pop_ready()
        assert bytes(received) == payload
        assert r.is_complete()

    def test_random_shuffle_large(self):
        import random

        rng = random.Random(1234)
        payload = bytes(rng.randrange(256) for _ in range(30_000))
        chunk = 300
        starts = list(range(0, len(payload), chunk))
        rng.shuffle(starts)
        r = Reassembler()
        received = bytearray()
        for start in starts:
            r.insert(start, payload[start:start + chunk])
            received += r.pop_ready()
        assert bytes(received) == payload
        assert not r._chunks and not r._offsets  # buffer fully drained
