"""Tests for QUIC loss recovery (one packet-number space)."""

import pytest

from repro.quic.frames import AckFrame, StreamFrame
from repro.quic.recovery import LossRecovery
from repro.quic.rtt import RttEstimator


def make_recovery():
    return LossRecovery(RttEstimator())


def send(rec, pn, now=0.0, size=1300):
    rec.on_packet_sent(pn, (StreamFrame(1, pn * size, b"x" * 10, False),),
                       size, now, ack_eliciting=True)


def ack(rec, ranges, now, largest=None, delay=0.0):
    largest = largest if largest is not None else max(r[1] for r in ranges) - 1
    return rec.on_ack_received(
        AckFrame(path_id=0, largest_acked=largest, ack_delay=delay,
                 ranges=tuple(sorted(ranges, reverse=True))),
        now,
    )


class TestAckProcessing:
    def test_simple_ack_removes_and_samples_rtt(self):
        rec = make_recovery()
        send(rec, 0, now=0.0)
        result = ack(rec, [(0, 1)], now=0.05)
        assert [sp.packet_number for sp in result.newly_acked] == [0]
        assert result.rtt_sample == pytest.approx(0.05)
        assert rec.bytes_in_flight == 0
        assert rec.rtt.has_sample

    def test_rtt_sample_only_from_largest(self):
        rec = make_recovery()
        send(rec, 0, now=0.0)
        send(rec, 1, now=0.01)
        result = ack(rec, [(0, 2)], now=0.06)
        assert result.rtt_sample == pytest.approx(0.05)  # 0.06 - 0.01

    def test_duplicate_ack_harmless(self):
        rec = make_recovery()
        send(rec, 0)
        ack(rec, [(0, 1)], now=0.05)
        result = ack(rec, [(0, 1)], now=0.06)
        assert result.newly_acked == []

    def test_bytes_in_flight_accounting(self):
        rec = make_recovery()
        for pn in range(5):
            send(rec, pn, size=1000)
        assert rec.bytes_in_flight == 5000
        ack(rec, [(0, 3)], now=0.05)
        assert rec.bytes_in_flight == 2000


class TestLossDetection:
    def test_packet_threshold_loss(self):
        rec = make_recovery()
        for pn in range(5):
            send(rec, pn, now=0.0)
        # Ack only pn 4: pns 0 and 1 are >= 3 behind -> lost.
        result = ack(rec, [(4, 5)], now=0.05)
        lost_pns = sorted(sp.packet_number for sp in result.lost)
        assert lost_pns == [0, 1]
        assert 2 in rec.sent and 3 in rec.sent

    def test_time_threshold_loss(self):
        rec = make_recovery()
        rec.rtt.update(0.1)
        send(rec, 0, now=0.0)
        send(rec, 1, now=0.3)
        result = ack(rec, [(1, 2)], now=0.4)
        # pn 0 only 1 behind, but sent 0.4s ago > 1.125 * srtt.
        assert [sp.packet_number for sp in result.lost] == [0]

    def test_next_loss_time(self):
        rec = make_recovery()
        rec.rtt.update(0.1)
        send(rec, 0, now=0.0)
        send(rec, 1, now=0.05)
        ack(rec, [(1, 2)], now=0.1)
        t = rec.next_loss_time(0.1)
        # The ack itself updated srtt (sample 0.05): the candidate is
        # time_sent(pn 0) + 1.125 * max(srtt, latest).
        expected = 0.0 + 1.125 * max(rec.rtt.smoothed, rec.rtt.latest)
        assert t == pytest.approx(expected, rel=0.01)

    def test_detect_losses_now_after_timer(self):
        rec = make_recovery()
        rec.rtt.update(0.1)
        send(rec, 0, now=0.0)
        send(rec, 1, now=0.0)
        ack(rec, [(1, 2)], now=0.05)
        assert rec.detect_losses_now(0.05) == []
        lost = rec.detect_losses_now(0.2)
        assert [sp.packet_number for sp in lost] == [0]

    def test_spurious_late_ack_after_loss(self):
        rec = make_recovery()
        for pn in range(5):
            send(rec, pn, now=0.0)
        ack(rec, [(4, 5)], now=0.05)  # declares 0, 1 lost
        result = ack(rec, [(0, 5)], now=0.06)  # late ack covers them
        acked = sorted(sp.packet_number for sp in result.newly_acked)
        assert acked == [2, 3]  # lost ones already handed back


class TestRto:
    def test_rto_timeout_backoff(self):
        rec = make_recovery()
        rec.rtt.update(0.1)
        base = rec.rto_timeout(min_rto=0.2, max_rto=60.0, initial_rto=0.5)
        rec.consecutive_rtos = 2
        assert rec.rto_timeout(0.2, 60.0, 0.5) == pytest.approx(base * 4)

    def test_initial_rto_without_sample(self):
        rec = make_recovery()
        assert rec.rto_timeout(0.2, 60.0, 0.5) == 0.5

    def test_rto_marks_all_in_flight_lost(self):
        rec = make_recovery()
        for pn in range(4):
            send(rec, pn)
        lost = rec.on_rto_fired(1.0)
        assert sorted(sp.packet_number for sp in lost) == [0, 1, 2, 3]
        assert rec.bytes_in_flight == 0
        assert rec.consecutive_rtos == 1

    def test_ack_resets_rto_backoff(self):
        rec = make_recovery()
        send(rec, 0)
        rec.on_rto_fired(1.0)
        send(rec, 1, now=1.0)
        ack(rec, [(1, 2)], now=1.1)
        assert rec.consecutive_rtos == 0

    def test_has_eliciting_in_flight(self):
        rec = make_recovery()
        assert not rec.has_eliciting_in_flight()
        send(rec, 0)
        assert rec.has_eliciting_in_flight()
        ack(rec, [(0, 1)], now=0.1)
        assert not rec.has_eliciting_in_flight()


class TestFloorOptimisation:
    def test_floor_advances_past_resolved_packets(self):
        rec = make_recovery()
        for pn in range(100):
            send(rec, pn, now=pn * 0.001)
        ack(rec, [(0, 100)], now=0.2)
        assert rec._floor >= 98  # everything below largest resolved

    def test_floor_blocked_by_unacked_holes(self):
        rec = make_recovery()
        send(rec, 0)
        send(rec, 1)
        send(rec, 2)
        ack(rec, [(1, 3)], now=0.05)  # pn 0 unresolved but now lost? no: 2 behind
        assert 0 in rec.sent or rec._floor == 0
