"""Run one protocol over one scenario and collect results.

The measurement mirrors the paper's §4.1: the client downloads a file
on a single stream and times the interval between its first connection
packet and the last response byte.  Lossy scenarios are repeated with
different seeds and summarised by the median run (the paper repeats
each simulation three times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkTransferApp
from repro.apps.reqres import RequestResponseApp
from repro.apps.transport import make_client_server
from repro.experiments.metrics import median
from repro.experiments.scenarios import (
    HANDOVER_SCENARIO,
    HandoverScenario,
    MobilityScenario,
)
from repro.netsim.engine import Simulator
from repro.netsim.faults import FaultTimeline
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace
from repro.obs import Tracer
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

#: Hard ceiling on simulated seconds per run; generous enough for a
#: 0.1 Mbps path (the range minimum) to finish any benchmark transfer.
DEFAULT_SIM_TIMEOUT = 4000.0


@dataclass
class BulkRunResult:
    """Outcome of one bulk-transfer run (median over repetitions).

    ``transfer_time`` is the median over *completed* repetitions only:
    a timed-out repetition no longer silently skews the median towards
    the timeout ceiling — it is recorded in ``rep_completed`` /
    ``failed_repetitions`` instead.  When every repetition times out,
    ``transfer_time`` falls back to the timeout and ``completed`` is
    False.
    """

    protocol: str
    initial_interface: int
    file_size: int
    transfer_time: float
    goodput_bps: float
    completed: bool
    repetitions: int = 1
    details: Dict[str, float] = field(default_factory=dict)
    #: Per-repetition transfer time (timeout value for failed reps).
    rep_times: List[float] = field(default_factory=list)
    #: Per-repetition completion flag, aligned with ``rep_times``.
    rep_completed: List[bool] = field(default_factory=list)
    #: Number of repetitions that hit the simulation timeout.
    failed_repetitions: int = 0
    #: Telemetry of the median completed repetition when the run was
    #: made with ``collect_trace=True`` (None otherwise).
    trace: Optional[Tracer] = None


def _single_bulk(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int,
    initial_interface: int,
    seed: int,
    quic_config: Optional[QuicConfig],
    tcp_config: Optional[TcpConfig],
    timeout: float,
    trace: Optional[PacketTrace] = None,
    timeline: Optional[FaultTimeline] = None,
) -> Tuple[bool, float, int]:
    sim = Simulator()
    topo = TwoPathTopology(sim, list(paths), seed=seed)
    if timeline is not None:
        timeline.install(sim, topo, trace=trace)
    client, server = make_client_server(
        protocol, sim, topo,
        initial_interface=initial_interface,
        trace=trace,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = BulkTransferApp(sim, client, server, file_size, initial_interface)
    ok = app.run(timeout=timeout)
    return ok, app.transfer_time if ok else timeout, sim.events_processed


def run_bulk(
    protocol: str,
    paths: Sequence[PathConfig],
    file_size: int,
    initial_interface: int = 0,
    repetitions: int = 1,
    base_seed: int = 1,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    timeout: float = DEFAULT_SIM_TIMEOUT,
    collect_trace: bool = False,
    timeline: Optional[FaultTimeline] = None,
) -> BulkRunResult:
    """Run a bulk download, reporting the median over ``repetitions``.

    Loss-free scenarios are deterministic, so a single repetition
    suffices; lossy ones should use 3, matching the paper.  The median
    is taken over *completed* repetitions; timed-out ones are flagged
    via ``rep_completed`` / ``failed_repetitions`` rather than pulling
    the median towards the timeout.  With ``collect_trace=True`` each
    repetition runs with a :class:`repro.obs.Tracer` attached and the
    median repetition's trace is returned on the result.  A
    ``timeline`` (:class:`repro.netsim.faults.FaultTimeline`) injects
    network dynamics — link failures, rate/delay/loss changes — into
    every repetition.
    """
    times: List[float] = []
    rep_ok: List[bool] = []
    traces: List[Optional[Tracer]] = []
    sim_events = 0
    for rep in range(repetitions):
        tracer = Tracer() if collect_trace else None
        ok, duration, events = _single_bulk(
            protocol, paths, file_size, initial_interface,
            seed=base_seed + rep * 1000,
            quic_config=quic_config, tcp_config=tcp_config, timeout=timeout,
            trace=tracer, timeline=timeline,
        )
        rep_ok.append(ok)
        times.append(duration)
        traces.append(tracer)
        sim_events += events
    completed_times = [t for t, ok in zip(times, rep_ok) if ok]
    t = median(completed_times) if completed_times else median(times)
    trace: Optional[Tracer] = None
    if collect_trace:
        # The trace of the (completed) repetition whose duration is the
        # reported median, ties resolved to the first such repetition.
        candidates = [i for i, ok in enumerate(rep_ok) if ok] or list(
            range(len(times))
        )
        trace = traces[min(candidates, key=lambda i: abs(times[i] - t))]
    return BulkRunResult(
        protocol=protocol,
        initial_interface=initial_interface,
        file_size=file_size,
        transfer_time=t,
        goodput_bps=file_size * 8.0 / t if t > 0 else 0.0,
        completed=all(rep_ok),
        repetitions=repetitions,
        details={"sim_events": float(sim_events)},
        rep_times=times,
        rep_completed=rep_ok,
        failed_repetitions=rep_ok.count(False),
        trace=trace,
    )


def run_handover(
    scenario: HandoverScenario = HANDOVER_SCENARIO,
    seed: int = 3,
    quic_config: Optional[QuicConfig] = None,
    protocol: str = "mpquic",
    tcp_config: Optional[TcpConfig] = None,
    trace: Optional[PacketTrace] = None,
) -> List[Tuple[float, float]]:
    """Reproduce the §4.3 handover experiment.

    Returns ``(request sent time, response delay)`` pairs — the series
    of the paper's Fig. 11.  At ``scenario.failure_time`` the initial
    path becomes completely lossy in both directions (injected via the
    scenario's :class:`~repro.netsim.faults.FaultTimeline`).  Attach a
    :class:`repro.obs.Tracer` via ``trace`` to capture the handover
    timeline (the ``network:loss_change`` fault,
    ``path:potentially_failed`` and the traffic shift).
    """
    sim = Simulator()
    topo = TwoPathTopology(sim, list(scenario.paths), seed=seed)
    scenario.timeline().install(sim, topo, trace=trace)
    client, server = make_client_server(
        protocol, sim, topo, initial_interface=0,
        trace=trace,
        quic_config=quic_config, tcp_config=tcp_config,
    )
    app = RequestResponseApp(
        sim, client, server,
        message_size=scenario.message_size,
        interval=scenario.interval,
        total_requests=scenario.total_requests,
    )
    app.run(timeout=scenario.failure_time + scenario.total_requests * scenario.interval + 30.0)
    return app.delays()


def run_mobility(
    scenario: MobilityScenario,
    protocol: str = "mpquic",
    initial_interface: int = 0,
    base_seed: int = 1,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    collect_trace: bool = False,
) -> BulkRunResult:
    """Run one :class:`~repro.experiments.scenarios.MobilityScenario`.

    A bulk transfer with the scenario's fault timeline installed — the
    unit of the WiFi-to-LTE handover sweep.  ``completed=False`` with
    ``transfer_time == scenario.timeout`` means the transport never
    survived the failure (the single-path fate).
    """
    return run_bulk(
        protocol,
        scenario.paths,
        scenario.file_size,
        initial_interface=initial_interface,
        base_seed=base_seed,
        quic_config=quic_config,
        tcp_config=tcp_config,
        timeout=scenario.timeout,
        collect_trace=collect_trace,
        timeline=scenario.timeline,
    )


def run_scenario_protocol_matrix(
    paths: Sequence[PathConfig],
    file_size: int,
    lossy: bool,
    base_seed: int = 1,
    protocols: Sequence[str] = ("tcp", "quic", "mptcp", "mpquic"),
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> Dict[Tuple[str, int], BulkRunResult]:
    """All (protocol, initial interface) runs for one scenario.

    This is the unit of the paper's sweep: four protocols, each started
    once on each of the two paths.
    """
    reps = 3 if lossy else 1
    out: Dict[Tuple[str, int], BulkRunResult] = {}
    for protocol in protocols:
        for initial in (0, 1):
            out[(protocol, initial)] = run_bulk(
                protocol, paths, file_size,
                initial_interface=initial,
                repetitions=reps, base_seed=base_seed,
                quic_config=quic_config, tcp_config=tcp_config,
            )
    return out
