"""Connection multiplexing: several QUIC connections on one host.

Real hosts demultiplex QUIC packets by Connection ID (the CID is in the
public header precisely so one UDP socket can serve many connections
and survive address changes).  :class:`ConnectionMux` installs itself
as the host's datagram handler and routes packets to the registered
connection; unknown CIDs go to an optional listener factory (a server
accepting new connections).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.netsim.node import Datagram, Host
from repro.quic.connection import QuicConnection
from repro.quic.packet import Packet


class ConnectionMux:
    """Routes datagrams to connections by Connection ID."""

    def __init__(
        self,
        host: Host,
        accept: Optional[Callable[[int], Optional[QuicConnection]]] = None,
    ) -> None:
        """Args:
            host: the host whose datagram handler to own.
            accept: optional factory invoked with an unknown CID; return
                a new (server) connection to accept it, or None to drop.
        """
        self.host = host
        self.accept = accept
        self._connections: Dict[int, QuicConnection] = {}
        self.dropped_unknown = 0
        host.set_datagram_handler(self._datagram_received)

    def register(self, connection: QuicConnection) -> None:
        """Attach a connection; its CID must be unique on this host."""
        cid = connection.connection_id
        if cid in self._connections:
            raise ValueError(f"connection id 0x{cid:x} already registered")
        self._connections[cid] = connection
        # The mux owns the host handler; make sure a connection created
        # after the mux does not steal it back.
        self.host.set_datagram_handler(self._datagram_received)

    def unregister(self, connection: QuicConnection) -> None:
        self._connections.pop(connection.connection_id, None)

    def connection(self, cid: int) -> Optional[QuicConnection]:
        return self._connections.get(cid)

    def __len__(self) -> int:
        return len(self._connections)

    def _datagram_received(self, datagram: Datagram, interface_index: int) -> None:
        packet: Packet = datagram.payload
        conn = self._connections.get(packet.connection_id)
        if conn is None and self.accept is not None:
            conn = self.accept(packet.connection_id)
            if conn is not None:
                self._connections[packet.connection_id] = conn
                # Constructing a connection rebinds the host handler;
                # take it back.
                self.host.set_datagram_handler(self._datagram_received)
        if conn is None:
            self.dropped_unknown += 1
            return
        conn.datagram_received(datagram, interface_index)
