"""Tests for CSV export and the figures command-line interface."""

import csv
import os

import pytest

from repro.experiments import figures
from repro.experiments.report import SWEEP_CSV_HEADERS, save_csv, sweep_to_rows


class TestSaveCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        save_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestSweepToRows:
    def test_rows_match_matrix(self):
        config = figures.SweepConfig(scenarios=2, file_size=200_000, seed=7)
        sweep = figures.run_class_sweep("low-bdp-no-loss", config)
        rows = sweep_to_rows(sweep)
        # 2 scenarios x 4 protocols x 2 initial interfaces.
        assert len(rows) == 16
        assert all(len(row) == len(SWEEP_CSV_HEADERS) for row in rows)
        protocols = {row[2] for row in rows}
        assert protocols == {"tcp", "quic", "mptcp", "mpquic"}
        assert all(row[-1] for row in rows)  # all completed


class TestFiguresCli:
    def test_fig11_via_cli(self, capsys):
        assert figures.main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 11" in out

    def test_csv_option(self, tmp_path, capsys):
        out_file = tmp_path / "runs.csv"
        code = figures.main(
            ["fig3", "--scenarios", "2", "--file-size", "200000",
             "--csv", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        with open(out_file) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == SWEEP_CSV_HEADERS
        assert len(rows) >= 17  # header + 16 runs

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            figures.main(["fig99"])

    def test_scenario_override(self, capsys):
        code = figures.main(
            ["fig9", "--scenarios", "2", "--small-file-size", "64000"]
        )
        assert code == 0
        assert "64000" in capsys.readouterr().out
