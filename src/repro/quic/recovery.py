"""Loss detection for one packet-number space (one path).

Implements QUIC-style recovery: every transmission gets a fresh packet
number, losses are declared via a packet-reordering threshold or a time
threshold, and a retransmission timeout (RTO) with exponential backoff
backstops tail losses.  Frames from lost packets are returned to the
connection, which is free to rebind them onto *any* path (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.quic.frames import AckFrame, Frame
from repro.quic.rtt import RttEstimator
from repro.util import sanitize as _san


class SentPacket:
    """Bookkeeping for one in-flight packet."""

    __slots__ = ("packet_number", "frames", "size", "time_sent", "ack_eliciting")

    def __init__(
        self,
        packet_number: int,
        frames: Tuple[Frame, ...],
        size: int,
        time_sent: float,
        ack_eliciting: bool,
    ) -> None:
        self.packet_number = packet_number
        self.frames = frames
        self.size = size
        self.time_sent = time_sent
        self.ack_eliciting = ack_eliciting

    def __repr__(self) -> str:
        return (
            f"SentPacket(packet_number={self.packet_number!r}, "
            f"frames={self.frames!r}, size={self.size!r}, "
            f"time_sent={self.time_sent!r}, "
            f"ack_eliciting={self.ack_eliciting!r})"
        )


@dataclass
class AckResult:
    """Outcome of processing one ACK frame."""

    newly_acked: List[SentPacket]
    lost: List[SentPacket]
    rtt_sample: Optional[float]
    acked_bytes: int


class LossRecovery:
    """Sender-side recovery state for a single path."""

    __slots__ = (
        "rtt", "packet_threshold", "time_fraction", "sent", "largest_acked",
        "largest_sent", "_floor", "bytes_in_flight", "eliciting_in_flight",
        "consecutive_rtos", "time_of_last_eliciting", "packets_lost_total",
        "packets_acked_total", "rto_count", "on_packets_lost",
    )

    def __init__(
        self,
        rtt: RttEstimator,
        packet_threshold: int = 3,
        time_fraction: float = 1.125,
    ) -> None:
        self.rtt = rtt
        self.packet_threshold = packet_threshold
        self.time_fraction = time_fraction
        self.sent: Dict[int, SentPacket] = {}
        self.largest_acked = -1
        self.largest_sent = -1
        #: Packet numbers below this are known to be fully resolved;
        #: lets ACK-range processing skip history in O(1).
        self._floor = 0
        self.bytes_in_flight = 0
        #: Count of ack-eliciting packets in ``sent``; kept in lockstep
        #: so the per-packet ``has_eliciting_in_flight()`` timer checks
        #: are O(1) instead of scanning the in-flight table.
        self.eliciting_in_flight = 0
        self.consecutive_rtos = 0
        self.time_of_last_eliciting = 0.0
        #: Statistics.
        self.packets_lost_total = 0
        self.packets_acked_total = 0
        self.rto_count = 0
        #: Optional telemetry hook ``fn(lost_packets)`` invoked with the
        #: freshly declared-lost packets (wired when a tracer is
        #: attached; one ``is None`` check otherwise).
        self.on_packets_lost: Optional[Callable[[List[SentPacket]], None]] = None

    # -- sending -------------------------------------------------------------

    def on_packet_sent(self, packet_number: int, frames: Tuple[Frame, ...], size: int, now: float, ack_eliciting: bool) -> None:
        """Register a freshly transmitted packet."""
        if _san.SANITIZE:
            # Per-path packet numbers are strictly monotonic: reuse
            # would repeat an AEAD nonce and corrupt loss detection.
            _san.check(
                packet_number > self.largest_sent,
                "packet number not strictly monotonic on this path",
                packet_number=packet_number,
                largest_sent=self.largest_sent,
            )
        # One pool reference per recovery registration: the frames stay
        # reachable until this entry resolves (acked, lost or drained),
        # at which point the connection releases them.
        for frame in frames:
            if frame.poolable:
                frame.retain()
        sp = SentPacket(packet_number, frames, size, now, ack_eliciting)
        self.sent[packet_number] = sp
        if packet_number > self.largest_sent:
            self.largest_sent = packet_number
        if ack_eliciting:
            self.bytes_in_flight += size
            self.eliciting_in_flight += 1
            self.time_of_last_eliciting = now

    # -- ack processing --------------------------------------------------------

    def on_ack_received(self, ack: AckFrame, now: float) -> AckResult:
        """Process an ACK frame for this path's number space."""
        if _san.SANITIZE:
            # Note: largest_acked may exceed largest_sent here because
            # pure-ACK packets take numbers without registering with
            # recovery; the allocation-bound check lives in the
            # connection, which owns the number allocator.
            for start, stop in ack.ranges:
                _san.check(
                    0 <= start < stop <= ack.largest_acked + 1,
                    "malformed ACK range",
                    range=(start, stop),
                    largest_acked=ack.largest_acked,
                )
        newly_acked: List[SentPacket] = []
        rtt_sample: Optional[float] = None
        acked_bytes = 0
        for start, stop in ack.ranges:
            # Everything below the floor was already acked or declared
            # lost; skipping it keeps processing linear over a transfer.
            pn = max(start, self._floor)
            while pn < stop:
                sp = self.sent.pop(pn, None)
                if sp is not None:
                    newly_acked.append(sp)
                    if sp.ack_eliciting:
                        self.bytes_in_flight -= sp.size
                        self.eliciting_in_flight -= 1
                        acked_bytes += sp.size
                    if pn == ack.largest_acked:
                        rtt_sample = now - sp.time_sent
                pn += 1
        if ack.largest_acked > self.largest_acked:
            self.largest_acked = ack.largest_acked
        while self._floor < self.largest_acked and self._floor not in self.sent:
            self._floor += 1
        if _san.SANITIZE:
            _san.check(
                self.bytes_in_flight >= 0,
                "bytes_in_flight went negative after ACK processing",
                bytes_in_flight=self.bytes_in_flight,
            )
        if rtt_sample is not None:
            self.rtt.update(rtt_sample, ack.ack_delay)
        if newly_acked:
            self.consecutive_rtos = 0
        lost = self._detect_losses(now)
        self.packets_acked_total += len(newly_acked)
        self.packets_lost_total += len(lost)
        return AckResult(newly_acked, lost, rtt_sample, acked_bytes)

    def _loss_delay(self) -> float:
        base = max(self.rtt.smoothed, self.rtt.latest)
        if base <= 0:
            base = 0.1
        return self.time_fraction * base

    def _detect_losses(self, now: float) -> List[SentPacket]:
        """Packet- and time-threshold loss detection below largest_acked."""
        if self.largest_acked < 0:
            return []
        loss_delay = self._loss_delay()
        lost: List[SentPacket] = []
        # `sent` is insertion-ordered by ascending packet number, so we
        # may stop at the first pn >= largest_acked.
        for pn, sp in self.sent.items():
            if pn >= self.largest_acked:
                break
            if (
                self.largest_acked - pn >= self.packet_threshold
                # The 1us slack avoids a floating-point livelock when a
                # loss timer fires exactly at time_sent + loss_delay.
                or now - sp.time_sent >= loss_delay - 1e-6
            ):
                lost.append(sp)
        for sp in lost:
            del self.sent[sp.packet_number]
            if sp.ack_eliciting:
                self.bytes_in_flight -= sp.size
                self.eliciting_in_flight -= 1
        if lost and self.on_packets_lost is not None:
            self.on_packets_lost(lost)
        return lost

    def next_loss_time(self, now: float) -> Optional[float]:
        """Earliest instant a time-threshold loss could be declared."""
        if self.largest_acked < 0:
            return None
        # Computed lazily: in the dominant no-reordering case the first
        # in-flight packet number is already >= largest_acked and the
        # loop exits without needing the delay at all.
        loss_delay: Optional[float] = None
        candidate: Optional[float] = None
        for pn, sp in self.sent.items():
            if pn >= self.largest_acked:
                break
            if loss_delay is None:
                loss_delay = self._loss_delay()
            t = sp.time_sent + loss_delay
            if candidate is None or t < candidate:
                candidate = t
        return candidate

    def detect_losses_now(self, now: float) -> List[SentPacket]:
        """Re-run time-threshold detection (loss timer fired)."""
        lost = self._detect_losses(now)
        self.packets_lost_total += len(lost)
        return lost

    # -- RTO ------------------------------------------------------------------

    def rto_timeout(self, min_rto: float, max_rto: float, initial_rto: float) -> float:
        """Current RTO value, with exponential backoff applied."""
        if self.rtt.has_sample:
            base = self.rtt.rto(min_rto=min_rto, max_rto=max_rto)
        else:
            base = initial_rto
        return min(base * (2 ** self.consecutive_rtos), max_rto)

    def has_eliciting_in_flight(self) -> bool:
        """True while any ack-eliciting packet awaits acknowledgment."""
        return self.eliciting_in_flight > 0

    def drain_in_flight(self) -> List[SentPacket]:
        """Hand back every ack-eliciting in-flight packet *without*
        declaring it lost.

        Used when a path turns potentially failed: its outstanding
        window is reinjected onto the surviving paths immediately
        (paper §4.3 / the reinjection policy of De Coninck 2021),
        which is a scheduling decision, not a loss event — so loss
        counters, RTO backoff and the ``on_packets_lost`` telemetry
        hook are deliberately left untouched.
        """
        drained: List[SentPacket] = []
        for pn in list(self.sent):
            sp = self.sent[pn]
            if sp.ack_eliciting:
                del self.sent[pn]
                self.bytes_in_flight -= sp.size
                self.eliciting_in_flight -= 1
                drained.append(sp)
        return drained

    def on_rto_fired(self, now: float) -> List[SentPacket]:
        """Handle an RTO: hand back all in-flight packets for retransmission.

        Like a TCP RTO (which marks every unacknowledged segment lost),
        the whole outstanding window becomes eligible again.  This
        matters for multipath: the retransmissions are new packets that
        may be scheduled onto *other* paths, so this path's own number
        space may never advance again — waiting for per-packet RTOs
        would drip out the backlog two packets per backed-off timeout.
        Ranges meanwhile acknowledged through a duplicate copy are
        filtered out by the stream layer, bounding spurious traffic.
        """
        self.consecutive_rtos += 1
        self.rto_count += 1
        lost: List[SentPacket] = []
        for pn in list(self.sent):
            sp = self.sent[pn]
            if sp.ack_eliciting:
                del self.sent[pn]
                self.bytes_in_flight -= sp.size
                self.eliciting_in_flight -= 1
                lost.append(sp)
        self.packets_lost_total += len(lost)
        if lost and self.on_packets_lost is not None:
            self.on_packets_lost(lost)
        return lost

    # -- misc -----------------------------------------------------------------

    @property
    def smallest_unacked(self) -> Optional[int]:
        return min(self.sent) if self.sent else None
