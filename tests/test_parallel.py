"""Tests for the parallel sweep engine and its persistent result cache.

The contract under test: fanning a class sweep out over worker
processes (or serving it from the on-disk cache) must be invisible in
the results — the matrices are bit-identical to the serial loop over
``run_scenario_protocol_matrix`` — and that guarantee survives crashed
workers, raising cells, an unavailable pool and interrupted sweeps.
"""

import json
from dataclasses import replace

import pytest

from repro.expdesign.parameters import generate_scenarios
from repro.experiments import parallel
from repro.experiments.parallel import (
    ResultCache,
    SweepCell,
    SweepStats,
    cache_enabled,
    default_cache,
    execute_cells,
    execute_class_sweep,
    plan_class_sweep,
    resolve_jobs,
    resolve_retries,
    result_from_dict,
    result_to_dict,
    run_cell,
)
from repro.experiments.runner import run_scenario_protocol_matrix
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig

#: Two fast scenarios' worth of sweep (file small enough for quick runs).
SWEEP_SCENARIOS = 2
SWEEP_FILE_SIZE = 200_000

PATHS = (
    PathConfig(capacity_mbps=8.0, rtt_ms=20.0, queuing_delay_ms=10.0),
    PathConfig(capacity_mbps=4.0, rtt_ms=40.0, queuing_delay_ms=20.0),
)


def _cell(**overrides) -> SweepCell:
    base = dict(
        paths=PATHS,
        protocol="quic",
        initial_interface=0,
        file_size=SWEEP_FILE_SIZE,
        repetitions=1,
        base_seed=1,
    )
    base.update(overrides)
    return SweepCell(**base)


def _matrix_numbers(sweep):
    """Flatten a sweep to the comparable (time, goodput) matrix."""
    out = []
    for _scenario, matrix in sweep:
        for key in sorted(matrix):
            r = matrix[key]
            out.append((key, r.transfer_time, r.goodput_bps))
    return out


class TestPlan:
    def test_plan_order_matches_serial_loop(self):
        scenarios = generate_scenarios("low-bdp-no-loss", 2, seed=42)
        cells = plan_class_sweep(scenarios, SWEEP_FILE_SIZE, lossy=False)
        assert len(cells) == 2 * 4 * 2  # scenarios x protocols x interfaces
        # Scenario-major, protocol order as in the paper's matrix.
        assert [c.protocol for c in cells[:8]] == [
            "tcp", "tcp", "quic", "quic", "mptcp", "mptcp", "mpquic", "mpquic"
        ]
        assert [c.initial_interface for c in cells[:4]] == [0, 1, 0, 1]
        assert cells[0].base_seed == scenarios[0].index + 1
        assert cells[8].base_seed == scenarios[1].index + 1

    def test_lossy_classes_get_three_repetitions(self):
        scenarios = generate_scenarios("low-bdp-losses", 1, seed=42)
        cells = plan_class_sweep(scenarios, SWEEP_FILE_SIZE, lossy=True)
        assert all(c.repetitions == 3 for c in cells)


class TestEquivalence:
    def test_parallel_matches_serial_matrices(self):
        """The acceptance gate: identical transfer_time/goodput matrices."""
        scenarios = generate_scenarios(
            "low-bdp-no-loss", SWEEP_SCENARIOS, seed=42
        )
        serial = [
            (
                s,
                run_scenario_protocol_matrix(
                    s.paths, SWEEP_FILE_SIZE, lossy=False, base_seed=s.index + 1
                ),
            )
            for s in scenarios
        ]
        parallel = execute_class_sweep(
            scenarios, SWEEP_FILE_SIZE, lossy=False, jobs=2, cache=None
        )
        assert _matrix_numbers(serial) == _matrix_numbers(parallel)

    def test_cached_rerun_matches_and_executes_nothing(self, tmp_path):
        scenarios = generate_scenarios("low-bdp-no-loss", 1, seed=42)
        cache = ResultCache(tmp_path / "cache")
        cold_stats = SweepStats()
        cold = execute_class_sweep(
            scenarios, SWEEP_FILE_SIZE, lossy=False,
            jobs=1, cache=cache, stats=cold_stats,
        )
        warm_stats = SweepStats()
        warm = execute_class_sweep(
            scenarios, SWEEP_FILE_SIZE, lossy=False,
            jobs=1, cache=cache, stats=warm_stats,
        )
        assert cold_stats.executed == 8 and cold_stats.cache_hits == 0
        assert warm_stats.executed == 0 and warm_stats.cache_hits == 8
        assert _matrix_numbers(cold) == _matrix_numbers(warm)


class TestCacheKey:
    def test_hit_on_identical_config(self):
        assert _cell().cache_key() == _cell().cache_key()
        qc = QuicConfig()
        assert (
            _cell(quic_config=qc).cache_key()
            == _cell(quic_config=QuicConfig()).cache_key()
        )

    def test_miss_on_changed_seed(self):
        assert _cell(base_seed=1).cache_key() != _cell(base_seed=2).cache_key()

    def test_miss_on_changed_file_size(self):
        assert (
            _cell(file_size=100).cache_key() != _cell(file_size=200).cache_key()
        )

    def test_miss_on_changed_protocol_config(self):
        plain = _cell(quic_config=QuicConfig())
        tuned = _cell(quic_config=QuicConfig(scheduler="round_robin"))
        assert plain.cache_key() != tuned.cache_key()

    def test_miss_on_changed_paths(self):
        other = (PATHS[0], replace(PATHS[1], loss_percent=1.0))
        assert _cell().cache_key() != _cell(paths=other).cache_key()

    def test_miss_on_protocol_and_interface(self):
        assert _cell(protocol="tcp").cache_key() != _cell().cache_key()
        assert (
            _cell(initial_interface=1).cache_key() != _cell().cache_key()
        )


class TestCacheStore:
    def test_round_trip_preserves_result(self, tmp_path):
        cell = _cell()
        result = run_cell(cell)
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, result)
        loaded = cache.get(cell)
        assert result_to_dict(loaded) == result_to_dict(result)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cell = _cell()
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, run_cell(cell))
        path = cache._path(cell.cache_key())
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt sweep-cache"):
            assert cache.get(cell) is None

    def test_truncated_entry_warns_quarantines_and_recovers(self, tmp_path):
        # A torn write (killed worker, full disk) must read as a miss
        # with a RuntimeWarning — never an unhandled exception — and
        # the corrupt file is set aside so a fresh commit lands.
        cell = _cell()
        result = run_cell(cell)
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, result)
        path = cache._path(cell.cache_key())
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        with pytest.warns(RuntimeWarning, match="corrupt sweep-cache"):
            assert cache.get(cell) is None
        assert cache.corrupt == 1
        assert cache.corrupt_keys == [cell.cache_key()]
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()
        # Recommit over the quarantined slot, then read back cleanly.
        cache.put(cell, result)
        assert result_to_dict(cache.get(cell)) == result_to_dict(result)

    def test_digest_mismatch_is_rejected(self, tmp_path):
        # An entry whose payload was tampered with (or half-overwritten
        # by a buggy writer) fails its content digest and is refused
        # even though it parses as valid JSON.
        cell = _cell()
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, run_cell(cell))
        path = cache._path(cell.cache_key())
        data = json.loads(path.read_text())
        data["result"]["transfer_time"] += 1.0
        path.write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="digest mismatch"):
            assert cache.get(cell) is None
        assert cache.corrupt == 1

    def test_payload_carries_content_digest(self, tmp_path):
        cell = _cell()
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, run_cell(cell))
        data = json.loads(cache._path(cell.cache_key()).read_text())
        assert data["digest"] == parallel.result_digest(data["result"])

    def test_legacy_entry_without_digest_still_reads(self, tmp_path):
        # Pre-digest cache entries (older format payloads) stay
        # readable: the digest check only applies when the field is
        # present.
        cell = _cell()
        result = run_cell(cell)
        cache = ResultCache(tmp_path / "c")
        cache.put(cell, result)
        path = cache._path(cell.cache_key())
        data = json.loads(path.read_text())
        del data["digest"]
        path.write_text(json.dumps(data))
        assert result_to_dict(cache.get(cell)) == result_to_dict(result)

    def test_serialisation_round_trip(self):
        result = run_cell(_cell())
        again = result_from_dict(result_to_dict(result))
        assert again.transfer_time == result.transfer_time
        assert again.goodput_bps == result.goodput_bps
        assert again.rep_times == result.rep_times
        assert again.details == result.details


class TestEnvironmentKnobs:
    def test_repro_cache_off_bypasses(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled()
        assert default_cache() is None

    def test_repro_cache_on_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()
        assert default_cache() is not None

    def test_cache_off_executes_every_time(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
        cells = [_cell()]
        stats = SweepStats()
        execute_cells(cells, jobs=1, cache="auto", stats=stats)
        stats2 = SweepStats()
        execute_cells(cells, jobs=1, cache="auto", stats=stats2)
        assert stats.executed == 1 and stats2.executed == 1
        assert not (tmp_path / "never").exists()

    def test_resolve_jobs_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(5) == 5  # explicit wins over env
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs() >= 1

    def test_jobs_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestProcessPool:
    def test_pool_execution_matches_inprocess(self):
        """Same cells through a real worker pool: identical results."""
        cells = [
            _cell(protocol=p, initial_interface=i)
            for p in ("tcp", "quic") for i in (0, 1)
        ]
        inproc = execute_cells(cells, jobs=1, cache=None)
        pooled = execute_cells(cells, jobs=2, cache=None)
        assert [r.transfer_time for r in inproc] == [
            r.transfer_time for r in pooled
        ]
        assert [r.goodput_bps for r in inproc] == [
            r.goodput_bps for r in pooled
        ]


def _arm_chaos(monkeypatch, victim, mode="raise", marker_dir=None):
    """Make ``victim`` crash via the chaos drill hooks.

    ``mode="raise"`` raises in-process (usable at ``jobs=1``); the
    default ``os._exit`` variant kills the worker — only safe under a
    real pool.  A ``marker_dir`` limits each cell to one crash.
    """
    monkeypatch.setenv("REPRO_CHAOS_CRASH_KEY", victim.cache_key()[:16])
    monkeypatch.setenv("REPRO_CHAOS_MODE", mode)
    if marker_dir is not None:
        monkeypatch.setenv("REPRO_CHAOS_MARKER_DIR", str(marker_dir))
    else:
        monkeypatch.delenv("REPRO_CHAOS_MARKER_DIR", raising=False)


class TestCrashIsolation:
    def test_raising_cell_is_retried_to_success(self, monkeypatch, tmp_path):
        cells = [_cell(), _cell(protocol="tcp")]
        clean = execute_cells(cells, jobs=1, cache=None)
        stats = SweepStats()
        _arm_chaos(monkeypatch, cells[0], marker_dir=tmp_path / "markers")
        results = execute_cells(cells, jobs=1, cache=None, stats=stats)
        assert stats.retries == 1 and stats.quarantined == 0
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(r) for r in clean
        ]

    def test_repeated_failure_is_quarantined(self, monkeypatch):
        cells = [_cell(), _cell(protocol="tcp")]
        stats = SweepStats()
        _arm_chaos(monkeypatch, cells[0])  # crashes on every attempt
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = execute_cells(
                cells, jobs=1, cache=None, stats=stats, retries=1
            )
        assert results[0] is None and results[1] is not None
        assert stats.quarantined == 1 and stats.retries == 1
        assert len(parallel.last_quarantine) == 1
        entry = parallel.last_quarantine[0]
        assert entry["cache_key"] == cells[0].cache_key()
        assert entry["attempts"] == 2 and len(entry["errors"]) == 2
        assert "chaos drill" in entry["errors"][0]

    def test_quarantine_report_written_even_when_clean(
        self, monkeypatch, tmp_path
    ):
        report = tmp_path / "quarantine.json"
        monkeypatch.setenv("REPRO_QUARANTINE_FILE", str(report))
        execute_cells([_cell(protocol="tcp")], jobs=1, cache=None)
        payload = json.loads(report.read_text())
        assert payload["quarantined"] == []
        assert payload["quarantined_cells"] == 0

    def test_dead_worker_recovers_bit_identical(self, monkeypatch, tmp_path):
        """A worker killed mid-cell poisons the pool; the retry round
        rebuilds it and the final matrix matches the clean serial run."""
        cells = [
            _cell(protocol=p, initial_interface=i)
            for p in ("tcp", "quic") for i in (0, 1)
        ]
        clean = execute_cells(cells, jobs=1, cache=None)
        stats = SweepStats()
        _arm_chaos(
            monkeypatch, cells[1], mode="exit",
            marker_dir=tmp_path / "markers",
        )
        results = execute_cells(cells, jobs=2, cache=None, stats=stats)
        assert stats.pool_restarts >= 1 and stats.retries >= 1
        assert stats.quarantined == 0
        assert [result_to_dict(r) for r in results] == [
            result_to_dict(r) for r in clean
        ]

    def test_serial_fallback_when_pool_unavailable(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise PermissionError("no processes in this sandbox")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", refuse)
        cells = [_cell(protocol="tcp"), _cell(protocol="tcp", initial_interface=1)]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            results = execute_cells(cells, jobs=4, cache=None)
        assert all(r is not None for r in results)

    def test_interrupted_sweep_resumes_from_cache(self, monkeypatch, tmp_path):
        """Cells finished before a failure are served from disk on the
        next invocation; only the failed cell re-executes."""
        cells = [_cell(), _cell(protocol="tcp")]
        clean = execute_cells(cells, jobs=1, cache=None)
        cache = ResultCache(tmp_path / "cache")
        _arm_chaos(monkeypatch, cells[0])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            first = execute_cells(
                cells, jobs=1, cache=cache, retries=0
            )
        assert first[0] is None and first[1] is not None
        # The "interruption" is over: disarm chaos and resume.
        monkeypatch.delenv("REPRO_CHAOS_CRASH_KEY")
        stats = SweepStats()
        resumed = execute_cells(cells, jobs=1, cache=cache, stats=stats)
        assert stats.cache_hits == 1 and stats.executed == 1
        assert [result_to_dict(r) for r in resumed] == [
            result_to_dict(r) for r in clean
        ]

    def test_resolve_retries_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        assert resolve_retries() == 5
        assert resolve_retries(1) == 1  # explicit wins over env
        monkeypatch.delenv("REPRO_RETRIES")
        assert resolve_retries() == parallel.DEFAULT_RETRIES
        assert resolve_retries(-3) == 0


class TestQuarantineHygiene:
    def _entry(self, key, attempts, errors):
        return {
            "cache_key": key,
            "protocol": "quic",
            "initial_interface": 0,
            "base_seed": 1,
            "attempts": attempts,
            "errors": errors,
        }

    def test_dedupe_keeps_one_entry_per_key_latest_wins(self):
        entries = [
            self._entry("k1", 1, ["boom"]),
            self._entry("k2", 1, ["other"]),
            self._entry("k1", 3, ["boom", "boom again"]),
        ]
        deduped = parallel.dedupe_quarantine(entries)
        assert [e["cache_key"] for e in deduped] == ["k1", "k2"]
        k1 = deduped[0]
        assert k1["attempts"] == 3  # the later entry won
        assert k1["errors"] == ["boom", "boom again"]

    def test_dedupe_caps_error_history(self):
        errors = [f"attempt {i}" for i in range(20)]
        deduped = parallel.dedupe_quarantine(
            [self._entry("k", 20, errors)]
        )
        kept = deduped[0]["errors"]
        assert len(kept) == parallel.MAX_QUARANTINE_ERRORS
        assert kept[-1] == "attempt 19"  # most recent survive

    def test_clip_error_bounds_traceback_length(self):
        long = "x" * (parallel.MAX_QUARANTINE_ERROR_CHARS * 3)
        clipped = parallel.clip_error(long)
        assert len(clipped) < parallel.MAX_QUARANTINE_ERROR_CHARS + 100
        assert "clipped" in clipped
        short = "y" * 10
        assert parallel.clip_error(short) == short

    def test_report_file_is_deduplicated(self, tmp_path):
        report = tmp_path / "quarantine.json"
        parallel.write_quarantine_report(
            report,
            [
                self._entry("k", 1, ["a"]),
                self._entry("k", 2, ["a", "b"]),
            ],
        )
        payload = json.loads(report.read_text())
        assert payload["quarantined_cells"] == 1
        assert len(payload["quarantined"]) == 1
        assert payload["quarantined"][0]["attempts"] == 2

    def test_backoff_delay_is_bounded(self):
        delays = [parallel.backoff_delay(r) for r in range(1, 12)]
        assert delays[0] == parallel.RETRY_BACKOFF_BASE
        assert all(
            d <= parallel.RETRY_BACKOFF_MAX for d in delays
        )
        assert delays == sorted(delays)
