"""Short request/response flows over a recycled pool of host pairs.

The open-loop workload harness (:mod:`repro.experiments.workload`)
launches a new transport connection per arrival.  Building a topology
per flow would be prohibitively expensive, so instead a fixed set of
client/server host pairs (:class:`repro.netsim.bottleneck.ManyFlowTopology`)
is *recycled*: a flow leases a pair, runs one GET-``size``-bytes
exchange over a fresh connection, and releases the pair after a drain
delay that lets stragglers (final ACKs, spurious retransmissions) age
out before the next connection installs its datagram handler on the
same hosts.

:class:`ShortFlow` is the single exchange — a stripped-down
:class:`repro.apps.bulk.BulkTransferApp` with a completion callback
instead of a private ``run()`` loop, because hundreds of short flows
share one simulator.  :class:`HostPairPool` is the lease/drain
machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.apps.transport import TransportEndpoint
from repro.core.connection import MultipathQuicConnection
from repro.mptcp.connection import MptcpConnection
from repro.netsim.engine import Simulator
from repro.netsim.node import Host
from repro.netsim.trace import PacketTrace
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection


def make_endpoints(
    protocol: str,
    sim: Simulator,
    client_host: Host,
    server_host: Host,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    trace: Optional[PacketTrace] = None,
    connection_id: int = 0x1234,
) -> Tuple[TransportEndpoint, TransportEndpoint]:
    """Endpoint pair over explicit hosts (vs. a two-path topology).

    Mirrors :func:`repro.apps.transport.make_client_server` but works
    against any hosts — the workload topology has N pairs, not the
    ``client``/``server`` attributes the facade expects.  A fresh
    ``connection_id`` per flow keeps stray datagrams from a previous
    lease of the same host pair distinguishable in traces.
    """
    from repro.apps.transport import _fresh_quic_config

    if protocol == "quic":
        client = QuicConnection(
            sim, client_host, "client", _fresh_quic_config(quic_config),
            trace, connection_id=connection_id,
        )
        server = QuicConnection(
            sim, server_host, "server", _fresh_quic_config(quic_config),
            trace, connection_id=connection_id,
        )
    elif protocol == "mpquic":
        client = MultipathQuicConnection(
            sim, client_host, "client", _fresh_quic_config(quic_config),
            trace, connection_id=connection_id,
        )
        server = MultipathQuicConnection(
            sim, server_host, "server", _fresh_quic_config(quic_config),
            trace, connection_id=connection_id,
        )
    elif protocol == "tcp":
        client = TcpConnection(
            sim, client_host, "client", tcp_config or TcpConfig(), trace,
        )
        server = TcpConnection(
            sim, server_host, "server", tcp_config or TcpConfig(), trace,
        )
    elif protocol == "mptcp":
        client = MptcpConnection(
            sim, client_host, "client", tcp_config or TcpConfig(), trace,
        )
        server = MptcpConnection(
            sim, server_host, "server", tcp_config or TcpConfig(), trace,
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    return (
        TransportEndpoint(protocol, client),
        TransportEndpoint(protocol, server),
    )


class ShortFlow:
    """One GET-``size``-bytes exchange with a completion callback."""

    REQUEST = b"GET /flow HTTP/1.1\r\n\r\n"

    def __init__(
        self,
        sim: Simulator,
        client: TransportEndpoint,
        server: TransportEndpoint,
        size: int,
        on_complete: Optional[Callable[["ShortFlow"], None]] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.server = server
        self.size = size
        self.on_complete = on_complete
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.bytes_received = 0
        self._request_seen = False
        client.on_established = self._client_established
        client.on_data = self._client_data
        server.on_data = self._server_data

    def start(self) -> None:
        self.start_time = self.sim.now
        self.client.connect()

    def _client_established(self) -> None:
        self.client.send(self.REQUEST, fin=False)

    def _server_data(self, data: bytes, fin: bool) -> None:
        if not self._request_seen and data:
            self._request_seen = True
            self.server.send(b"x" * self.size, fin=True)

    def _client_data(self, data: bytes, fin: bool) -> None:
        self.bytes_received += len(data)
        if fin and self.completion_time is None:
            self.completion_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self)

    def close(self) -> None:
        """Quiesce both endpoints so the host pair can be recycled.

        QUIC-family endpoints send CONNECTION_CLOSE and cancel their
        timers; TCP-family ones just cancel timers (the simulator has
        no FIN handshake to wait out).  Without this, hundreds of
        finished flows keep idle/RTO timers armed and the event loop
        never goes quiet.
        """
        for endpoint in (self.client, self.server):
            conn = endpoint.connection
            if endpoint.protocol in ("quic", "mpquic"):
                if not conn.closed:
                    conn.close()
            else:
                conn.close_timers()

    @property
    def complete(self) -> bool:
        return self.completion_time is not None

    def fct(self) -> float:
        """Seconds from connect to last byte."""
        if self.start_time is None or self.completion_time is None:
            raise RuntimeError("flow has not completed")
        return self.completion_time - self.start_time


class HostPairPool:
    """Leases of (client, server) host pairs with drain-delayed reuse.

    ``acquire()`` hands out a free pair index or ``None`` when every
    pair is leased (the caller decides whether to queue or to model the
    flow at fluid fidelity instead).  ``release()`` returns the pair
    after ``drain_delay`` simulated seconds: a connection's last ACKs
    and late retransmissions are still in flight when the application
    sees its final byte, and a host delivers datagrams to whichever
    connection registered last — the delay lets the network drain
    before a new connection takes over the hosts.
    """

    def __init__(
        self,
        sim: Simulator,
        pairs: List[Tuple[Host, Host]],
        drain_delay: float,
        on_available: Optional[Callable[[], None]] = None,
    ) -> None:
        if drain_delay < 0.0:
            raise ValueError("drain_delay must be non-negative")
        self.sim = sim
        self.pairs = pairs
        self.drain_delay = drain_delay
        #: Called whenever a pair (re-)enters the free list — the hook
        #: a backlogged caller uses to retry, since a released pair only
        #: becomes acquirable after the drain delay, not at release().
        self.on_available = on_available
        self._free: Deque[int] = deque(range(len(pairs)))
        self.leases = 0

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self) -> Optional[int]:
        """Lease a pair index, or None when the pool is exhausted."""
        if not self._free:
            return None
        self.leases += 1
        return self._free.popleft()

    def release(self, index: int) -> None:
        """Return a pair to the pool once the drain delay elapses."""
        if self.drain_delay > 0.0:
            self.sim.schedule(self.drain_delay, self._return, index)
        else:
            self._return(index)

    def _return(self, index: int) -> None:
        self._free.append(index)
        if self.on_available is not None:
            self.on_available()
