"""The clean tree's telemetry registry (stands in for obs.events)."""

CAT_FLOW = "flow"
CAT_LINK = "link"

CATEGORIES = (CAT_FLOW, CAT_LINK)

SERIES_METRICS = ("cwnd", "rtt")
