"""Receiver-side acknowledgment bookkeeping (one per path).

Tracks which packet numbers arrived and produces ACK frames with up to
256 ranges — the mechanism the paper credits for QUIC's superior loss
handling compared with TCP's 2–3 SACK blocks (§4.1, low-BDP-losses).
"""

from __future__ import annotations

from typing import Optional

from repro.quic.frames import AckFrame, MAX_ACK_RANGES
from repro.util import sanitize as _san
from repro.util.ranges import RangeSet

#: Maximum time a receiver may sit on an acknowledgment.
MAX_ACK_DELAY = 0.025

#: Send an ACK after this many ack-eliciting packets.
ACK_EVERY_N = 2


class AckManager:
    """Accumulates received packet numbers and decides when to ACK."""

    __slots__ = (
        "path_id", "received", "largest_received", "largest_received_time",
        "_unacked_eliciting", "_ack_pending", "_reordering_seen",
    )

    def __init__(self, path_id: int) -> None:
        self.path_id = path_id
        self.received = RangeSet()
        self.largest_received = -1
        self.largest_received_time = 0.0
        self._unacked_eliciting = 0
        self._ack_pending = False
        self._reordering_seen = False

    def on_packet_received(self, packet_number: int, now: float, ack_eliciting: bool) -> None:
        """Record an arriving packet."""
        received = self.received
        largest = self.largest_received
        # Anything above the largest seen so far cannot be a duplicate;
        # skip the membership bisect on the dominant in-order arrival.
        duplicate = packet_number <= largest and packet_number in received
        received.add_value(packet_number)
        # Hard bound on receiver state: ACK frames carry at most
        # MAX_ACK_RANGES ranges, so ranges below that window can never
        # be reported again — drop the lowest ones.  The sender's
        # retransmission machinery covers anything forgotten here.
        # (Peeks the bounds list directly: this runs per packet and the
        # bound is almost never hit.)
        if len(received._bounds) > 2 * MAX_ACK_RANGES:
            while len(received) > MAX_ACK_RANGES:
                lowest_start, lowest_stop = next(iter(received))
                received.remove(lowest_start, lowest_stop)
        if packet_number > largest:
            if packet_number != largest + 1:
                self._reordering_seen = True  # gap: ack promptly
            self.largest_received = packet_number
            self.largest_received_time = now
        elif not duplicate:
            self._reordering_seen = True  # filled an old gap
        if ack_eliciting and not duplicate:
            self._unacked_eliciting += 1
            self._ack_pending = True

    @property
    def ack_pending(self) -> bool:
        """True when an ACK frame should eventually be sent."""
        return self._ack_pending

    def should_ack_now(self) -> bool:
        """True when an ACK should not be delayed any further."""
        if not self._ack_pending:
            return False
        return self._unacked_eliciting >= ACK_EVERY_N or self._reordering_seen

    def build_ack(self, now: float, commit: bool = True) -> Optional[AckFrame]:
        """Produce an ACK frame covering everything received so far.

        With ``commit=False`` the pending state is left untouched, for
        callers that may discard the frame (e.g. opportunistic
        piggybacking on a data packet that ends up empty).
        """
        if self.largest_received < 0:
            return None
        ranges = tuple(self.received.descending_ranges(limit=MAX_ACK_RANGES))
        if _san.SANITIZE:
            # An ACK must never claim packets that were not received.
            for start, stop in ranges:
                _san.check(
                    self.received.contains_range(start, stop),
                    "ACK range covers unreceived packet numbers",
                    range=(start, stop),
                )
            _san.check(
                bool(ranges) and ranges[0][1] - 1 == self.largest_received,
                "ACK largest_acked disagrees with received ranges",
                largest_received=self.largest_received,
                first_range=ranges[0] if ranges else None,
            )
        ack_delay = max(0.0, now - self.largest_received_time)
        if commit:
            self._unacked_eliciting = 0
            self._ack_pending = False
            self._reordering_seen = False
        return AckFrame.acquire(
            self.path_id,
            self.largest_received,
            ack_delay,
            ranges,
        )

    def commit_ack(self) -> None:
        """Mark the last peeked ACK as sent (see ``build_ack``)."""
        self._unacked_eliciting = 0
        self._ack_pending = False
        self._reordering_seen = False

    def forget_below(self, packet_number: int) -> None:
        """Drop state for packets below ``packet_number``.

        Called once the peer has confirmed it saw our ACKs for those
        packets, bounding the size of future ACK frames.
        """
        if packet_number > 0:
            self.received.remove(0, packet_number)
