"""Planted event-order defects: equal-timestamp nondeterminism."""

import heapq
import itertools


class Calendar:
    """A custom time-keyed heap next to the engine's calendar queue."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()

    def push_bad(self, when, payload):
        # Equal timestamps fall through to comparing payload objects.
        heapq.heappush(self._heap, (when, payload))  # corpus: expect[event-order]

    def push_good(self, when, payload):
        heapq.heappush(self._heap, (when, next(self._seq), payload))


class Pump:
    """Two different same-time callbacks coupled through one attribute."""

    def __init__(self, sim):
        self.sim = sim
        self.backlog = 0

    def _fill(self):
        self.backlog += 1

    def _drain(self):
        self.backlog = 0

    def kick(self, delay):
        # Which of these runs first is only the insertion-order
        # tie-break; _drain reads/writes what _fill writes.
        self.sim.schedule(delay, self._fill)
        self.sim.schedule(delay, self._drain)  # corpus: expect[event-order]

    def broadcast(self, flows):
        pending = set(flows)
        for flow in pending:
            # Enqueue order (and so same-time tie-breaks) follows
            # set hash order.
            self.sim.schedule(0.0, flow.start)  # corpus: expect[event-order]
