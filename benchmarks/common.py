"""Shared configuration for the figure benchmarks.

Benchmarks default to a reduced sweep so the whole suite finishes in a
few minutes; the WSP design still covers the paper's Table 1 ranges.
Scale up via environment variables::

    REPRO_SCENARIOS=253 REPRO_FILE_SIZE=20000000 pytest benchmarks/ --benchmark-only

or regenerate individual figures at any scale with
``python -m repro.experiments.figures <fig> --full``.

Because the figure harness caches sweeps process-wide, benchmarks that
share an environment class (e.g. Fig. 3 and Fig. 4) reuse each other's
simulation runs within one pytest session.  Sweeps additionally go
through the parallel engine and its on-disk result cache
(``REPRO_JOBS`` / ``REPRO_CACHE``, see docs/performance.md), so a
repeat benchmark session at the same scale replays from disk; export
``REPRO_CACHE=off`` when measuring raw simulation wall time.
"""

from __future__ import annotations

import os

from repro.experiments.figures import SweepConfig

#: Reduced-size sweep used by default in benchmarks.
BENCH_CONFIG = SweepConfig(
    scenarios=int(os.environ.get("REPRO_SCENARIOS", "12")),
    file_size=int(os.environ.get("REPRO_FILE_SIZE", "2000000")),
    small_file_size=int(os.environ.get("REPRO_SMALL_FILE", "256000")),
    seed=int(os.environ.get("REPRO_SEED", "42")),
)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return it.

    The sweeps are deterministic simulations — repeating them would
    only re-measure wall time of identical work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
